"""Privacy-aware query rewriting (the preprocessor of Figure 2).

Given an incoming analysis query and the privacy policy of the requesting
module, the rewriter applies the transformation rules of Section 3.1 / 4.2 of
the paper:

* attributes the user does not reveal are removed from the SELECT clause,
* relations that release too much information are substituted in the FROM
  clause,
* policy conditions are combined conjunctively with the query's WHERE clause
  and placed in the innermost possible subquery,
* attributes that may only leave in aggregated form are rewritten to the
  mandated aggregation (GROUP BY / HAVING), and the new attribute names are
  delegated to the outer queries.

:class:`~repro.rewrite.rewriter.QueryRewriter` performs the transformation;
:class:`~repro.rewrite.analyzer.PolicyAnalyzer` performs the admission checks
(are the requested attributes covered at all, is the query interval
respected, does enough information remain for the analysis to be useful).
"""

from repro.rewrite.report import RewriteAction, RewriteReport
from repro.rewrite.analyzer import AdmissionDecision, PolicyAnalyzer, QueryPolicyAnalysis
from repro.rewrite.rewriter import QueryRewriter, RewriteError, RewriteResult
from repro.rewrite.containment import ContainmentVerdict, check_leakage, describe_view

__all__ = [
    "RewriteAction",
    "RewriteReport",
    "AdmissionDecision",
    "PolicyAnalyzer",
    "QueryPolicyAnalysis",
    "QueryRewriter",
    "RewriteError",
    "RewriteResult",
    "ContainmentVerdict",
    "check_leakage",
    "describe_view",
]
