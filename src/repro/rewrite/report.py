"""Structured reports of what the rewriter did to a query."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class RewriteAction:
    """One individual rewriting step.

    Attributes:
        kind: Action type; one of ``remove_projection``,
            ``substitute_relation``, ``inject_condition``, ``inject_having``,
            ``enforce_aggregation``, ``rename_reference``,
            ``remove_predicate`` and ``reject``.
        attribute: The attribute concerned, when applicable.
        detail: Human-readable description (the injected SQL text, the old and
            new relation names, ...).
    """

    kind: str
    attribute: Optional[str] = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        scope = f" [{self.attribute}]" if self.attribute else ""
        return f"{self.kind}{scope}: {self.detail}"


@dataclass
class RewriteReport:
    """The full record of a rewriting run."""

    module_id: str
    actions: List[RewriteAction] = field(default_factory=list)
    original_sql: str = ""
    rewritten_sql: str = ""
    compliant: bool = True
    rejection_reason: Optional[str] = None

    def add(self, kind: str, attribute: Optional[str] = None, detail: str = "") -> None:
        """Append an action to the report."""
        self.actions.append(RewriteAction(kind=kind, attribute=attribute, detail=detail))

    def actions_of(self, kind: str) -> List[RewriteAction]:
        """Return all actions of the given kind."""
        return [action for action in self.actions if action.kind == kind]

    @property
    def removed_attributes(self) -> List[str]:
        """Attributes removed from projections."""
        return [a.attribute for a in self.actions_of("remove_projection") if a.attribute]

    @property
    def injected_conditions(self) -> List[str]:
        """WHERE/HAVING condition texts injected by the rewriter."""
        return [
            action.detail
            for action in self.actions
            if action.kind in ("inject_condition", "inject_having")
        ]

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"Rewrite report for module '{self.module_id}':"]
        if not self.actions:
            lines.append("  (query already complies with the policy)")
        for action in self.actions:
            lines.append(f"  - {action}")
        if not self.compliant:
            lines.append(f"  => query rejected: {self.rejection_reason}")
        return "\n".join(lines)
