"""Admission analysis: should a query be answered at all, and at which cost?

Section 3.1 of the paper lists the checks the preprocessor performs before the
actual rewriting:

* is every queried attribute uncovered by the user at all (projection check),
* can it only be used under constraints (preselection / aggregation),
* does the processing node have enough capacity,
* would the information system still gain enough information to produce a
  satisfactory result (estimated with a Kullback-Leibler style information
  loss metric),
* is the module's allowed query interval respected.

:class:`PolicyAnalyzer` bundles those checks.  The information-gain estimate
compares the attribute set the analysis asked for with the attribute set that
survives the policy; the exact data-dependent KL computation happens later in
the postprocessor (see :mod:`repro.metrics`), but the preprocessor uses the
attribute-level approximation to refuse queries that would come back useless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.policy.model import ModulePolicy, PrivacyPolicy
from repro.sql import ast
from repro.sql.analysis import analyze_query


@dataclass
class QueryPolicyAnalysis:
    """Attribute-level comparison of a query against a module policy."""

    module_id: str
    requested_attributes: List[str]
    allowed_attributes: List[str]
    denied_attributes: List[str]
    aggregated_attributes: List[str]
    conditioned_attributes: List[str]
    unknown_attributes: List[str]

    @property
    def coverage(self) -> float:
        """Fraction of requested attributes that survive (possibly aggregated)."""
        if not self.requested_attributes:
            return 1.0
        surviving = len(self.allowed_attributes) + len(self.aggregated_attributes)
        return surviving / len(self.requested_attributes)

    @property
    def fully_denied(self) -> bool:
        """True when nothing the query asked for may be revealed."""
        return self.coverage == 0.0


@dataclass
class AdmissionDecision:
    """Outcome of the admission check."""

    admitted: bool
    reasons: List[str] = field(default_factory=list)
    analysis: Optional[QueryPolicyAnalysis] = None
    estimated_information_gain: float = 1.0

    def explain(self) -> str:
        """Human-readable explanation."""
        status = "admitted" if self.admitted else "refused"
        if not self.reasons:
            return f"query {status}"
        return f"query {status}: " + "; ".join(self.reasons)


@dataclass
class NodeCapacity:
    """Capacity description of the node asked to process the query."""

    cpu_power: float = 1.0  # relative units; 1.0 = an apartment PC
    free_memory_mb: float = 1024.0
    #: Estimated memory needed per input row in bytes (used for the check
    #: "does the processing node have enough capacity").
    bytes_per_row: float = 64.0

    def can_process(self, estimated_rows: int) -> bool:
        """Rough check whether ``estimated_rows`` fit into free memory."""
        needed_mb = estimated_rows * self.bytes_per_row / (1024.0 * 1024.0)
        return needed_mb <= self.free_memory_mb


class PolicyAnalyzer:
    """Performs the preprocessor's admission checks."""

    def __init__(
        self,
        policy: PrivacyPolicy,
        minimum_information_gain: float = 0.25,
        clock=time.monotonic,
    ) -> None:
        self.policy = policy
        self.minimum_information_gain = minimum_information_gain
        self._clock = clock
        self._last_query_time: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # attribute-level analysis
    # ------------------------------------------------------------------
    def analyze(self, query: ast.Query, module_id: str) -> QueryPolicyAnalysis:
        """Compare the attributes referenced by ``query`` with the policy."""
        module = self.policy.module(module_id)
        features = analyze_query(query)
        requested = sorted(features.columns)

        allowed: List[str] = []
        denied: List[str] = []
        aggregated: List[str] = []
        conditioned: List[str] = []
        unknown: List[str] = []
        for attribute in requested:
            rule = module.rule_for(attribute)
            if rule is None:
                (allowed if module.default_allow else unknown).append(attribute)
                continue
            if not rule.allow:
                denied.append(attribute)
                continue
            if rule.aggregation is not None:
                aggregated.append(attribute)
            else:
                allowed.append(attribute)
            if rule.conditions:
                conditioned.append(attribute)
        return QueryPolicyAnalysis(
            module_id=module.module_id,
            requested_attributes=requested,
            allowed_attributes=allowed,
            denied_attributes=denied,
            aggregated_attributes=aggregated,
            conditioned_attributes=conditioned,
            unknown_attributes=unknown,
        )

    # ------------------------------------------------------------------
    # admission decision
    # ------------------------------------------------------------------
    def admit(
        self,
        query: ast.Query,
        module_id: str,
        estimated_rows: int = 0,
        capacity: Optional[NodeCapacity] = None,
        enforce_interval: bool = True,
    ) -> AdmissionDecision:
        """Decide whether the query should be processed at all."""
        reasons: List[str] = []

        if not self.policy.has_module(module_id):
            return AdmissionDecision(
                admitted=False,
                reasons=[f"no policy defined for module '{module_id}'"],
            )

        module = self.policy.module(module_id)
        analysis = self.analyze(query, module_id)

        if analysis.fully_denied:
            reasons.append("the policy denies every requested attribute")

        # Information-gain estimate: the share of the requested attribute set
        # that survives, discounted for attributes only available aggregated.
        gain = self._estimate_information_gain(analysis)
        if gain < self.minimum_information_gain:
            reasons.append(
                f"estimated information gain {gain:.2f} is below the useful minimum "
                f"{self.minimum_information_gain:.2f}"
            )

        if capacity is not None and not capacity.can_process(estimated_rows):
            reasons.append(
                f"processing node lacks capacity for an estimated {estimated_rows} rows"
            )

        if enforce_interval and not self._interval_ok(module):
            interval = module.stream_settings.query_interval_seconds
            reasons.append(
                f"query interval of {interval:.0f}s for module '{module.module_id}' not elapsed"
            )

        admitted = not reasons
        if admitted:
            self._last_query_time[module.module_id.lower()] = self._clock()
        return AdmissionDecision(
            admitted=admitted,
            reasons=reasons,
            analysis=analysis,
            estimated_information_gain=gain,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _estimate_information_gain(self, analysis: QueryPolicyAnalysis) -> float:
        if not analysis.requested_attributes:
            return 1.0
        total = len(analysis.requested_attributes)
        full = len(analysis.allowed_attributes)
        # Aggregated attributes still carry information, but less of it.
        partial = 0.5 * len(analysis.aggregated_attributes)
        return (full + partial) / total

    def _interval_ok(self, module: ModulePolicy) -> bool:
        interval = module.stream_settings.query_interval_seconds
        if interval is None or interval <= 0:
            return True
        last = self._last_query_time.get(module.module_id.lower())
        if last is None:
            return True
        return (self._clock() - last) >= interval

    def reset_interval(self, module_id: Optional[str] = None) -> None:
        """Forget recorded query times (all modules or one)."""
        if module_id is None:
            self._last_query_time.clear()
        else:
            self._last_query_time.pop(module_id.lower(), None)
