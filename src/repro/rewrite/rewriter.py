"""The query rewriter (preprocessor core).

The rewriter walks the nested query bottom-up.  Policy enforcement happens at
the innermost SELECT blocks — the ones that read base relations — exactly as
the paper describes: "the additional conditions will be inserted as WHERE and
HAVING clauses in the innermost possible part of the nested SQL query.
Regarding aggregated values, new attribute names are inserted and, if
necessary, delegated to the outer queries."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.schema import Schema
from repro.policy.model import AttributeRule, ModulePolicy, PolicyError, PrivacyPolicy
from repro.rewrite.report import RewriteReport
from repro.sql import ast
from repro.sql.errors import SqlError
from repro.sql.parser import parse, parse_expression
from repro.sql.render import render, render_expression
from repro.sql.visitor import clone, collect_column_names, replace_columns


class RewriteError(SqlError):
    """Raised when a query cannot be made policy-compliant at all."""


@dataclass
class RewriteResult:
    """Outcome of a rewriting run."""

    query: ast.Query
    report: RewriteReport
    renamed_attributes: Dict[str, str] = field(default_factory=dict)

    @property
    def sql(self) -> str:
        """The rewritten query as SQL text."""
        return render(self.query)

    @property
    def compliant(self) -> bool:
        """True when the rewritten query satisfies the policy."""
        return self.report.compliant


class QueryRewriter:
    """Rewrites queries so that they satisfy a module's privacy policy."""

    def __init__(self, policy: PrivacyPolicy, schema: Optional[Schema] = None) -> None:
        """Create a rewriter.

        Args:
            policy: The user's privacy policy.
            schema: Optional schema of the integrated sensor relation; when
                provided, ``SELECT *`` projections over base tables are
                expanded so that denied attributes can be stripped and
                mandatory aggregations applied even to star queries.
        """
        self.policy = policy
        self.schema = schema

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def rewrite_sql(self, sql: str, module_id: str) -> RewriteResult:
        """Parse ``sql`` and rewrite it for ``module_id``."""
        return self.rewrite(parse(sql), module_id)

    def rewrite(self, query: ast.Query, module_id: str) -> RewriteResult:
        """Rewrite ``query`` according to the policy of ``module_id``."""
        try:
            module = self.policy.module(module_id)
        except PolicyError as exc:
            raise RewriteError(str(exc)) from exc

        report = RewriteReport(module_id=module.module_id, original_sql=render(query))
        working = clone(query)
        rewritten, renames, removed = self._rewrite_query(working, module, report)

        if isinstance(rewritten, ast.SelectQuery) and not rewritten.items:
            report.compliant = False
            report.rejection_reason = (
                "after removing denied attributes the query has an empty SELECT list"
            )
            report.add("reject", detail=report.rejection_reason)

        report.rewritten_sql = render(rewritten)
        return RewriteResult(query=rewritten, report=report, renamed_attributes=renames)

    # ------------------------------------------------------------------
    # recursive rewriting
    # ------------------------------------------------------------------
    def _rewrite_query(
        self, query: ast.Query, module: ModulePolicy, report: RewriteReport
    ) -> Tuple[ast.Query, Dict[str, str], Set[str]]:
        if isinstance(query, ast.SetOperation):
            left, left_renames, left_removed = self._rewrite_query(query.left, module, report)
            right, _, right_removed = self._rewrite_query(query.right, module, report)
            query.left, query.right = left, right
            return query, left_renames, left_removed | right_removed
        assert isinstance(query, ast.SelectQuery)
        return self._rewrite_select(query, module, report)

    def _rewrite_select(
        self, query: ast.SelectQuery, module: ModulePolicy, report: RewriteReport
    ) -> Tuple[ast.SelectQuery, Dict[str, str], Set[str]]:
        child_renames: Dict[str, str] = {}
        child_removed: Set[str] = set()
        reads_base = False

        if query.from_clause is not None:
            query.from_clause, child_renames, child_removed, reads_base = self._rewrite_relation(
                query.from_clause, module, report
            )

        # Delegate renamed attributes of children to this level.
        if child_renames:
            self._apply_renames(query, child_renames, report)
        # Prune references to attributes a child no longer exposes.
        if child_removed:
            self._prune_removed(query, child_removed, report)

        renames: Dict[str, str] = dict(child_renames)
        removed: Set[str] = set()

        if reads_base:
            removed |= self._enforce_projection(query, module, report)
            # Aggregations first: they may introduce GROUP BY attributes whose
            # own policy conditions must then be injected as well (otherwise a
            # second rewriting pass would still find work to do).
            aggregation_renames = self._enforce_aggregations(query, module, report)
            renames.update(aggregation_renames)
            self._enforce_conditions(query, module, report)

        return query, renames, removed | child_removed

    def _rewrite_relation(
        self, relation: ast.Relation, module: ModulePolicy, report: RewriteReport
    ) -> Tuple[ast.Relation, Dict[str, str], Set[str], bool]:
        if isinstance(relation, ast.TableRef):
            substitution = module.relation_substitutions.get(relation.name.lower())
            if substitution:
                report.add(
                    "substitute_relation",
                    detail=f"{relation.name} -> {substitution}",
                )
                relation = ast.TableRef(name=substitution, alias=relation.alias)
            return relation, {}, set(), True
        if isinstance(relation, ast.SubqueryRef):
            if isinstance(relation.query, ast.SelectQuery):
                child, renames, removed = self._rewrite_select(relation.query, module, report)
                relation.query = child
                return relation, renames, removed, False
            child, renames, removed = self._rewrite_query(relation.query, module, report)
            relation.query = child
            return relation, renames, removed, False
        if isinstance(relation, ast.Join):
            left, left_renames, left_removed, left_base = self._rewrite_relation(
                relation.left, module, report
            )
            right, right_renames, right_removed, right_base = self._rewrite_relation(
                relation.right, module, report
            )
            relation.left, relation.right = left, right
            renames = {**left_renames, **right_renames}
            removed = left_removed | right_removed
            return relation, renames, removed, left_base or right_base
        return relation, {}, set(), False

    # ------------------------------------------------------------------
    # enforcement steps (applied at base-table level)
    # ------------------------------------------------------------------
    def _enforce_projection(
        self, query: ast.SelectQuery, module: ModulePolicy, report: RewriteReport
    ) -> Set[str]:
        """Remove denied attributes from the SELECT clause."""
        denied = {name.lower() for name in module.denied_attributes}
        if not module.default_allow and self.schema is not None:
            # Attributes present in the schema but lacking any rule are denied
            # by default ("involved personal information ... is monitored,
            # whether it is uncovered by the user at all").
            for column in self.schema:
                if module.rule_for(column.name) is None:
                    denied.add(column.name.lower())
        if not denied:
            return set()

        removed: Set[str] = set()
        new_items: List[ast.SelectItem] = []
        for item in query.items:
            if isinstance(item.expression, ast.Star):
                expanded = self._expand_star(item, denied, report)
                new_items.extend(expanded)
                continue
            referenced = set(collect_column_names(item.expression))
            blocked = referenced & denied
            if blocked:
                name = item.output_name or render_expression(item.expression)
                report.add(
                    "remove_projection",
                    attribute=", ".join(sorted(blocked)),
                    detail=f"removed select item '{render_expression(item.expression)}'",
                )
                removed.add((name or "").lower())
                removed |= {b for b in blocked}
                continue
            new_items.append(item)
        query.items = new_items

        # Predicates over denied attributes cannot be evaluated on revealed
        # data; drop the offending conjunction terms.
        if query.where is not None:
            kept_terms = []
            for term in ast.conjunction_terms(query.where):
                if set(collect_column_names(term)) & denied:
                    report.add(
                        "remove_predicate",
                        detail=f"removed predicate '{render_expression(term)}'",
                    )
                else:
                    kept_terms.append(term)
            query.where = ast.conjunction(*kept_terms)

        query.group_by = [
            expression
            for expression in query.group_by
            if not set(collect_column_names(expression)) & denied
        ]
        query.order_by = [
            item
            for item in query.order_by
            if not set(collect_column_names(item.expression)) & denied
        ]
        return removed

    def _expand_star(
        self, item: ast.SelectItem, denied: Set[str], report: RewriteReport
    ) -> List[ast.SelectItem]:
        if self.schema is None:
            # Without schema knowledge the star cannot be expanded; the
            # sensor-level "SELECT *" of the paper is handled by the
            # postprocessing / anonymization step instead.
            report.add(
                "remove_projection",
                attribute="*",
                detail="cannot expand SELECT * without a schema; "
                "denied attributes must be stripped by the postprocessor",
            )
            return [item]
        expanded = []
        for column in self.schema:
            if column.name.lower() in denied:
                report.add(
                    "remove_projection",
                    attribute=column.name,
                    detail="removed from expanded SELECT *",
                )
                continue
            expanded.append(ast.SelectItem(expression=ast.Column(name=column.name)))
        return expanded

    def _enforce_conditions(
        self, query: ast.SelectQuery, module: ModulePolicy, report: RewriteReport
    ) -> None:
        """Conjunctively add the policy conditions of referenced attributes."""
        referenced = self._referenced_attributes(query)
        existing = {
            render_expression(term).lower()
            for term in ast.conjunction_terms(query.where)
        }
        for rule in module.attributes.values():
            if not rule.allow or not rule.conditions:
                continue
            if rule.name.lower() not in referenced:
                continue
            for condition_text in rule.conditions:
                condition = parse_expression(condition_text)
                rendered = render_expression(condition)
                if rendered.lower() in existing:
                    continue
                query.where = ast.conjunction(query.where, condition)
                existing.add(rendered.lower())
                report.add(
                    "inject_condition",
                    attribute=rule.name,
                    detail=rendered,
                )

    def _enforce_aggregations(
        self, query: ast.SelectQuery, module: ModulePolicy, report: RewriteReport
    ) -> Dict[str, str]:
        """Replace raw projections of aggregation-only attributes."""
        renames: Dict[str, str] = {}
        for rule in module.attributes.values():
            if not rule.requires_aggregation:
                continue
            if not self._projects_raw_attribute(query, rule.name):
                continue
            renames.update(self._apply_aggregation_rule(query, rule, report))
        return renames

    def _projects_raw_attribute(self, query: ast.SelectQuery, attribute: str) -> bool:
        lowered = attribute.lower()
        for item in query.items:
            expression = item.expression
            if isinstance(expression, ast.Column) and expression.name.lower() == lowered:
                return True
            if isinstance(expression, ast.Star):
                return self.schema is not None and attribute in self.schema
        return False

    def _apply_aggregation_rule(
        self, query: ast.SelectQuery, rule: AttributeRule, report: RewriteReport
    ) -> Dict[str, str]:
        aggregation = rule.aggregation
        assert aggregation is not None
        alias = aggregation.alias_for(rule.name)
        lowered = rule.name.lower()

        new_items: List[ast.SelectItem] = []
        replaced = False
        for item in query.items:
            expression = item.expression
            if isinstance(expression, ast.Column) and expression.name.lower() == lowered:
                new_items.append(
                    ast.SelectItem(
                        expression=ast.FunctionCall(
                            name=aggregation.aggregation_type,
                            arguments=[ast.Column(name=rule.name)],
                        ),
                        alias=alias,
                    )
                )
                replaced = True
            elif isinstance(expression, ast.Star) and self.schema is not None:
                for column in self.schema:
                    if column.name.lower() == lowered:
                        new_items.append(
                            ast.SelectItem(
                                expression=ast.FunctionCall(
                                    name=aggregation.aggregation_type,
                                    arguments=[ast.Column(name=rule.name)],
                                ),
                                alias=alias,
                            )
                        )
                        replaced = True
                    else:
                        new_items.append(
                            ast.SelectItem(expression=ast.Column(name=column.name))
                        )
            else:
                new_items.append(item)
        if not replaced:
            return {}
        query.items = new_items

        report.add(
            "enforce_aggregation",
            attribute=rule.name,
            detail=(
                f"{rule.name} -> {aggregation.aggregation_type}({rule.name}) AS {alias}"
            ),
        )

        # GROUP BY the mandated attributes (without duplicating existing ones).
        existing_groups = {
            render_expression(expression).lower() for expression in query.group_by
        }
        for group_attribute in aggregation.group_by:
            column = ast.Column(name=group_attribute)
            rendered = render_expression(column).lower()
            if rendered not in existing_groups:
                query.group_by.append(column)
                existing_groups.add(rendered)

        # HAVING condition guarding the group mass.
        having_expression = aggregation.having_expression()
        if having_expression is not None:
            rendered = render_expression(having_expression)
            already = {
                render_expression(term).lower()
                for term in ast.conjunction_terms(query.having)
            }
            if rendered.lower() not in already:
                query.having = ast.conjunction(query.having, having_expression)
                report.add("inject_having", attribute=rule.name, detail=rendered)

        return {lowered: alias}

    # ------------------------------------------------------------------
    # propagation helpers
    # ------------------------------------------------------------------
    def _apply_renames(
        self, query: ast.SelectQuery, renames: Dict[str, str], report: RewriteReport
    ) -> None:
        """Rename references to child output columns that were aggregated."""
        mapping = {old: ast.Column(name=new) for old, new in renames.items()}

        def rename_expression(expression: ast.Expression) -> ast.Expression:
            return replace_columns(expression, mapping)

        for item in query.items:
            if not isinstance(item.expression, ast.Star):
                item.expression = rename_expression(item.expression)
        if query.where is not None:
            query.where = rename_expression(query.where)
        query.group_by = [rename_expression(expression) for expression in query.group_by]
        if query.having is not None:
            query.having = rename_expression(query.having)
        for order_item in query.order_by:
            order_item.expression = rename_expression(order_item.expression)
        for old, new in renames.items():
            report.add(
                "rename_reference",
                attribute=old,
                detail=f"references to '{old}' delegated to '{new}'",
            )

    def _prune_removed(
        self, query: ast.SelectQuery, removed: Set[str], report: RewriteReport
    ) -> None:
        """Drop references to attributes a child query no longer produces."""
        removed_lower = {name.lower() for name in removed}

        surviving_items = []
        for item in query.items:
            if isinstance(item.expression, ast.Star):
                surviving_items.append(item)
                continue
            if set(collect_column_names(item.expression)) & removed_lower:
                report.add(
                    "remove_projection",
                    attribute=", ".join(
                        sorted(set(collect_column_names(item.expression)) & removed_lower)
                    ),
                    detail=(
                        "removed outer select item "
                        f"'{render_expression(item.expression)}' (source attribute removed)"
                    ),
                )
                continue
            surviving_items.append(item)
        query.items = surviving_items

        if query.where is not None:
            kept = [
                term
                for term in ast.conjunction_terms(query.where)
                if not set(collect_column_names(term)) & removed_lower
            ]
            if len(kept) != len(ast.conjunction_terms(query.where)):
                report.add("remove_predicate", detail="outer predicate referenced removed attribute")
            query.where = ast.conjunction(*kept)
        query.group_by = [
            expression
            for expression in query.group_by
            if not set(collect_column_names(expression)) & removed_lower
        ]
        if query.having is not None and set(collect_column_names(query.having)) & removed_lower:
            query.having = None
        query.order_by = [
            item
            for item in query.order_by
            if not set(collect_column_names(item.expression)) & removed_lower
        ]

    def _referenced_attributes(self, query: ast.SelectQuery) -> Set[str]:
        """Attributes referenced at this query level (star counts as 'all')."""
        referenced: Set[str] = set()
        star = False
        for item in query.items:
            if isinstance(item.expression, ast.Star):
                star = True
            else:
                referenced |= set(collect_column_names(item.expression))
        for expression in query.group_by:
            referenced |= set(collect_column_names(expression))
        if query.where is not None:
            referenced |= set(collect_column_names(query.where))
        if query.having is not None:
            referenced |= set(collect_column_names(query.having))
        for order_item in query.order_by:
            referenced |= set(collect_column_names(order_item.expression))
        if star:
            if self.schema is not None:
                referenced |= {column.name.lower() for column in self.schema}
            else:
                # Star without schema: assume every policy attribute may occur.
                referenced |= set()
        return referenced
