"""Conservative query-containment / leakage analysis.

The paper closes with an open problem: "A remaining open problem is to decide
whether a privacy-violating query Q↓ can be performed even on d' instead of d.
In this case, we have to extend the anonymization step A already performed.
This open problem results in a query containment problem."

Full query containment is NP-hard already for conjunctive queries and
undecidable in the general SQL case, so this module implements the practical,
*conservative* check an enforcement point needs: it errs on the side of
reporting a potential leak.  A privacy-violating query ``q_down`` is considered
**answerable from** the released view ``d'`` (described by the rewritten /
pushed-down query) when

1. every attribute ``q_down`` needs is exposed by ``d'`` (raw, not only inside
   an aggregate with a different grouping), and
2. the selection predicates of ``d'`` do not restrict the data more than
   ``q_down`` requires — i.e. every conjunctive comparison predicate of ``d'``
   is implied by some predicate of ``q_down`` (otherwise tuples ``q_down``
   needs may be missing, so ``q_down`` cannot be answered exactly), and
3. ``d'`` performs no grouping, or ``q_down`` only needs the grouped
   attributes and the aggregated outputs.

When the answer is "not answerable", the released view is safe w.r.t.
``q_down``;  when it is "answerable", the caller should extend the
anonymization step A (e.g. raise k, coarsen the grouping) as the paper
suggests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.render import render_expression
from repro.sql.visitor import collect_column_names


@dataclass
class ContainmentVerdict:
    """Outcome of the leakage check for one privacy-violating query."""

    answerable: bool
    reasons: List[str] = field(default_factory=list)
    missing_attributes: List[str] = field(default_factory=list)
    blocking_predicates: List[str] = field(default_factory=list)

    def explain(self) -> str:
        """Human-readable explanation of the verdict."""
        status = (
            "the released data STILL answers the privacy-violating query"
            if self.answerable
            else "the released data does not answer the privacy-violating query"
        )
        if not self.reasons:
            return status
        return status + ": " + "; ".join(self.reasons)


@dataclass(frozen=True)
class _Comparison:
    """A normalised ``column <op> constant`` predicate."""

    column: str
    operator: str
    constant: float


# Comparison implication table: predicate A (on the view) is implied by
# predicate B (of the attacker query) when every tuple satisfying B satisfies A.
def _implies(required: _Comparison, given: _Comparison) -> bool:
    if required.column != given.column:
        return False
    r_op, r_const = required.operator, required.constant
    g_op, g_const = given.operator, given.constant
    if r_op in ("<", "<="):
        if g_op == "<" and (g_const <= r_const):
            return True
        if g_op == "<=" and (g_const < r_const or (g_const == r_const and r_op == "<=")):
            return True
        if g_op == "=" and (g_const < r_const or (g_const == r_const and r_op == "<=")):
            return True
        return False
    if r_op in (">", ">="):
        if g_op == ">" and (g_const >= r_const):
            return True
        if g_op == ">=" and (g_const > r_const or (g_const == r_const and r_op == ">=")):
            return True
        if g_op == "=" and (g_const > r_const or (g_const == r_const and r_op == ">=")):
            return True
        return False
    if r_op == "=":
        return g_op == "=" and g_const == r_const
    return False


@dataclass
class ViewDescription:
    """What the released relation d' exposes, derived from its defining query."""

    #: Attributes available as raw values (output name, lower-cased).
    raw_attributes: Set[str]
    #: Output name → (aggregate function, source attribute) for aggregated outputs.
    aggregated_attributes: Dict[str, Tuple[str, str]]
    #: Normalised constant comparisons applied by the view.
    predicates: List[_Comparison]
    #: Attribute-vs-attribute comparison predicates (rendered) applied by the view.
    attribute_predicates: List[str]
    #: GROUP BY attributes (lower-cased); empty when the view does not group.
    group_by: Set[str]
    #: True when the view projects ``*`` (every base attribute is exposed).
    exposes_everything: bool = False


def describe_view(view_query: ast.Query) -> ViewDescription:
    """Summarise what the (rewritten, innermost-to-outermost) query releases.

    The description is computed from the innermost SELECT reading a base
    relation up through the chain of FROM-subqueries, mirroring how the
    fragment plan materialises d'.
    """
    stages: List[ast.SelectQuery] = []
    current = view_query
    while isinstance(current, ast.SelectQuery):
        stages.append(current)
        from_clause = current.from_clause
        if isinstance(from_clause, ast.SubqueryRef) and isinstance(
            from_clause.query, ast.SelectQuery
        ):
            current = from_clause.query
        else:
            break
    stages.reverse()  # innermost first

    raw: Set[str] = set()
    aggregated: Dict[str, Tuple[str, str]] = {}
    predicates: List[_Comparison] = []
    attribute_predicates: List[str] = []
    group_by: Set[str] = set()
    exposes_everything = False

    for index, stage in enumerate(stages):
        for term in ast.conjunction_terms(stage.where) + ast.conjunction_terms(stage.having):
            comparison = _normalise_comparison(term)
            if comparison is not None:
                predicates.append(comparison)
            elif isinstance(term, ast.BinaryOp):
                attribute_predicates.append(render_expression(term))
        if stage.group_by:
            group_by = {name for e in stage.group_by for name in collect_column_names(e)}

        stage_raw: Set[str] = set()
        stage_aggregated: Dict[str, Tuple[str, str]] = {}
        stage_star = False
        for item in stage.items:
            expression = item.expression
            if isinstance(expression, ast.Star):
                stage_star = True
                continue
            name = (item.output_name or render_expression(expression)).lower()
            if isinstance(expression, ast.Column):
                stage_raw.add(name)
            elif isinstance(expression, ast.FunctionCall) and ast.is_aggregate_function(
                expression.name
            ):
                sources = collect_column_names(expression)
                stage_aggregated[name] = (
                    expression.name.upper(),
                    sources[0] if sources else "",
                )
            else:
                stage_raw.add(name)

        if index == 0:
            raw = stage_raw
            aggregated = stage_aggregated
            exposes_everything = stage_star
        else:
            # Outer stages can only narrow (or aggregate) what inner stages expose.
            if not stage_star:
                previously_raw = raw | set(aggregated)
                raw = {
                    name
                    for name in stage_raw
                    if name in previously_raw or exposes_everything
                }
                carried_aggregates = {
                    name: aggregated[name] for name in stage_raw if name in aggregated
                }
                aggregated = {**carried_aggregates, **stage_aggregated}
                exposes_everything = False
    return ViewDescription(
        raw_attributes=raw,
        aggregated_attributes=aggregated,
        predicates=predicates,
        attribute_predicates=attribute_predicates,
        group_by=group_by,
        exposes_everything=exposes_everything,
    )


def check_leakage(view_query: ast.Query, violating_query) -> ContainmentVerdict:
    """Decide (conservatively) whether ``violating_query`` is answerable from d'.

    Args:
        view_query: The rewritten query whose result is released as d'.
        violating_query: The privacy-violating query Q↓ (SQL text or AST).
    """
    if isinstance(violating_query, str):
        violating_query = parse(violating_query)
    view = describe_view(view_query)
    verdict = ContainmentVerdict(answerable=True)

    needed = _needed_attributes(violating_query)
    available = set(view.raw_attributes) | set(view.aggregated_attributes)

    if not view.exposes_everything:
        missing = sorted(name for name in needed if name not in available)
        # Attributes only available in aggregated form do not answer queries
        # that use them as raw values (e.g. in WHERE or as plain projections),
        # unless the violating query asks for the same aggregate output name.
        aggregate_only = sorted(
            name
            for name in needed
            if name in view.aggregated_attributes and name not in view.raw_attributes
        )
        if missing:
            verdict.answerable = False
            verdict.missing_attributes = missing
            verdict.reasons.append(
                "attributes not exposed by d': " + ", ".join(missing)
            )
        if view.group_by and not needed <= (view.group_by | set(view.aggregated_attributes)):
            outside = sorted(needed - view.group_by - set(view.aggregated_attributes))
            if outside:
                verdict.answerable = False
                verdict.reasons.append(
                    "d' is grouped by "
                    + ", ".join(sorted(view.group_by))
                    + "; per-tuple values of "
                    + ", ".join(outside)
                    + " are lost"
                )
        del aggregate_only

    # Predicate check: every filter d' applies must be implied by the
    # violating query, otherwise rows Q↓ needs are missing from d'.
    violating_predicates = [
        comparison
        for term in _all_conjunctive_terms(violating_query)
        if (comparison := _normalise_comparison(term)) is not None
    ]
    for required in view.predicates:
        if not any(_implies(required, given) for given in violating_predicates):
            verdict.answerable = False
            verdict.blocking_predicates.append(
                f"{required.column} {required.operator} {required.constant:g}"
            )
    if verdict.blocking_predicates:
        verdict.reasons.append(
            "d' only contains tuples satisfying: "
            + ", ".join(verdict.blocking_predicates)
        )
    for rendered in view.attribute_predicates:
        violating_rendered = {
            render_expression(term) for term in _all_conjunctive_terms(violating_query)
        }
        if rendered not in violating_rendered:
            verdict.answerable = False
            verdict.blocking_predicates.append(rendered)
            verdict.reasons.append(f"d' only contains tuples satisfying: {rendered}")

    if verdict.answerable:
        verdict.reasons.append(
            "every attribute and tuple the query needs survives in d'; "
            "extend the anonymization step A"
        )
    return verdict


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _needed_attributes(query: ast.Query) -> Set[str]:
    return set(collect_column_names(query))


def _all_conjunctive_terms(query: ast.Query) -> List[ast.Expression]:
    terms: List[ast.Expression] = []
    stack: List[ast.Query] = [query]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.SetOperation):
            stack.extend([current.left, current.right])
            continue
        if not isinstance(current, ast.SelectQuery):
            continue
        terms.extend(ast.conjunction_terms(current.where))
        terms.extend(ast.conjunction_terms(current.having))
        from_clause = current.from_clause
        if isinstance(from_clause, ast.SubqueryRef):
            stack.append(from_clause.query)
    return terms


def _normalise_comparison(term: ast.Expression) -> Optional[_Comparison]:
    if not isinstance(term, ast.BinaryOp):
        return None
    operator = term.operator
    if operator not in {"<", "<=", ">", ">=", "="}:
        return None
    left, right = term.left, term.right
    if isinstance(left, ast.Column) and isinstance(right, ast.Literal):
        if isinstance(right.value, (int, float)) and not isinstance(right.value, bool):
            return _Comparison(left.name.lower(), operator, float(right.value))
        return None
    if isinstance(left, ast.Literal) and isinstance(right, ast.Column):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[operator]
        if isinstance(left.value, (int, float)) and not isinstance(left.value, bool):
            return _Comparison(right.name.lower(), flipped, float(left.value))
    return None
