"""Information-loss and privacy metrics.

Section 3.2 of the paper quantifies the quality difference between the
original and the anonymized data with two metrics:

* the **Direct Distance** ``DD(R, R')`` — the number of attribute values that
  differ between the original relation R and the anonymized relation R'
  (normalised by ``m * n`` it becomes the quality ratio), and
* the **Kullback-Leibler divergence** between the value distributions of R
  and R'.

This subpackage implements both, plus the standard k-anonymity quality
measures (discernibility, average equivalence-class size) used by the
anonymization benchmarks.
"""

from repro.metrics.distance import (
    DirectDistanceResult,
    direct_distance,
    quality_ratio,
)
from repro.metrics.divergence import (
    kl_divergence,
    kl_divergence_relation,
    value_distribution,
)
from repro.metrics.quality import (
    average_equivalence_class_size,
    discernibility_metric,
    suppression_ratio,
    InformationLossSummary,
    information_loss_summary,
)

__all__ = [
    "DirectDistanceResult",
    "direct_distance",
    "quality_ratio",
    "kl_divergence",
    "kl_divergence_relation",
    "value_distribution",
    "average_equivalence_class_size",
    "discernibility_metric",
    "suppression_ratio",
    "InformationLossSummary",
    "information_loss_summary",
]
