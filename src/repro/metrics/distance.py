"""The Direct Distance metric of Section 3.2.

The paper defines

.. math::

    DD(R, R') = \\sum_{i=1}^{n} \\sum_{j=1}^{m} distance(i, j)

with ``distance(i, j) = 0`` when the value at row *i*, column *j* is unchanged
and ``1`` otherwise, and calls the ratio of changed values to the total number
of values (``m * n``) the quality of the anonymized result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.table import Relation


@dataclass
class DirectDistanceResult:
    """Result of a Direct Distance computation."""

    changed_cells: int
    total_cells: int
    per_column: Dict[str, int] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Fraction of cells that differ (0 = identical, 1 = all changed)."""
        if self.total_cells == 0:
            return 0.0
        return self.changed_cells / self.total_cells

    @property
    def quality(self) -> float:
        """Fraction of cells preserved (the paper's quality of the result)."""
        return 1.0 - self.ratio


def direct_distance(
    original: Relation,
    anonymized: Relation,
    columns: Optional[Sequence[str]] = None,
    numeric_tolerance: float = 0.0,
) -> DirectDistanceResult:
    """Compute DD(R, R') between two relations.

    Rows are compared positionally (the anonymizers of this package preserve
    row order; suppressed rows count as fully changed).  When the anonymized
    relation has fewer rows than the original, the missing rows count as
    changed in every column; extra rows are ignored.

    Args:
        original: The relation before anonymization (R).
        anonymized: The relation after anonymization (R').
        columns: Columns to compare; defaults to the original's columns.
        numeric_tolerance: Two numeric values closer than this tolerance count
            as equal (useful when generalization rounds values).
    """
    names = list(columns) if columns is not None else list(original.schema.names)
    per_column: Dict[str, int] = {name: 0 for name in names}
    changed = 0

    for index, row in enumerate(original.rows):
        other = anonymized.rows[index] if index < len(anonymized.rows) else None
        for name in names:
            original_value = row.get(name)
            anonymized_value = other.get(name) if other is not None else None
            if not _values_equal(original_value, anonymized_value, numeric_tolerance):
                per_column[name] += 1
                changed += 1

    total = len(original.rows) * len(names)
    return DirectDistanceResult(changed_cells=changed, total_cells=total, per_column=per_column)


def quality_ratio(original: Relation, anonymized: Relation) -> float:
    """Shorthand for ``direct_distance(...).quality``."""
    return direct_distance(original, anonymized).quality


def _values_equal(left, right, tolerance: float) -> bool:
    if left is None and right is None:
        return True
    if left is None or right is None:
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) and not isinstance(
        left, bool
    ) and not isinstance(right, bool):
        return abs(float(left) - float(right)) <= tolerance
    return left == right
