"""Anonymization quality measures and the combined information-loss summary."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine.table import Relation
from repro.metrics.distance import direct_distance
from repro.metrics.divergence import kl_divergence_relation


def _equivalence_classes(relation: Relation, quasi_identifiers: Sequence[str]) -> Dict[tuple, int]:
    classes: Dict[tuple, int] = {}
    for row in relation.rows:
        key = tuple(str(row.get(name)) for name in quasi_identifiers)
        classes[key] = classes.get(key, 0) + 1
    return classes


def average_equivalence_class_size(
    relation: Relation, quasi_identifiers: Sequence[str]
) -> float:
    """Mean size of the equivalence classes induced by the quasi-identifiers."""
    classes = _equivalence_classes(relation, quasi_identifiers)
    if not classes:
        return 0.0
    return len(relation) / len(classes)


def discernibility_metric(relation: Relation, quasi_identifiers: Sequence[str]) -> int:
    """The discernibility metric C_DM: sum of squared equivalence-class sizes."""
    classes = _equivalence_classes(relation, quasi_identifiers)
    return sum(size * size for size in classes.values())


def suppression_ratio(original: Relation, anonymized: Relation) -> float:
    """Fraction of rows removed (suppressed) by the anonymization."""
    if len(original) == 0:
        return 0.0
    return max(0, len(original) - len(anonymized)) / len(original)


@dataclass
class InformationLossSummary:
    """Combined information-loss report used by reports and benchmarks."""

    direct_distance: int
    direct_distance_ratio: float
    quality: float
    kl_divergence_mean: float
    kl_divergence_per_column: Dict[str, float]
    suppression_ratio: float
    rows_original: int
    rows_anonymized: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dict (for CSV-style benchmark output)."""
        return {
            "direct_distance": self.direct_distance,
            "dd_ratio": round(self.direct_distance_ratio, 4),
            "quality": round(self.quality, 4),
            "kl_mean": round(self.kl_divergence_mean, 4),
            "suppression": round(self.suppression_ratio, 4),
            "rows_original": self.rows_original,
            "rows_anonymized": self.rows_anonymized,
        }


def information_loss_summary(
    original: Relation,
    anonymized: Relation,
    columns: Optional[Sequence[str]] = None,
) -> InformationLossSummary:
    """Compute the full information-loss summary between R and R'."""
    dd = direct_distance(original, anonymized, columns=columns)
    kl = kl_divergence_relation(original, anonymized, columns=columns)
    per_column = {name: value for name, value in kl.items() if name != "__mean__"}
    return InformationLossSummary(
        direct_distance=dd.changed_cells,
        direct_distance_ratio=dd.ratio,
        quality=dd.quality,
        kl_divergence_mean=kl["__mean__"],
        kl_divergence_per_column=per_column,
        suppression_ratio=suppression_ratio(original, anonymized),
        rows_original=len(original),
        rows_anonymized=len(anonymized),
    )
