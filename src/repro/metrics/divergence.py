"""Kullback–Leibler divergence between value distributions.

The paper uses the KL divergence [KL51] as its information-loss metric "which
has been shown to be a good approximation to determine how much information
remain" [HS10].  We compute it per column between the value distribution of
the original relation and the distribution of the anonymized relation:
numeric columns are histogrammed over the original's value range, categorical
columns use their category frequencies.  The relation-level divergence is the
mean over the compared columns.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.table import Relation

#: Small probability mass assigned to empty bins so the divergence stays finite.
_EPSILON = 1e-9


def value_distribution(
    values: Sequence[Any],
    bins: int = 20,
    value_range: Optional[Tuple[float, float]] = None,
) -> Dict[Any, float]:
    """Estimate the probability distribution of a value sequence.

    Numeric sequences are binned into ``bins`` equal-width buckets over
    ``value_range`` (defaults to the sequence's own min/max); other sequences
    use category frequencies.  ``None`` values are ignored.
    """
    present = [value for value in values if value is not None]
    if not present:
        return {}
    if all(isinstance(value, (int, float)) and not isinstance(value, bool) for value in present):
        return _numeric_distribution(present, bins, value_range)
    counts = Counter(str(value) for value in present)
    total = sum(counts.values())
    return {category: count / total for category, count in counts.items()}


def _numeric_distribution(
    values: Sequence[float], bins: int, value_range: Optional[Tuple[float, float]]
) -> Dict[Any, float]:
    low, high = value_range if value_range is not None else (min(values), max(values))
    if high <= low:
        return {0: 1.0}
    width = (high - low) / bins
    counts: Counter = Counter()
    for value in values:
        index = int((float(value) - low) / width)
        index = min(max(index, 0), bins - 1)
        counts[index] += 1
    total = sum(counts.values())
    return {index: count / total for index, count in counts.items()}


def kl_divergence(
    original: Dict[Any, float], anonymized: Dict[Any, float]
) -> float:
    """KL divergence D(P || Q) of two discrete distributions.

    ``P`` is the original distribution, ``Q`` the anonymized one.  Categories
    missing from either side receive a tiny epsilon mass so the result stays
    finite (the standard smoothing used in practice).
    """
    if not original:
        return 0.0
    categories = set(original) | set(anonymized)
    divergence = 0.0
    for category in categories:
        p = original.get(category, _EPSILON)
        q = anonymized.get(category, _EPSILON)
        if p <= 0:
            continue
        divergence += p * math.log(p / q)
    return max(0.0, divergence)


def kl_divergence_relation(
    original: Relation,
    anonymized: Relation,
    columns: Optional[Sequence[str]] = None,
    bins: int = 20,
) -> Dict[str, float]:
    """Per-column KL divergence between two relations.

    Only columns present in both relations are compared.  The special key
    ``"__mean__"`` carries the mean divergence over the compared columns (the
    relation-level information-loss figure used by the benchmarks).
    """
    if columns is None:
        columns = [
            name
            for name in original.schema.names
            if name in anonymized.schema
        ]
    results: Dict[str, float] = {}
    divergences: List[float] = []
    for name in columns:
        original_values = original.column_values(name)
        anonymized_values = (
            anonymized.column_values(name) if name in anonymized.schema else []
        )
        value_range = _common_numeric_range(original_values)
        p = value_distribution(original_values, bins=bins, value_range=value_range)
        q = value_distribution(anonymized_values, bins=bins, value_range=value_range)
        divergence = kl_divergence(p, q)
        results[name] = divergence
        divergences.append(divergence)
    results["__mean__"] = sum(divergences) / len(divergences) if divergences else 0.0
    return results


def _common_numeric_range(values: Sequence[Any]) -> Optional[Tuple[float, float]]:
    numeric = [
        float(value)
        for value in values
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]
    if not numeric:
        return None
    return (min(numeric), max(numeric))
