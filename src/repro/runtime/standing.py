"""Incremental standing queries: delta-maintained aggregate state trees.

The ROADMAP's north star is heavy continuous traffic against one smart
environment, yet re-executing every registered query from scratch on each
arriving sensor chunk makes the per-query cost O(all data ever loaded).
This module turns PR 3's mergeable partial-state protocol
(``partial()``/``merge()``/``finalize()`` — an *exact* delta algebra, see
:mod:`repro.engine.aggregates`) into the refresh path:

* Sessions **register** standing decomposable GROUP BY/aggregate queries
  (the same admissibility rules as the distributed pushdown,
  :func:`repro.fragment.plan.is_decomposable_aggregation`, optionally after
  the paper's admission + privacy rewriting).
* The runtime plans each query once and materializes a **state tree** over
  the shared topology: one partial-state relation per leaf chunk, combined
  per level along the placement :func:`repro.runtime.dag.lift_node_groups`
  computes — the same shape the DAG scheduler would build, but *kept alive*
  between refreshes.  States are stored packed through the wire codec
  (:func:`repro.engine.wire.pack_state_relation`), so the recorded
  ``standing.state_bytes`` are honest shipped-size bytes.
* On each arriving chunk the runtime appends it at the **end** of the
  owning leaf's partition (``NetworkSimulator.append_to_partition``),
  folds a partial state over only the delta rows into the stored leaf
  state, re-combines only the leaf's root path, and re-finalizes the
  affected trees' subscribers.  Maintenance cost is O(delta x groups), not
  O(data).

Why the results are *byte-identical* to from-scratch re-execution: group
output order is first-occurrence order over the input, deltas append at the
end of a leaf chunk, and ``union_partials([old_state, delta_state])`` feeds
the merge in exactly that order — so the merged group order (and every
MIN/MAX tie, which keeps the first-seen value) equals a single pass over
the full chunk.  Sibling states union in partition order up the tree,
which is the serial oracle's concatenation order.  The accumulators
themselves are exact (Shewchuk float expansions, exact int sums, Fraction
moments), so there is no drift for the differential tests to forgive.

Cross-session sharing: queries over the same table, WHERE clause and group
keys whose aggregate calls are a subset of an existing tree's attach to
that tree as additional *subscribers* — per-query finalize (HAVING /
ORDER BY / projection) over one maintained state stream.  Every attach is
gated by :func:`repro.rewrite.containment.check_leakage`: the subscriber
must be answerable from the tree's core view, the same containment
reasoning the privacy layer uses for d'.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.database import Database
from repro.engine.errors import ExecutionError
from repro.engine.executor import _shallow_function_calls, execution_mode
from repro.engine.schema import ColumnDef, Schema
from repro.engine.stats import optimizer_mode
from repro.engine.table import Relation
from repro.engine.wire import pack_state_relation, unpack_state_relation
from repro.fragment.plan import is_decomposable_aggregation
from repro.obs.metrics import registry as _metrics
from repro.obs.trace import QueryTrace
from repro.rewrite.analyzer import NodeCapacity
from repro.rewrite.containment import check_leakage
from repro.runtime.dag import lift_node_groups, rebase_table_refs, union_partials
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.render import render, render_expression
from repro.sql.visitor import clone, transform

if False:  # pragma: no cover - import cycle guard (typing only)
    from repro.processor.paradise import ParadiseProcessor

__all__ = [
    "StandingQueryError",
    "StandingQueryHandle",
    "StandingQueryRuntime",
]

#: Reserved per-leaf table name the delta chunk is registered under while
#: its partial state is computed (dropped immediately after).
DELTA_TABLE = "__standing_delta"


class StandingQueryError(ExecutionError):
    """A query that cannot be registered as a standing query."""


def _ordered_aggregate_calls(
    query: ast.SelectQuery,
) -> List[Tuple[str, ast.FunctionCall]]:
    """Distinct aggregate calls in the executor's state-column order.

    Mirrors ``QueryExecutor._collect_aggregate_calls`` + the
    ``_partial_plan`` dedup exactly: the i-th entry here is what the
    partial plan stores under state column ``__agg{i}`` — the contract the
    cross-tree state remapping below relies on.
    """
    sources: List[ast.Node] = [item.expression for item in query.items]
    if query.having is not None:
        sources.append(query.having)
    sources.extend(item.expression for item in query.order_by)
    ordered: List[Tuple[str, ast.FunctionCall]] = []
    seen: set = set()
    for source in sources:
        for call in _shallow_function_calls(source):
            if call.window is None and ast.is_aggregate_function(call.name):
                key = render_expression(call)
                if key not in seen:
                    seen.add(key)
                    ordered.append((key, call))
    return ordered


def _core_query(
    sample: ast.SelectQuery, calls: Sequence[ast.FunctionCall]
) -> ast.SelectQuery:
    """The tree's maintained view: keys + aggregate calls, no finalize tail.

    ``SELECT k1..kn, agg1 AS __agg0, ... FROM t WHERE ... GROUP BY k1..kn``
    — the query partial/combine run against.  Each aggregate item is aliased
    to its state-column name, so the view the containment checker sees
    exposes exactly the columns the state relation carries.  HAVING /
    ORDER BY / projection stay per subscriber (they only touch finalized
    values).
    """
    core = clone(sample)
    core.items = [
        ast.SelectItem(expression=clone(key)) for key in sample.group_by
    ] + [
        ast.SelectItem(expression=clone(call), alias=f"__agg{index}")
        for index, call in enumerate(calls)
    ]
    core.having = None
    core.order_by = []
    return core


def _view_image(
    query: ast.SelectQuery, alias_by_key: Mapping[str, str]
) -> ast.SelectQuery:
    """Rewrite ``query`` as it would read against the tree's core view.

    Every aggregate call becomes a reference to the view's aliased output
    column (``AVG(z)`` -> ``__agg1``), leaving only group keys and view
    columns — the form :func:`check_leakage` can reason about: a query is
    answerable from d' exactly when everything it needs survives in d'.
    """

    def visitor(node: ast.Node) -> Optional[ast.Node]:
        if (
            isinstance(node, ast.FunctionCall)
            and node.window is None
            and ast.is_aggregate_function(node.name)
        ):
            alias = alias_by_key.get(render_expression(node))
            if alias is not None:
                return ast.Column(name=alias)
        return None

    image = transform(clone(query), visitor)
    # The sharing signature already guarantees the subscriber's WHERE
    # renders identically to the view's, i.e. the view has applied exactly
    # this filter; a query rewritten against d' would not repeat it.  Kept,
    # its raw columns (which the grouped view cannot expose) would fail the
    # attribute check for the wrong reason.
    image.where = None
    return image


class StandingQueryHandle:
    """One registered standing query (a subscriber of a state tree)."""

    def __init__(
        self,
        query_id: str,
        query: ast.SelectQuery,
        sql: str,
        tree: "_StateTree",
        state_map: List[int],
    ) -> None:
        self.query_id = query_id
        self.query = query
        self.sql = sql
        self.tree = tree
        #: For each of this query's state columns ``__agg{j}``, the index of
        #: the corresponding state column in the tree's core state relation.
        self.state_map = state_map
        #: Refresh epoch the cached result was finalized at.
        self.epoch = -1
        self._result: Optional[Relation] = None

    @property
    def shared(self) -> bool:
        """True when this handle shares its state tree with other queries."""
        return len(self.tree.subscribers) > 1

    def result(self) -> Relation:
        """The latest finalized result (refreshed eagerly on each delta)."""
        if self._result is None:
            raise StandingQueryError(f"Standing query {self.query_id} never finalized")
        return self._result


class _StateTree:
    """The maintained partial-state tree one or more subscribers share."""

    def __init__(
        self,
        runtime: "StandingQueryRuntime",
        tree_id: int,
        table: str,
        core: ast.SelectQuery,
        agg_keys: List[str],
    ) -> None:
        self.runtime = runtime
        self.tree_id = tree_id
        self.table = table
        self.core = core
        #: Ordered render keys of the core's aggregate calls: ``agg_keys[i]``
        #: is the call whose state lives in core state column ``__agg{i}``.
        self.agg_keys = agg_keys
        self.subscribers: List[StandingQueryHandle] = []
        #: Packed partial-state relation per holder node (leaf chunks).
        self.leaf_states: Dict[str, bytes] = {}
        #: Packed combined state per lifted (non-leaf) node.
        self.node_states: Dict[str, bytes] = {}
        #: Per-level combine placement, computed once from
        #: :func:`lift_node_groups` (the DAG scheduler's lifting rule).
        self.levels: List[List[Tuple[str, List[str]]]] = []
        #: Nodes whose states union (in partition order) into the root state.
        self.top_nodes: List[str] = []
        self._delta_query = rebase_table_refs(core, table, DELTA_TABLE)
        #: Root-state cache: every subscriber of a refresh epoch finalizes
        #: over the same root union, so it is materialized once per delta.
        self._root_cache: Optional[Relation] = None
        self._build_initial()

    # -- construction ---------------------------------------------------
    def _build_initial(self) -> None:
        network = self.runtime.network
        for holder in network.partition_holders(self.table):
            database = network.database(holder)
            if self.table not in database:
                continue  # registered before any data landed on this node
            state = database.partial_aggregate(self.core)
            self.leaf_states[holder] = pack_state_relation(state)
        self._rebuild_placement()

    def _rebuild_placement(self) -> None:
        """(Re)compute the per-level combine placement and all lifted states.

        Runs at tree creation and again when a *new* holder appears (a node
        that received its first chunk after the tree was built) — holders
        stay in partition order, so the root union keeps matching the
        oracle's concatenation order.
        """
        holders = [
            holder
            for holder in self.runtime.network.partition_holders(self.table)
            if holder in self.leaf_states
        ]
        self.levels = []
        self.node_states = {}
        current = list(holders)
        while len(current) > 1:
            groups = lift_node_groups(self.runtime.topology, current)
            if groups is None:
                break
            self.levels.append(groups)
            current = [parent for parent, _ in groups]
        self.top_nodes = current
        self._root_cache = None
        for groups in self.levels:
            for parent, children in groups:
                self._recombine(parent, children)

    def _state_of(self, node: str) -> Relation:
        packed = self.node_states.get(node)
        if packed is None:
            packed = self.leaf_states[node]
        return unpack_state_relation(packed)

    def _recombine(self, parent: str, children: Sequence[str]) -> None:
        merged = union_partials(
            [self._state_of(child) for child in children], name=""
        )
        combined = self.runtime.network.database(parent).combine_partials(
            self.core, merged
        )
        self.node_states[parent] = pack_state_relation(combined)

    # -- refresh --------------------------------------------------------
    def apply_delta(self, leaf: str, delta: Relation) -> int:
        """Fold ``delta``'s partial state into ``leaf`` and its root path.

        Returns the number of groups whose state changed (the delta state's
        group count) — everything else in the tree is untouched.
        """
        network = self.runtime.network
        database = network.database(leaf)
        if leaf not in self.leaf_states:
            # First chunk on a node the tree has never covered: its current
            # chunk (delta included — it was already appended) becomes a new
            # leaf state, and the placement rebuilds over the grown holder
            # list so the root union stays in partition order.
            state = database.partial_aggregate(self.core)
            self.leaf_states[leaf] = pack_state_relation(state)
            self._rebuild_placement()
            return len(state)
        # The reserved delta table stays registered between refreshes:
        # re-registering a same-shaped relation keeps the leaf executor and
        # its compiled partial plan warm (dropping it would invalidate them
        # on every delta).
        database.register(DELTA_TABLE, delta)
        delta_state = database.partial_aggregate(self._delta_query)
        old_state = unpack_state_relation(self.leaf_states[leaf])
        # Old state first, delta state second: first-occurrence order over
        # the concatenation equals one pass over the full chunk.
        merged = database.combine_partials(
            self.core, union_partials([old_state, delta_state], name="")
        )
        self.leaf_states[leaf] = pack_state_relation(merged)
        self._root_cache = None
        node = leaf
        for groups in self.levels:
            for parent, children in groups:
                if node in children:
                    self._recombine(parent, children)
                    node = parent
                    break
        return len(delta_state)

    # -- finalize -------------------------------------------------------
    def root_state(self) -> Relation:
        """Union of the top-level states, in partition order (cached)."""
        if self._root_cache is None:
            self._root_cache = union_partials(
                [self._state_of(node) for node in self.top_nodes], name=""
            )
        return self._root_cache

    def _remap_state(self, state: Relation, handle: StandingQueryHandle) -> Relation:
        """Project/rename the core state columns into the subscriber's layout.

        A subscriber whose aggregate calls are a strict subset (or a
        different order) of the core's expects state columns ``__agg0..``
        in *its own* spec order; group-key columns pass through by name.
        """
        if handle.state_map == list(range(len(self.agg_keys))):
            return state
        key_count = len(state.schema.columns) - len(self.agg_keys)
        key_columns = state.schema.columns[:key_count]
        columns: List[Any] = [
            state.column_array(column.name) for column in key_columns
        ]
        schema_columns = list(key_columns)
        for position, core_index in enumerate(handle.state_map):
            source = state.schema.columns[key_count + core_index]
            schema_columns.append(
                ColumnDef(name=f"__agg{position}", data_type=source.data_type)
            )
            columns.append(state.column_array(source.name))
        return Relation.from_columns(Schema(schema_columns), columns, name="")

    def finalize(self, handle: StandingQueryHandle) -> Relation:
        """Run the subscriber's finalize tail over the shared root state."""
        state = self._remap_state(self.root_state(), handle)
        database = self.runtime.network.database(self.runtime.topology.cloud.name)
        return database.finalize_partials(handle.query, state)

    def state_bytes(self) -> int:
        """Total packed size of every stored state (wire-codec bytes)."""
        return sum(len(packed) for packed in self.leaf_states.values()) + sum(
            len(packed) for packed in self.node_states.values()
        )


class StandingQueryRuntime:
    """Registers standing queries and maintains their shared state trees.

    One runtime per shared :class:`~repro.processor.paradise.ParadiseProcessor`
    (one topology + network).  All ingestion goes through :meth:`append`
    (or a stream bound via :meth:`bind_stream`); a single ingest lock
    serializes appends and refreshes, so concurrent producers interleave at
    chunk granularity — each refresh observes a consistent prefix and the
    differential oracle holds at every epoch.
    """

    def __init__(
        self,
        processor: "ParadiseProcessor",
        table_name: str = "d",
        trace: Optional[QueryTrace] = None,
    ) -> None:
        self.processor = processor
        self.network = processor.network
        self.topology = processor.topology
        self.default_table = table_name
        self.trace = trace
        self._lock = threading.RLock()
        self._trees: Dict[Tuple[str, str, frozenset], List[_StateTree]] = {}
        self._handles: Dict[str, StandingQueryHandle] = {}
        self._epoch = 0
        self._next_tree_id = 0
        self._next_query_id = 0
        self._last_refresh_span_id: Optional[int] = None

    # ------------------------------------------------------------------
    # engine-mode plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _engine(self) -> Iterator[None]:
        """Run engine calls under the processor's engine/optimizer modes."""
        with execution_mode(self.processor.engine_mode), optimizer_mode(
            self.processor.optimizer
        ):
            yield

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    @property
    def refresh_epoch(self) -> int:
        """Number of ingested deltas (each one refresh epoch)."""
        with self._lock:
            return self._epoch

    @property
    def tree_count(self) -> int:
        with self._lock:
            return sum(len(trees) for trees in self._trees.values())

    def handles(self) -> List[StandingQueryHandle]:
        with self._lock:
            return list(self._handles.values())

    def _signature(
        self, query: ast.SelectQuery
    ) -> Tuple[str, str, frozenset]:
        table = query.from_clause.name.lower()
        where = render_expression(query.where) if query.where is not None else ""
        keys = frozenset(column.name.lower() for column in query.group_by)
        return (table, where, keys)

    def register(
        self,
        query: Union[str, ast.Query],
        module_id: str = "ActionFilter",
        apply_rewriting: bool = False,
    ) -> StandingQueryHandle:
        """Register a standing query; returns its live handle.

        ``apply_rewriting=True`` routes the query through the paper's
        admission check and privacy rewriting first (the same gate
        interactive sessions pass), so a standing subscription can never
        see more than a one-shot query could.  The (possibly rewritten)
        query must be a decomposable aggregation — the same class the
        distributed GROUP BY pushdown handles.
        """
        parsed = parse(query) if isinstance(query, str) else clone(query)
        if apply_rewriting:
            parsed = self._admit(parsed, module_id)
        if not isinstance(parsed, ast.SelectQuery) or not is_decomposable_aggregation(
            parsed
        ):
            raise StandingQueryError(
                "Standing queries must be decomposable aggregations "
                "(single-table GROUP BY with mergeable aggregate calls)"
            )
        sub_keys = [key for key, _ in _ordered_aggregate_calls(parsed)]
        signature = self._signature(parsed)
        with self._lock, self._engine():
            tree, shared = self._attach_tree(parsed, signature, sub_keys)
            self._next_query_id += 1
            handle = StandingQueryHandle(
                query_id=f"q{self._next_query_id - 1}",
                query=parsed,
                sql=render(parsed),
                tree=tree,
                state_map=[tree.agg_keys.index(key) for key in sub_keys],
            )
            tree.subscribers.append(handle)
            handle._result = tree.finalize(handle)
            handle.epoch = self._epoch
            self._handles[handle.query_id] = handle
            _metrics.counter("standing.registered").inc()
            if shared:
                _metrics.counter("standing.shared_attach").inc()
            _metrics.gauge("standing.trees").set(self.tree_count)
            _metrics.gauge("standing.subscribers").set(len(self._handles))
            self._record_state_bytes()
            return handle

    def _admit(self, parsed: ast.Query, module_id: str) -> ast.Query:
        """The paper's admission + rewriting gate (mirrors the processor)."""
        sensor_node = self.topology.nodes[0]
        table = (
            parsed.from_clause.name
            if isinstance(parsed, ast.SelectQuery)
            and isinstance(parsed.from_clause, ast.TableRef)
            else self.default_table
        )
        admission = self.processor.analyzer.admit(
            parsed,
            module_id,
            estimated_rows=self.network.base_table_rows(table),
            capacity=NodeCapacity(
                cpu_power=sensor_node.cpu_power or 1.0,
                free_memory_mb=self.topology.cloud.free_memory_mb,
            ),
            # A standing query registers once and refreshes forever; the
            # repeat-interval throttle targets re-submission, not refreshes.
            enforce_interval=False,
        )
        if not admission.admitted:
            raise StandingQueryError(
                f"Standing query refused by admission: {admission.explain()}"
            )
        rewrite = self.processor.rewriter.rewrite(parsed, module_id)
        if not rewrite.compliant:
            raise StandingQueryError("Standing query rewriting found no compliant form")
        return rewrite.query

    def _attach_tree(
        self,
        parsed: ast.SelectQuery,
        signature: Tuple[str, str, frozenset],
        sub_keys: List[str],
    ) -> Tuple[_StateTree, bool]:
        """Find a compatible existing tree or materialize a new one.

        Compatible: same table/WHERE/group keys, the subscriber's aggregate
        calls a subset of the tree's, and the subscriber answerable from
        the tree's core view per the containment checker (the same
        reasoning that decides whether d' leaks).
        """
        for tree in self._trees.get(signature, []):
            if all(key in tree.agg_keys for key in sub_keys):
                alias_by_key = {
                    key: f"__agg{index}"
                    for index, key in enumerate(tree.agg_keys)
                }
                image = _view_image(parsed, alias_by_key)
                # The view copy drops its WHERE for the same reason the
                # image does (see _view_image): the signature guarantees
                # both filters render identically, so predicate containment
                # holds by construction and the check focuses on whether
                # every needed attribute survives grouping.
                view = clone(tree.core)
                view.where = None
                if check_leakage(view, image).answerable:
                    return tree, True
        calls = [call for _, call in _ordered_aggregate_calls(parsed)]
        core = _core_query(parsed, calls)
        tree = _StateTree(
            runtime=self,
            tree_id=self._next_tree_id,
            table=parsed.from_clause.name,
            core=core,
            agg_keys=sub_keys,
        )
        self._next_tree_id += 1
        self._trees.setdefault(signature, []).append(tree)
        return tree, False

    # ------------------------------------------------------------------
    # ingestion + refresh
    # ------------------------------------------------------------------
    def _as_relation(
        self,
        node_name: str,
        table: str,
        delta: Union[Relation, Sequence[Mapping[str, Any]]],
    ) -> Relation:
        if isinstance(delta, Relation):
            return delta
        database = self.network.database(node_name)
        if table in database:
            schema = database.table(table).schema
        else:
            schema = Schema.infer(list(delta))
        from repro.streams.stream import readings_to_relation

        return readings_to_relation(schema, list(delta), name=table)

    def append(
        self,
        node_name: str,
        delta: Union[Relation, Sequence[Mapping[str, Any]]],
        table_name: Optional[str] = None,
    ) -> int:
        """Ingest one delta chunk at ``node_name`` and refresh every tree.

        The delta lands at the end of the node's partition chunk (keeping
        the concatenated stream identical to a from-scratch load), the
        touched leaf state absorbs the delta's partial state, the leaf's
        root path re-combines, and every subscriber of an affected tree is
        re-finalized.  Returns the new refresh epoch.
        """
        table = table_name or self.default_table
        with self._lock:
            relation = self._as_relation(node_name, table, delta)
            self._epoch += 1
            epoch = self._epoch
            span = None
            if self.trace is not None:
                span = self.trace.begin(
                    f"refresh[epoch={epoch}]",
                    kind="standing",
                    node=node_name,
                    epoch=epoch,
                    delta_rows=len(relation),
                )
                if self._last_refresh_span_id is not None:
                    span.attrs["previous_epoch_span"] = self._last_refresh_span_id
            started = time.perf_counter()
            try:
                self.network.append_to_partition(node_name, table, relation)
                groups_touched = 0
                refinalized = 0
                with self._engine():
                    for tree in self._trees_for(table):
                        if len(relation) == 0:
                            # Empty delta: the state (hence every result)
                            # is unchanged; only the epoch advances.
                            for handle in tree.subscribers:
                                handle.epoch = epoch
                            continue
                        groups_touched += tree.apply_delta(node_name, relation)
                        for handle in tree.subscribers:
                            finalize_started = time.perf_counter()
                            handle._result = tree.finalize(handle)
                            handle.epoch = epoch
                            refinalized += 1
                            _metrics.histogram(
                                "standing.finalize_seconds"
                            ).observe(time.perf_counter() - finalize_started)
                _metrics.counter("standing.refreshes").inc()
                _metrics.counter("standing.delta_rows").inc(len(relation))
                _metrics.counter("standing.groups_refinalized").inc(groups_touched)
                _metrics.counter("standing.subscriber_refreshes").inc(refinalized)
                _metrics.histogram("standing.refresh_seconds").observe(
                    time.perf_counter() - started
                )
                self._record_state_bytes()
            except BaseException:
                if span is not None:
                    self.trace.finish(span, status="error")
                raise
            if span is not None:
                self._last_refresh_span_id = span.span_id
                self.trace.finish(span)
            return epoch

    def _trees_for(self, table: str) -> List[_StateTree]:
        wanted = table.lower()
        return [
            tree
            for trees in self._trees.values()
            for tree in trees
            if tree.table.lower() == wanted
        ]

    def _record_state_bytes(self) -> None:
        total = sum(tree.state_bytes() for tree in self._trees_for_all())
        _metrics.gauge("standing.state_bytes").set(total)

    def _trees_for_all(self) -> List[_StateTree]:
        return [tree for trees in self._trees.values() for tree in trees]

    # ------------------------------------------------------------------
    # stream binding
    # ------------------------------------------------------------------
    def bind_stream(
        self, stream: Any, node_name: str, table_name: Optional[str] = None
    ) -> Any:
        """Subscribe to a :class:`~repro.streams.stream.SensorStream`.

        Every batch pushed to the stream becomes one delta chunk appended
        at ``node_name``.  Returns the listener (pass it to
        ``stream.unsubscribe`` to detach).
        """
        table = table_name or self.default_table

        def _on_push(readings: List[Mapping[str, Any]]) -> None:
            self.append(node_name, readings, table_name=table)

        stream.subscribe(_on_push)
        return _on_push

    # ------------------------------------------------------------------
    # differential oracle
    # ------------------------------------------------------------------
    def reexecute(self, handle: StandingQueryHandle) -> Relation:
        """From-scratch execution of ``handle`` over the *current* data.

        The differential oracle: concatenates the partition chunks in
        partition order (exactly the relation a fresh ``load_sensor_data``
        of the same stream would have produced), registers it on a scratch
        database, and runs the standing query end to end under the same
        engine mode.  Every refresh result must be byte-identical to this.
        """
        table = handle.tree.table
        chunks = []
        for holder in self.network.partition_holders(table):
            database = self.network.database(holder)
            if table in database:
                chunks.append(database.table(table))
        full = union_partials(chunks, name=table)
        scratch = Database(name="standing-oracle")
        scratch.register(table, full)
        with self._lock, self._engine():
            return scratch.query(handle.query)
