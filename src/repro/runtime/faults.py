"""Failure injection, retry policy and recovery state for the runtime.

Smart-environment devices are cheap and flaky: sensors run out of battery
mid-query, appliances hang, links drop packets.  The runtime (PRs 2-4)
assumed every node survives the whole DAG; this module supplies the pieces
that let it stop assuming that:

* :class:`FailureInjector` — a deterministic chaos harness.  A
  :class:`Fault` kills a named node at a named task boundary, makes a task
  raise a transient error, hangs a task (so the scheduler's timeout
  machinery can detect a stuck device), or drops/delays a link inside
  :class:`~repro.processor.network.NetworkSimulator`.  Faults match tasks
  by node and task-id substring, fire a bounded number of times, and the
  :meth:`FailureInjector.random_node_kills` helper derives a reproducible
  fault set from a seed — the chaos benchmark and the differential test
  grid both rely on runs being exactly replayable.

* :class:`RetryPolicy` — bounded per-task retries with exponential backoff
  for *transient* failures (injected task errors, link drops).  Genuine
  engine errors are never retried: the serial/parallel error-parity
  contract requires them to propagate unchanged.

* :class:`CheckpointStore` — mergeable aggregate states checkpointed at
  combine boundaries, packed through the exact binary codec of
  :mod:`repro.engine.wire`.  Checkpoints are keyed by *task signature* (a
  Merkle-style hash over the task's placement, names and dependency
  signatures, see :func:`repro.runtime.dag.build_execution_dag`), so after
  a re-plan only subtrees whose inputs actually changed re-run — recovery
  replays the lost leaves, not the whole tree.

* :class:`CompletenessReport` — the graceful-degradation contract.  When a
  failure is unrecoverable (a dead sensor whose chunk is truly lost) and
  policy allows partial results, the query still returns a relation plus a
  report that *exactly* enumerates what is missing: which partitions, on
  which nodes, how many rows, and whether aggregates are exact or partial.
  The salvage/reconcile/re-export recovery idiom: degrade explicitly
  instead of failing the session.

Exception taxonomy (what the scheduler does with each):

========================  =================================================
:class:`TransientTaskError`  retry the task in place, with backoff
:class:`LinkDown`            (a transient) — the link may come back
:class:`NodeDeath`           escalate: mark the node dead, re-plan the DAG
:class:`DataLossError`       unrecoverable loss refused by policy — abort
any other exception          genuine error: propagate unchanged (parity)
========================  =================================================
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.obs.metrics import registry as _metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.table import Relation
    from repro.fragment.topology import Topology


# ---------------------------------------------------------------------------
# exceptions
# ---------------------------------------------------------------------------


class FaultError(Exception):
    """Base class of every infrastructure failure the runtime can recover."""


class TransientTaskError(FaultError):
    """A task failure worth retrying in place (flaky read, injected error)."""


class InjectedTaskError(TransientTaskError):
    """A task error raised by the failure-injection harness."""


class LinkDown(TransientTaskError):
    """A shipment failed because the link between two nodes is down."""

    def __init__(self, source: str, target: str, message: str = "") -> None:
        self.source = source
        self.target = target
        super().__init__(message or f"link {source} -> {target} is down")


class NodeDeath(FaultError):
    """A node died (or was declared dead); the DAG must re-plan without it.

    ``lose_data`` distinguishes a crashed process whose data can be re-read
    by a sibling (recoverable: the differential contract demands a
    byte-identical result) from a destroyed device whose resident chunk is
    gone (unrecoverable: the result is partial and must say so).
    """

    def __init__(self, node: str, cause: str = "", lose_data: bool = False) -> None:
        self.node = node
        self.cause = cause
        self.lose_data = lose_data
        suffix = " (resident data lost)" if lose_data else ""
        super().__init__(f"node {node} died{suffix}: {cause or 'injected failure'}")


class DataLossError(FaultError):
    """Unrecoverable data loss that the session's policy refuses to degrade."""

    def __init__(self, lost: Sequence["LostPartition"], message: str = "") -> None:
        self.lost = list(lost)
        detail = "; ".join(str(partition) for partition in self.lost)
        super().__init__(
            message
            or f"query cannot complete: {detail or 'base data lost'} "
            "(pass on_data_loss='partial' to accept a partial result)"
        )


# ---------------------------------------------------------------------------
# fault model
# ---------------------------------------------------------------------------

KILL_NODE = "kill_node"
TASK_ERROR = "task_error"
HANG = "hang"
DROP_LINK = "drop_link"
DELAY_LINK = "delay_link"

_TASK_KINDS = (KILL_NODE, TASK_ERROR, HANG)
_LINK_KINDS = (DROP_LINK, DELAY_LINK)


@dataclass
class Fault:
    """One deterministic failure to inject.

    Attributes:
        kind: One of ``kill_node``, ``task_error``, ``hang`` (task-boundary
            faults) or ``drop_link``, ``delay_link`` (shipment faults).
        node: Node the fault applies to (task faults: the executing node;
            link faults: the source).  ``None`` matches any node.
        at_task: Substring matched against the task id (ids embed the
            fragment name and placement, e.g. ``t003:d1[sensor_2]`` or
            ``t014:d2~combine[appliance_1]``); ``None`` matches any task.
        when: ``"start"`` fires at the task-start boundary, ``"finish"``
            after the task's work completed (its output is discarded — the
            node died before reporting back).
        at_nth: Fire on the nth matching boundary only (1-based); ``None``
            fires on the first match.
        target: Link faults: the destination node (``None`` = any).
        lose_data: For ``kill_node``: the node's resident base-data chunk is
            destroyed with it (unrecoverable loss) instead of being
            re-readable by a sibling.
        delay_seconds: Sleep duration for ``hang`` and ``delay_link``.
        times: How many matching boundaries the fault fires on before
            disarming (a link that drops twice, then recovers).
    """

    kind: str
    node: Optional[str] = None
    at_task: Optional[str] = None
    when: str = "start"
    at_nth: Optional[int] = None
    target: Optional[str] = None
    lose_data: bool = False
    delay_seconds: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _TASK_KINDS + _LINK_KINDS:
            raise ValueError(f"Unknown fault kind: {self.kind!r}")
        if self.when not in ("start", "finish"):
            raise ValueError(f"Unknown fault boundary: {self.when!r}")
        if self.times < 1:
            raise ValueError("times must be at least 1")


class FailureInjector:
    """Deterministic, thread-safe fault firing for one processing run.

    The scheduler calls :meth:`before_task` / :meth:`after_task` around
    every task execution and :class:`~repro.processor.network.NetworkSimulator`
    calls :meth:`on_ship` for every shipment.  Matching is purely a function
    of the (deterministic) task ids and the per-fault counters, so a given
    fault plan replays identically run after run.
    """

    def __init__(self, faults: Sequence[Fault] = (), seed: int = 0) -> None:
        self.seed = seed
        self._faults = list(faults)
        self._matches: Dict[int, int] = {}
        self._remaining: Dict[int, int] = {
            index: fault.times for index, fault in enumerate(self._faults)
        }
        self._fired: List[str] = []
        #: Nodes a kill fault took down (name -> lose_data).  Death is
        #: sticky: once a node died, *every* later task boundary on it dies
        #: too — concurrent victims whose first NodeDeath was drained away
        #: are re-reported on the next attempt instead of silently reviving.
        self._down: Dict[str, bool] = {}
        self._lock = threading.Lock()

    # -- construction helpers ------------------------------------------
    @classmethod
    def random_node_kills(
        cls,
        topology: "Topology",
        n_failures: int,
        seed: int = 0,
        lose_data: bool = False,
        killable: Optional[Sequence[str]] = None,
    ) -> "FailureInjector":
        """A reproducible injector killing ``n_failures`` random nodes.

        Candidates are every non-root node (the cloud cannot die) unless
        ``killable`` narrows them; each victim dies at its first task
        boundary.  The same ``seed`` always picks the same victims — the
        chaos benchmark depends on that.
        """
        rng = random.Random(seed)
        candidates = list(
            killable
            if killable is not None
            else [node.name for node in topology.nodes[:-1]]
        )
        if n_failures > len(candidates):
            raise ValueError(
                f"Cannot kill {n_failures} of {len(candidates)} candidate nodes"
            )
        victims = rng.sample(candidates, n_failures)
        return cls(
            [Fault(kind=KILL_NODE, node=victim, lose_data=lose_data) for victim in victims],
            seed=seed,
        )

    # -- introspection -------------------------------------------------
    @property
    def fired(self) -> List[str]:
        """Human-readable log of every fault that fired (firing order)."""
        with self._lock:
            return list(self._fired)

    # -- matching ------------------------------------------------------
    def _take(self, fault_index: int, fault: Fault, description: str) -> bool:
        """Consume one firing of ``fault`` if it is armed for this match."""
        self._matches[fault_index] = self._matches.get(fault_index, 0) + 1
        nth = fault.at_nth or 1
        if self._matches[fault_index] < nth:
            return False
        if self._remaining[fault_index] <= 0:
            return False
        self._remaining[fault_index] -= 1
        self._fired.append(description)
        _metrics.counter("chaos.faults_fired").inc()
        return True

    def _task_fault(self, task: Any, when: str) -> Optional[Fault]:
        with self._lock:
            for index, fault in enumerate(self._faults):
                if fault.kind not in _TASK_KINDS or fault.when != when:
                    continue
                if fault.node is not None and task.node != fault.node:
                    continue
                if fault.at_task is not None and fault.at_task not in task.task_id:
                    continue
                if self._take(index, fault, f"{fault.kind}@{when} {task.task_id}"):
                    return fault
        return None

    def _fire_task_fault(self, fault: Fault, task: Any) -> None:
        if fault.kind == KILL_NODE:
            with self._lock:
                self._down.setdefault(task.node, fault.lose_data)
            raise NodeDeath(
                task.node,
                cause=f"injected kill at {task.task_id}",
                lose_data=fault.lose_data,
            )
        if fault.kind == TASK_ERROR:
            raise InjectedTaskError(f"injected task error at {task.task_id}")
        if fault.kind == HANG and fault.delay_seconds > 0.0:
            import time

            time.sleep(fault.delay_seconds)

    def before_task(self, task: Any) -> None:
        """Fire any fault armed for ``task``'s start boundary."""
        with self._lock:
            down = self._down.get(task.node)
        if down is not None:
            raise NodeDeath(task.node, cause="node is down", lose_data=down)
        fault = self._task_fault(task, "start")
        if fault is not None:
            self._fire_task_fault(fault, task)

    def after_task(self, task: Any) -> None:
        """Fire any fault armed for ``task``'s completion boundary."""
        fault = self._task_fault(task, "finish")
        if fault is not None:
            self._fire_task_fault(fault, task)

    def on_ship(self, source: str, target: str) -> float:
        """Link-fault hook; returns extra delay seconds, raises on drops."""
        delay = 0.0
        with self._lock:
            for index, fault in enumerate(self._faults):
                if fault.kind not in _LINK_KINDS:
                    continue
                if fault.node is not None and source != fault.node:
                    continue
                if fault.target is not None and target != fault.target:
                    continue
                if not self._take(index, fault, f"{fault.kind} {source}->{target}"):
                    continue
                if fault.kind == DROP_LINK:
                    raise LinkDown(source, target)
                delay += fault.delay_seconds
        return delay


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-task retry with exponential backoff.

    A task raising :class:`TransientTaskError` re-runs in place up to
    ``max_attempts`` times total; once the budget is exhausted the node is
    declared dead (a device that keeps failing *is* dead for scheduling
    purposes) and the DAG re-plans without it.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.005
    backoff_multiplier: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if self.backoff_seconds <= 0.0:
            return 0.0
        return self.backoff_seconds * (self.backoff_multiplier ** max(0, attempt - 1))


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------


class CheckpointStore:
    """Signature-keyed checkpoints of mergeable aggregate-state relations.

    States are stored *packed* through :mod:`repro.engine.wire` — the same
    exact codec that sizes shipments — so a checkpoint round-trips bit for
    bit (the wire property tests pin this) and restoring one is equivalent
    to re-running the whole subtree that produced it.  Relations whose
    values fall outside the codec's vocabulary are skipped silently: a
    missing checkpoint only costs re-execution, never correctness.
    """

    def __init__(self) -> None:
        self._packed: Dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.saved = 0
        self.restored = 0
        self.skipped = 0

    def save(self, signature: str, relation: "Relation") -> bool:
        """Pack and store ``relation`` under ``signature``; False if unpackable."""
        from repro.engine.wire import WireFormatError, pack_state_relation

        if not signature:
            return False
        try:
            payload = pack_state_relation(relation)
        except WireFormatError:
            with self._lock:
                self.skipped += 1
            return False
        with self._lock:
            self._packed[signature] = payload
            self.saved += 1
        _metrics.counter("chaos.checkpoints_saved").inc()
        return True

    def restore(self, signature: str) -> Optional["Relation"]:
        """Unpack the checkpoint stored under ``signature`` (None if absent)."""
        from repro.engine.wire import unpack_state_relation

        with self._lock:
            payload = self._packed.get(signature)
        if payload is None:
            return None
        relation = unpack_state_relation(payload)
        with self._lock:
            self.restored += 1
        _metrics.counter("chaos.checkpoints_restored").inc()
        return relation

    def __contains__(self, signature: object) -> bool:
        with self._lock:
            return isinstance(signature, str) and signature in self._packed

    @property
    def total_bytes(self) -> int:
        """Total packed size of all stored checkpoints."""
        with self._lock:
            return sum(len(payload) for payload in self._packed.values())


# ---------------------------------------------------------------------------
# completeness reporting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LostPartition:
    """One base-table chunk that could not be recovered."""

    table: str
    node: str
    #: Position of the chunk in the original partition order (0-based).
    index: int
    rows: int

    def __str__(self) -> str:
        return f"partition {self.index} of {self.table!r} ({self.rows} rows on {self.node})"


@dataclass
class CompletenessReport:
    """What a (possibly degraded) query result does and does not cover.

    ``complete=True`` is the common case: every injected failure was
    recovered and the relation is byte-identical to the serial oracle's.
    Otherwise the report enumerates exactly which partitions are missing,
    and ``aggregates_exact=False`` warns that any aggregate/window values in
    the result were computed over the surviving rows only.
    """

    complete: bool = True
    lost_partitions: List[LostPartition] = field(default_factory=list)
    rows_lost: int = 0
    #: Leaf nodes whose data is gone (deduplicated, partition order).
    leaves_lost: List[str] = field(default_factory=list)
    #: True when every aggregate in the result saw all of its input rows
    #: (trivially true for queries without aggregates over complete data).
    aggregates_exact: bool = True
    #: Nodes declared dead during this run (death order).
    dead_nodes: List[str] = field(default_factory=list)
    #: Fault log: every injected failure that fired, in firing order.
    failures: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-or-more-line human-readable completeness statement."""
        if self.complete:
            if self.dead_nodes:
                return (
                    "result complete (recovered from failure of "
                    f"{', '.join(self.dead_nodes)})"
                )
            return "result complete"
        lines = [
            f"PARTIAL result: {self.rows_lost} input rows lost from "
            f"{len(self.lost_partitions)} partition(s)"
        ]
        for partition in self.lost_partitions:
            lines.append(f"  missing {partition}")
        if not self.aggregates_exact:
            lines.append("  aggregate values cover the surviving rows only")
        return "\n".join(lines)
