"""Process-pool execution backend for DAG engine operations.

The scheduler's thread pool overlaps simulated latencies well, but Python
threads cannot overlap the *compute* of two engine calls.  This module adds
a ``workers="processes"`` backend: the compute-heavy engine operations of a
DAG run (fragment queries, partial aggregation, state combines, aggregate
finalization, the cloud remainder) are dispatched to a
:class:`concurrent.futures.ProcessPoolExecutor`, while everything stateful
— shipping, catalogs, chaos injection, retries, checkpoints, spans — stays
on the coordinator.

**Everything crosses the process boundary as wire bytes.**  A job is one
``bytes`` payload framed by this module (magic ``PJB1``): the operation
kind, the engine mode, the query as rendered SQL text, the referenced
input relations and the optional merged partial-state relation, each
relation packed with :func:`repro.engine.wire.pack_relation`.  The worker
builds a throwaway :class:`~repro.engine.database.Database` from those
bytes, runs the operation under the requested engine mode and returns the
output relation packed the same way.  No :class:`Relation` or aggregate
state is ever pickled (``Relation.__reduce__`` raises, so an accidental
pickle fails loudly); queries travel as SQL text, exercising the
render → parse round-trip.

Workers are plain spawned interpreters, so a dispatched operation sees
*only* what its payload carries — the same visibility contract as a real
remote node.  The pool (one per worker count) is created lazily, shared by
every dispatcher in the process and torn down at exit, amortizing the
spawn cost across runs.
"""

from __future__ import annotations

import atexit
import struct
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.executor import execution_mode
from repro.engine.table import Relation
from repro.engine.wire import WireFormatError, pack_relation, unpack_relation
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.render import render

#: Engine operations a worker can run.  Index = wire opcode.
OPERATIONS = ("query", "partial", "combine", "finalize")

_ENGINE_MODES = ("compiled", "interpreted")

_JOB_MAGIC = b"PJB1"


# ---------------------------------------------------------------------------
# job framing
# ---------------------------------------------------------------------------
def encode_job(
    op: str,
    engine_mode: str,
    sql: str,
    tables: Sequence[Tuple[str, bytes]],
    state: Optional[bytes] = None,
) -> bytes:
    """Frame one worker job as a single self-describing byte payload."""
    if op not in OPERATIONS:
        raise ValueError(f"Unknown worker operation: {op!r}")
    if engine_mode not in _ENGINE_MODES:
        raise ValueError(f"Unknown engine mode: {engine_mode!r}")
    out = bytearray(_JOB_MAGIC)
    out.append(OPERATIONS.index(op))
    out.append(_ENGINE_MODES.index(engine_mode))
    sql_bytes = sql.encode("utf-8")
    out += struct.pack("<I", len(sql_bytes))
    out += sql_bytes
    out += struct.pack("<H", len(tables))
    for name, payload in tables:
        name_bytes = name.encode("utf-8")
        out += struct.pack("<H", len(name_bytes))
        out += name_bytes
        out += struct.pack("<I", len(payload))
        out += payload
    if state is None:
        out.append(0)
    else:
        out.append(1)
        out += struct.pack("<I", len(state))
        out += state
    return bytes(out)


class _JobReader:
    """Sequential reader over a job payload with loud truncation errors."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise WireFormatError("Truncated worker job payload")
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]


def decode_job(
    data: bytes,
) -> Tuple[str, str, str, List[Tuple[str, bytes]], Optional[bytes]]:
    """Inverse of :func:`encode_job`; raises :class:`WireFormatError`."""
    reader = _JobReader(data)
    if reader.take(4) != _JOB_MAGIC:
        raise WireFormatError("Malformed worker job payload (bad magic)")
    op_code = reader.u8()
    mode_code = reader.u8()
    if op_code >= len(OPERATIONS) or mode_code >= len(_ENGINE_MODES):
        raise WireFormatError("Malformed worker job payload (bad opcode)")
    try:
        sql = reader.take(reader.u32()).decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireFormatError("Malformed worker job payload (bad SQL)") from error
    tables: List[Tuple[str, bytes]] = []
    for _ in range(reader.u16()):
        name = reader.take(reader.u16()).decode("utf-8")
        tables.append((name, reader.take(reader.u32())))
    state = reader.take(reader.u32()) if reader.u8() else None
    if reader.offset != len(data):
        raise WireFormatError("Trailing bytes after worker job payload")
    return OPERATIONS[op_code], _ENGINE_MODES[mode_code], sql, tables, state


# ---------------------------------------------------------------------------
# the worker (runs in the spawned process)
# ---------------------------------------------------------------------------
def execute_job(payload: bytes) -> bytes:
    """Run one framed engine operation; bytes in, bytes out.

    This is the *entire* worker-side surface: decode the job, rebuild a
    throwaway database from the packed input relations, run the operation
    under the requested engine mode, pack the output.
    """
    op, engine_mode_name, sql, tables, state = decode_job(payload)
    database = Database(name="procs-worker")
    for name, blob in tables:
        database.register(name, unpack_relation(blob))
    merged = unpack_relation(state) if state is not None else None
    query = parse(sql)
    with execution_mode(engine_mode_name):
        if op == "query":
            output = database.query(query)
        elif op == "partial":
            output = database.partial_aggregate(query)
        elif op == "combine":
            output = database.combine_partials(query, merged)
        else:
            output = database.finalize_partials(query, merged)
    return pack_relation(output)


# ---------------------------------------------------------------------------
# pool management (coordinator side)
# ---------------------------------------------------------------------------
_pools: Dict[int, ProcessPoolExecutor] = {}
_pools_lock = threading.Lock()


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The process pool for ``workers`` slots; spawned once, reused forever.

    Spawned (never forked) so workers import a clean interpreter — no
    inherited catalogs, locks or metrics, the same cold-start a real
    remote executor would have.
    """
    with _pools_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=get_context("spawn")
            )
            _pools[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool (idempotent; also runs at exit)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# dispatcher (what the DAG tasks talk to)
# ---------------------------------------------------------------------------
def referenced_tables(query: ast.Query) -> List[str]:
    """Table names referenced anywhere in ``query`` (breadth-first order)."""
    names: List[str] = []
    seen = set()
    queue: List[ast.Node] = [query]
    index = 0
    while index < len(queue):
        node = queue[index]
        index += 1
        if isinstance(node, ast.TableRef):
            key = node.name.lower()
            if key not in seen:
                seen.add(key)
                names.append(node.name)
        queue.extend(child for child in node.children() if child is not None)
    return names


class ProcessDispatcher:
    """Runs engine operations on the shared process pool, via wire bytes.

    One dispatcher serves a whole DAG run; it is stateless apart from its
    worker count, so concurrent scheduler threads may call :meth:`run`
    freely (``ProcessPoolExecutor.submit`` is thread-safe).
    """

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"Process backend needs at least 1 worker, got {workers}")
        self.workers = workers
        #: Jobs dispatched through this dispatcher (observability/tests).
        self.jobs = 0
        #: Total job payload bytes shipped to workers.
        self.bytes_out = 0

    def gather_tables(
        self, database: Database, query: ast.Query
    ) -> List[Tuple[str, Relation]]:
        """The referenced relations resident in ``database`` (job inputs)."""
        return [
            (name, database.table(name))
            for name in referenced_tables(query)
            if name in database
        ]

    def run(
        self,
        op: str,
        engine_mode_name: str,
        query: ast.Query,
        tables: Sequence[Tuple[str, Relation]],
        state: Optional[Relation] = None,
    ) -> Relation:
        """Dispatch one engine operation and return its output relation."""
        packed_tables = [(name, pack_relation(rel)) for name, rel in tables]
        packed_state = pack_relation(state) if state is not None else None
        payload = encode_job(
            op, engine_mode_name, render(query), packed_tables, packed_state
        )
        self.jobs += 1
        self.bytes_out += len(payload)
        future = _shared_pool(self.workers).submit(execute_job, payload)
        return unpack_relation(future.result())
