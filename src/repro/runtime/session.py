"""Concurrent admission front-end: many user queries, one shared topology.

The ROADMAP's north star is heavy traffic from many users against one smart
environment.  :class:`SessionFrontEnd` is the first step: it admits many
independent queries concurrently against a single shared
:class:`~repro.processor.paradise.ParadiseProcessor` (one topology, one
network simulator, one scheduler whose per-node worker slots all sessions
contend for — queries from different users genuinely compete for the same
sensors and appliances).

Isolation comes from two mechanisms:

* every in-flight session runs with ``execution="parallel"`` and a
  *namespace* from a bounded pool (``s0`` .. ``s{max_concurrent-1}``), so
  its intermediate relations (``d1__s3``) never collide with another
  running session's on the shared per-node databases — and because the pool
  recycles names, a long-running front-end keeps the per-node catalogs
  bounded and re-registers same-shaped relations under stable names, which
  keeps the engines' compiled plans warm across queries;
* every session records shipments into its own per-run
  :class:`~repro.processor.network.TransferLog`.

Results are returned in request order and are identical to processing the
same requests one at a time (the determinism tests enforce this).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING, Union

from repro.obs.metrics import registry as _metrics
from repro.processor.result import ProcessingResult
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.processor.paradise import ParadiseProcessor
    from repro.runtime.standing import StandingQueryHandle, StandingQueryRuntime


@dataclass
class QueryRequest:
    """One user query submitted to the front-end."""

    query: Union[str, ast.Query]
    module_id: str
    #: Extra keyword arguments for ``ParadiseProcessor.process`` (``anonymize``,
    #: ``pushdown``, ``apply_rewriting``).
    options: Dict[str, Any] = field(default_factory=dict)


class SessionFrontEnd:
    """Admits and executes many user queries concurrently.

    Args:
        processor: The shared processor (one topology + network + scheduler).
        max_concurrent: Upper bound on simultaneously executing sessions;
            further submissions queue.
    """

    def __init__(self, processor: "ParadiseProcessor", max_concurrent: int = 4) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        self.processor = processor
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="session"
        )
        # Recycled namespaces: at most max_concurrent sessions run at once,
        # so a same-sized pool always has a free name for a starting worker.
        self._namespaces: "queue.Queue[str]" = queue.Queue()
        for index in range(max_concurrent):
            self._namespaces.put(f"s{index}")
        self._standing: Optional["StandingQueryRuntime"] = None
        self._standing_lock = threading.Lock()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _run(
        self,
        query: Union[str, ast.Query],
        module_id: str,
        options: Dict[str, Any],
        submitted_at: float,
    ) -> ProcessingResult:
        namespace = self._namespaces.get()
        _metrics.histogram("session.queue_wait_seconds").observe(
            time.perf_counter() - submitted_at
        )
        active = _metrics.gauge("session.active")
        active.inc()
        try:
            result = self.processor.process(
                query,
                module_id,
                execution="parallel",
                namespace=namespace,
                **options,
            )
            _metrics.counter("session.completed").inc()
            return result
        except BaseException:
            _metrics.counter("session.failed").inc()
            raise
        finally:
            active.dec()
            self._namespaces.put(namespace)

    def submit(
        self,
        query: Union[str, ast.Query],
        module_id: str,
        **options: Any,
    ) -> "Future[ProcessingResult]":
        """Queue one query; returns a future with its :class:`ProcessingResult`."""
        _metrics.counter("session.submitted").inc()
        return self._pool.submit(
            self._run, query, module_id, options, time.perf_counter()
        )

    def run_batch(
        self,
        requests: Sequence[QueryRequest],
        return_exceptions: bool = False,
    ) -> List[Union[ProcessingResult, BaseException]]:
        """Execute ``requests`` concurrently; results come back in order.

        ``return_exceptions=True`` keeps one failed session (a dead node the
        runtime could not recover, a
        :class:`~repro.runtime.faults.DataLossError` the policy refused to
        degrade) from poisoning the whole batch: the exception object takes
        the failed request's slot and every other result still comes back.
        Degraded-but-successful sessions are ordinary results — check
        ``result.completeness`` for what they cover.
        """
        futures = [
            self.submit(request.query, request.module_id, **request.options)
            for request in requests
        ]
        if not return_exceptions:
            return [future.result() for future in futures]
        outcomes: List[Union[ProcessingResult, BaseException]] = []
        for future in futures:
            error = future.exception()
            outcomes.append(future.result() if error is None else error)
        return outcomes

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    @property
    def standing(self) -> "StandingQueryRuntime":
        """The front-end's shared standing-query runtime (lazily created).

        All sessions of one front-end share one runtime — that is what lets
        containment-equal standing queries from *different* users attach to
        one maintained state tree.
        """
        if self._standing is None:
            with self._standing_lock:
                if self._standing is None:
                    from repro.runtime.standing import StandingQueryRuntime

                    self._standing = StandingQueryRuntime(self.processor)
        return self._standing

    def register_standing(
        self,
        query: Union[str, ast.Query],
        module_id: str,
        apply_rewriting: bool = False,
    ) -> "StandingQueryHandle":
        """Register a standing query against the shared topology.

        Unlike :meth:`submit` the query is planned *once*; its result is
        thereafter maintained incrementally on every ingested sensor chunk
        (see :mod:`repro.runtime.standing`) instead of re-executed per
        request.
        """
        _metrics.counter("session.standing_registered").inc()
        return self.standing.register(
            query, module_id, apply_rewriting=apply_rewriting
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Finish queued sessions and release the worker threads."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SessionFrontEnd":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None
