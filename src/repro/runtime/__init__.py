"""Parallel fragment-execution runtime over tree topologies.

The seed processor executed every fragment plan serially, hop by hop, over a
flat chain — one sensor, one appliance, one PC, one cloud.  The paper's
architecture (Figure 3) is a *tree*: many sensors feed appliances, which
feed the apartment PC, which feeds the provider's cloud, and many users
query the environment at once.  This package closes that gap:

``dag``
    :func:`~repro.runtime.dag.build_execution_dag` partitions the bottom
    fragment of a plan horizontally across sibling sensor leaves, lifts
    row-distributive fragments up the tree one sibling-merge at a time, and
    inserts a global merge/union task where the first non-distributive
    fragment (windows, ordering) needs the whole relation.  GROUP BY
    fragments whose aggregates all decompose skip the global merge
    entirely: each leaf partition aggregates into mergeable states
    (``partial()``/``merge()``/``finalize()``, see
    :mod:`repro.engine.aggregates`), sibling states combine at each tree
    level, and the fragment finalizes at its assigned node — only group
    states ever cross a hop, never the raw rows.  Anonymization and the
    cloud remainder are the DAG's final tasks.

``scheduler``
    :class:`~repro.runtime.scheduler.Scheduler` runs ready tasks
    concurrently on a thread pool throttled by per-node worker slots sized
    from each node's ``cpu_power``; per-node database locks keep the
    engine's single-threaded executor state safe.

``session``
    :class:`~repro.runtime.session.SessionFrontEnd` admits many independent
    user queries against one shared topology, giving each a namespace for
    its intermediate relations and a private transfer log.

``cost``
    :class:`~repro.runtime.cost.CostModel` simulates the relative node
    speeds of Table 1 and link latency with GIL-releasing sleeps, so the
    runtime-scaling benchmark measures genuine wall-clock overlap.

``faults``
    The fault-tolerance layer (PR 6): a deterministic
    :class:`~repro.runtime.faults.FailureInjector` (kill a node at a task
    boundary, drop/delay a link, inject transient errors or hangs),
    :class:`~repro.runtime.faults.RetryPolicy` for bounded in-place
    retries, :class:`~repro.runtime.faults.CheckpointStore` for
    wire-packed aggregate-state checkpoints at combine boundaries, and
    :class:`~repro.runtime.faults.CompletenessReport` — the contract for
    gracefully degraded partial results.  The scheduler escalates
    unrecoverable task failures to
    :class:`~repro.runtime.faults.NodeDeath`; the processor's recovery
    loop marks the node dead, re-places its chunks onto live siblings and
    re-plans the DAG (:func:`~repro.runtime.dag.replan_without`).

The serial executor remains in place as the *differential oracle*
(``ParadiseProcessor(execution="serial")``, mirroring PR 1's
``engine_mode`` pattern): the parallel runtime must return byte-identical
relations on every workload — including every workload under every
*recoverable* injected failure, which ``tests/test_chaos.py`` enforces on
top of the healthy differentials of ``tests/test_runtime.py``.
"""

from repro.runtime.cost import DEFAULT_TASK_TIMEOUT, CostModel
from repro.runtime.dag import (
    CombinePartialsTask,
    ExecutionContext,
    ExecutionDag,
    FinalizeAggregationTask,
    PartialAggregateTask,
    build_execution_dag,
    last_inside_node,
    lift_node_groups,
    partial_aggregation_pays,
    replan_without,
    union_partials,
)
from repro.runtime.faults import (
    CheckpointStore,
    CompletenessReport,
    DataLossError,
    FailureInjector,
    Fault,
    FaultError,
    InjectedTaskError,
    LinkDown,
    LostPartition,
    NodeDeath,
    RetryPolicy,
    TransientTaskError,
)
from repro.runtime.scheduler import DagRunReport, Scheduler, TaskTiming
from repro.runtime.session import QueryRequest, SessionFrontEnd
from repro.runtime.standing import (
    StandingQueryError,
    StandingQueryHandle,
    StandingQueryRuntime,
)

__all__ = [
    "CheckpointStore",
    "CombinePartialsTask",
    "CompletenessReport",
    "CostModel",
    "DEFAULT_TASK_TIMEOUT",
    "DagRunReport",
    "DataLossError",
    "ExecutionContext",
    "ExecutionDag",
    "FailureInjector",
    "Fault",
    "FaultError",
    "FinalizeAggregationTask",
    "InjectedTaskError",
    "LinkDown",
    "LostPartition",
    "NodeDeath",
    "PartialAggregateTask",
    "QueryRequest",
    "RetryPolicy",
    "Scheduler",
    "SessionFrontEnd",
    "StandingQueryError",
    "StandingQueryHandle",
    "StandingQueryRuntime",
    "TaskTiming",
    "TransientTaskError",
    "build_execution_dag",
    "last_inside_node",
    "lift_node_groups",
    "partial_aggregation_pays",
    "replan_without",
    "union_partials",
]
