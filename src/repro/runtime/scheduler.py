"""Concurrent scheduler for fragment-execution DAGs.

The :class:`Scheduler` runs the tasks of an
:class:`~repro.runtime.dag.ExecutionDag` on a thread pool, dispatching every
task the moment its dependencies complete.  Two throttles model the physical
environment:

* **Per-node worker slots.** Each topology node owns a semaphore sized by
  its relative CPU power (a sensor runs one task at a time, the PC and the
  cloud a few), so two tasks pinned to the same node contend exactly like
  they would on the real device, while tasks on *sibling* nodes overlap
  freely.  The semaphores live on the scheduler, which is shared across
  concurrent sessions — queries from different users contend for the same
  physical nodes.
* **Per-node databases** additionally serialize raw query execution through
  their own locks (see :class:`~repro.engine.database.Database`), so the
  compiled executor's single-threaded plan state is never entered twice.

Determinism: the result of a DAG run does not depend on scheduling order —
merges concatenate partials in fixed partition order and every task writes
only its own output slot — so repeated concurrent runs return identical
relations (enforced by the ``concurrency`` tests).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.executor import execution_mode
from repro.engine.table import Relation
from repro.fragment.topology import Topology
from repro.runtime.dag import ExecutionContext, ExecutionDag, Task


@dataclass
class TaskTiming:
    """Wall-clock span of one executed task."""

    task_id: str
    kind: str
    node: str
    started: float
    finished: float

    @property
    def elapsed(self) -> float:
        return self.finished - self.started


@dataclass
class DagRunReport:
    """What one scheduler run did and how long it took."""

    wall_seconds: float
    timings: List[TaskTiming] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        """Sum of per-task wall time (serial-equivalent busy time)."""
        return sum(timing.elapsed for timing in self.timings)


def _node_slots(cpu_power: float, cap: int = 4) -> int:
    """Concurrent task slots a node offers: one per unit of relative power."""
    return max(1, min(cap, int(cpu_power)))


class Scheduler:
    """Runs DAG tasks concurrently on a pool of per-node workers."""

    def __init__(self, topology: Topology, max_workers: Optional[int] = None) -> None:
        self.topology = topology
        self._slots: Dict[str, threading.Semaphore] = {
            node.name: threading.Semaphore(_node_slots(node.cpu_power or 1.0))
            for node in topology
        }
        if max_workers is None:
            # Enough threads that every node could have a runnable task;
            # sleeps (simulated cost) release the GIL, real work is bounded
            # by the per-node database locks anyway.
            max_workers = min(32, len(topology) + 4)
        self.max_workers = max_workers

    def run(self, dag: ExecutionDag, context: ExecutionContext) -> DagRunReport:
        """Execute ``dag`` to completion; returns the run report.

        Raises the first task exception after letting in-flight tasks drain
        (pending tasks are abandoned).
        """
        by_id = dag.by_id()
        waiting: Dict[str, int] = {
            task.task_id: len(task.deps) for task in dag.tasks
        }
        dependents: Dict[str, List[str]] = {task.task_id: [] for task in dag.tasks}
        for task in dag.tasks:
            for dep in task.deps:
                dependents[dep].append(task.task_id)

        timings: List[TaskTiming] = []
        timings_lock = threading.Lock()
        started_at = time.perf_counter()

        def run_task(task: Task) -> Relation:
            slot = self._slots[task.node]
            with slot:
                task_started = time.perf_counter()
                with execution_mode(context.engine_mode):
                    output = task.execute(context)
                task_finished = time.perf_counter()
            with timings_lock:
                timings.append(
                    TaskTiming(
                        task_id=task.task_id,
                        kind=task.kind,
                        node=task.node,
                        started=task_started - started_at,
                        finished=task_finished - started_at,
                    )
                )
            return output

        ready = [task.task_id for task in dag.tasks if waiting[task.task_id] == 0]
        in_flight: Dict[Future, str] = {}
        first_error: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            while (ready or in_flight) and first_error is None:
                for task_id in ready:
                    in_flight[pool.submit(run_task, by_id[task_id])] = task_id
                ready = []
                done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    task_id = in_flight.pop(future)
                    error = future.exception()
                    if error is not None:
                        first_error = error
                        break
                    context.outputs[task_id] = future.result()
                    for dependent in dependents[task_id]:
                        waiting[dependent] -= 1
                        if waiting[dependent] == 0:
                            ready.append(dependent)
            # Let in-flight tasks drain before surfacing an error.
            if first_error is not None:
                wait(set(in_flight))
        if first_error is not None:
            raise first_error

        timings.sort(key=lambda timing: by_id[timing.task_id].order)
        return DagRunReport(
            wall_seconds=time.perf_counter() - started_at, timings=timings
        )
