"""Concurrent, fault-tolerant scheduler for fragment-execution DAGs.

The :class:`Scheduler` runs the tasks of an
:class:`~repro.runtime.dag.ExecutionDag` on a thread pool, dispatching every
task the moment its dependencies complete.  Two throttles model the physical
environment:

* **Per-node worker slots.** Each topology node owns a semaphore sized by
  its relative CPU power (a sensor runs one task at a time, the PC and the
  cloud a few), so two tasks pinned to the same node contend exactly like
  they would on the real device, while tasks on *sibling* nodes overlap
  freely.  The semaphores live on the scheduler, which is shared across
  concurrent sessions — queries from different users contend for the same
  physical nodes.
* **Per-node databases** additionally serialize raw query execution through
  their own locks (see :class:`~repro.engine.database.Database`), so the
  compiled executor's single-threaded plan state is never entered twice.

Failure semantics (PR 6): task failures are classified by the taxonomy of
:mod:`repro.runtime.faults` —

* :class:`~repro.runtime.faults.TransientTaskError` (injected errors, link
  drops) retries the task *in place* under the run's
  :class:`~repro.runtime.faults.RetryPolicy`, releasing the node's worker
  slot between attempts.  Tasks are idempotent by construction — they
  recompute their output from their dependencies' outputs and re-register
  under the same name — so a retry can never double-count.  A task that
  exhausts its budget escalates to
  :class:`~repro.runtime.faults.NodeDeath`: a device that keeps failing *is*
  dead for scheduling purposes.
* A task exceeding its **deadline** (``task_timeout``, derived from the
  cost model by the processor) is a hung node: the scheduler abandons the
  run and raises :class:`~repro.runtime.faults.NodeDeath` for it instead of
  blocking the DAG forever.
* Every other exception is a *genuine* query error and propagates
  unchanged — the serial/parallel error-parity contract.

On any failure the scheduler cancels all not-yet-started tasks and (except
for the hung-node case, where the stuck worker is abandoned) drains in-flight
ones before raising, so per-node slots are released and no zombie task writes
into a later attempt's context.  Recovery itself — marking the node dead,
re-placing its data, re-planning the DAG — is the processor's job
(:meth:`~repro.processor.paradise.ParadiseProcessor._execute_plan_parallel`);
the scheduler supports it by **restoring checkpoints**: before running, any
task whose signature has a checkpointed output (see
:class:`~repro.runtime.faults.CheckpointStore`) is satisfied from the store
and its entire dependency subtree is pruned, so a re-plan replays only work
the failure actually invalidated.

Determinism: the result of a DAG run does not depend on scheduling order —
merges concatenate partials in fixed partition order and every task writes
only its own output slot — so repeated concurrent runs return identical
relations (enforced by the ``concurrency`` tests).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.engine.executor import execution_mode
from repro.engine.stats import optimizer_mode
from repro.engine.table import Relation
from repro.fragment.topology import Topology
from repro.obs.metrics import registry as _metrics
from repro.obs.trace import activate
from repro.runtime.dag import ExecutionContext, ExecutionDag, Task
from repro.runtime.faults import NodeDeath, RetryPolicy, TransientTaskError


@dataclass
class TaskTiming:
    """Wall-clock span of one executed task."""

    task_id: str
    kind: str
    node: str
    started: float
    finished: float
    #: 1-based attempt number that succeeded (retries bump this).
    attempt: int = 1

    @property
    def elapsed(self) -> float:
        return self.finished - self.started


@dataclass
class DagRunReport:
    """What one scheduler run did and how long it took."""

    wall_seconds: float
    timings: List[TaskTiming] = field(default_factory=list)
    #: Tasks satisfied from the checkpoint store instead of executing.
    restored_tasks: int = 0
    #: Tasks pruned entirely (their only consumers were restored).
    skipped_tasks: int = 0
    #: Total in-place retry attempts that transient failures cost.
    retried_attempts: int = 0

    @property
    def busy_seconds(self) -> float:
        """Sum of per-task wall time (serial-equivalent busy time)."""
        return sum(timing.elapsed for timing in self.timings)


def _node_slots(cpu_power: float, cap: int = 4) -> int:
    """Concurrent task slots a node offers: one per unit of relative power."""
    return max(1, min(cap, int(cpu_power)))


class Scheduler:
    """Runs DAG tasks concurrently on a pool of per-node workers."""

    def __init__(self, topology: Topology, max_workers: Optional[int] = None) -> None:
        self.topology = topology
        self._slots: Dict[str, threading.Semaphore] = {
            node.name: threading.Semaphore(_node_slots(node.cpu_power or 1.0))
            for node in topology
        }
        if max_workers is None:
            # Enough threads that every node could have a runnable task;
            # sleeps (simulated cost) release the GIL, real work is bounded
            # by the per-node database locks anyway.
            max_workers = min(32, len(topology) + 4)
        self.max_workers = max_workers

    def _slot_for(self, node_name: str) -> threading.Semaphore:
        slot = self._slots.get(node_name)
        if slot is None:
            # Replanned DAGs only ever use nodes of the original topology,
            # but stay safe for schedulers built over a pruned one.
            slot = self._slots.setdefault(node_name, threading.Semaphore(1))
        return slot

    # ------------------------------------------------------------------
    # checkpoint restoration
    # ------------------------------------------------------------------
    @staticmethod
    def _restore_satisfied(
        dag: ExecutionDag, context: ExecutionContext
    ) -> tuple[Set[str], int]:
        """Satisfy checkpointed tasks from the store; return (needed, restored).

        Walks the DAG from the final task towards the leaves; a task whose
        signature has a stored output is satisfied in place and its
        dependency subtree never enters ``needed`` (unless another live
        consumer pulls it in) — recovery replays only lost work.
        """
        by_id = dag.by_id()
        needed: Set[str] = set()
        restored = 0
        stack = [dag.final_task_id]
        while stack:
            task_id = stack.pop()
            if task_id in needed or task_id in context.outputs:
                continue
            task = by_id[task_id]
            output = context.restore_checkpoint(task)
            if output is not None:
                context.outputs[task_id] = output
                restored += 1
                continue
            needed.add(task_id)
            stack.extend(task.deps)
        return needed, restored

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        dag: ExecutionDag,
        context: ExecutionContext,
        retry_policy: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
    ) -> DagRunReport:
        """Execute ``dag`` to completion; returns the run report.

        ``retry_policy`` bounds in-place retries of transient task failures
        (defaults to :class:`~repro.runtime.faults.RetryPolicy`);
        ``task_timeout`` is the per-task deadline in seconds (``None``
        disables deadline checking).  Raises the first non-recovered task
        exception after cancelling pending tasks and letting in-flight ones
        drain; a deadline violation raises
        :class:`~repro.runtime.faults.NodeDeath` for the hung node without
        draining (the stuck worker is abandoned).
        """
        policy = retry_policy or RetryPolicy()
        by_id = dag.by_id()
        needed, restored_count = self._restore_satisfied(dag, context)
        skipped_count = len(dag.tasks) - len(needed) - restored_count
        waiting: Dict[str, int] = {
            task_id: sum(1 for dep in by_id[task_id].deps if dep in needed)
            for task_id in needed
        }
        dependents: Dict[str, List[str]] = {task_id: [] for task_id in needed}
        for task_id in needed:
            for dep in by_id[task_id].deps:
                if dep in needed:
                    dependents[dep].append(task_id)

        timings: List[TaskTiming] = []
        stats_lock = threading.Lock()
        retried_attempts = [0]
        trace = context.trace
        # Per-run metric handles: one registry lookup each, then plain
        # striped-lock increments on the per-task path.
        tasks_counter = _metrics.counter("runtime.tasks_executed")
        queue_hist = _metrics.histogram("runtime.queue_wait_seconds")
        slots_gauge = _metrics.gauge("runtime.slots_busy")
        started_at = time.perf_counter()
        run_span = None
        if trace is not None:
            # One root span per (re-plan) epoch; task spans parent here, so
            # the trace's run wall time reconciles with the report's.
            run_span = trace.begin(
                f"dag_run[epoch={context.attempt}]",
                kind="dag_run",
                epoch=context.attempt,
                tasks=len(needed),
            )
            if restored_count or skipped_count:
                trace.add_event(
                    run_span,
                    "checkpoint_restore",
                    restored=restored_count,
                    skipped=skipped_count,
                )

        def run_task(task: Task, ready_at: float) -> Relation:
            slot = self._slot_for(task.node)
            previous_span = None
            for attempt in range(1, policy.max_attempts + 1):
                span = None
                try:
                    with slot:
                        queue_wait = time.perf_counter() - ready_at
                        if trace is not None:
                            attrs = {
                                "task_id": task.task_id,
                                "deps": list(task.deps),
                                "signature": task.signature,
                                "epoch": context.attempt,
                                "attempt": attempt,
                                "order": task.order,
                                "queue_wait": queue_wait,
                            }
                            if previous_span is not None:
                                attrs["retry_of"] = previous_span.span_id
                            span = trace.begin(
                                task.task_id,
                                kind="task",
                                node=task.node,
                                parent=run_span,
                                **attrs,
                            )
                        slots_gauge.inc()
                        try:
                            if context.injector is not None:
                                context.injector.before_task(task)
                            task_started = time.perf_counter()
                            with execution_mode(context.engine_mode), optimizer_mode(
                                context.optimizer
                            ), activate(span):
                                output = task.execute(context)
                            task_finished = time.perf_counter()
                            if context.injector is not None:
                                # A "finish"-boundary kill: the node did the
                                # work but died before reporting back, so the
                                # output is discarded with the raised
                                # NodeDeath.
                                context.injector.after_task(task)
                        finally:
                            slots_gauge.dec()
                except TransientTaskError as error:
                    if span is not None:
                        trace.add_event(
                            span, "fault", error=str(error), transient=True
                        )
                    if attempt >= policy.max_attempts:
                        if span is not None:
                            trace.finish(span, status="aborted")
                        raise NodeDeath(
                            task.node,
                            cause=f"{attempt} failed attempts at {task.task_id}: {error}",
                        ) from error
                    if span is not None:
                        trace.finish(span, status="retried")
                        previous_span = span
                    with stats_lock:
                        retried_attempts[0] += 1
                    delay = policy.delay(attempt)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                except BaseException as error:
                    # Node kills, link-down escalations, genuine query
                    # errors: the attempt's span aborts either way.
                    if span is not None:
                        trace.add_event(
                            span, "fault", error=str(error), transient=False
                        )
                        trace.finish(span, status="aborted")
                    raise
                saved = context.save_checkpoint(task, output)
                tasks_counter.inc()
                queue_hist.observe(queue_wait)
                if span is not None:
                    if saved:
                        trace.add_event(
                            span, "checkpoint_save", signature=task.signature[:12]
                        )
                    trace.finish(span, status="ok")
                    if context.calibration is not None:
                        rows = span.attrs.get("input_rows", 0) or 0
                        if context.cost_model is not None:
                            power = (
                                context.network.topology.node(task.node).cpu_power
                                or 1.0
                            )
                            predicted = context.cost_model.compute_delay(rows, power)
                            span.attrs["predicted_seconds"] = predicted
                        else:
                            predicted = 0.0
                        context.calibration.observe(
                            task.kind,
                            predicted,
                            task_finished - task_started,
                            rows=rows,
                        )
                with stats_lock:
                    timings.append(
                        TaskTiming(
                            task_id=task.task_id,
                            kind=task.kind,
                            node=task.node,
                            started=task_started - started_at,
                            finished=task_finished - started_at,
                            attempt=attempt,
                        )
                    )
                return output
            raise AssertionError("unreachable")  # pragma: no cover

        ready = [task_id for task_id in needed if waiting[task_id] == 0]
        # Deterministic dispatch order (ties broken by build order).
        ready.sort(key=lambda task_id: by_id[task_id].order)
        in_flight: Dict[Future, str] = {}
        deadlines: Dict[Future, float] = {}
        first_error: Optional[BaseException] = None
        abandoned = False
        pool = ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            while (ready or in_flight) and first_error is None:
                for task_id in ready:
                    future = pool.submit(run_task, by_id[task_id], time.perf_counter())
                    in_flight[future] = task_id
                    if task_timeout is not None:
                        deadlines[future] = time.monotonic() + task_timeout
                ready = []
                poll: Optional[float] = None
                if deadlines:
                    poll = max(
                        0.01, min(deadlines.values()) - time.monotonic()
                    )
                done, _ = wait(
                    set(in_flight), timeout=poll, return_when=FIRST_COMPLETED
                )
                if not done and deadlines:
                    now = time.monotonic()
                    for future, deadline in deadlines.items():
                        if now >= deadline and not future.done():
                            hung = by_id[in_flight[future]]
                            first_error = NodeDeath(
                                hung.node,
                                cause=(
                                    f"{hung.task_id} exceeded its "
                                    f"{task_timeout:.1f}s deadline (hung node)"
                                ),
                            )
                            abandoned = True
                            break
                    continue
                for future in done:
                    task_id = in_flight.pop(future)
                    deadlines.pop(future, None)
                    error = future.exception()
                    if error is not None:
                        first_error = error
                        break
                    context.outputs[task_id] = future.result()
                    for dependent in dependents[task_id]:
                        waiting[dependent] -= 1
                        if waiting[dependent] == 0:
                            ready.append(dependent)
                ready.sort(key=lambda task_id: by_id[task_id].order)
            if first_error is not None:
                # Failure hygiene: nothing queued may start once the run is
                # lost, and (unless a worker is known hung) every in-flight
                # task drains so its node slot is released and no zombie
                # write can leak into a later re-plan attempt.
                for future in in_flight:
                    future.cancel()
                if not abandoned:
                    wait(set(in_flight))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if first_error is not None:
            if run_span is not None:
                trace.finish(run_span, status="aborted")
            raise first_error

        wall_seconds = time.perf_counter() - started_at
        if run_span is not None:
            trace.finish(run_span, status="ok")
        timings.sort(key=lambda timing: timing.started)
        timings.sort(key=lambda timing: by_id[timing.task_id].order)
        return DagRunReport(
            wall_seconds=wall_seconds,
            timings=timings,
            restored_tasks=restored_count,
            skipped_tasks=skipped_count,
            retried_attempts=retried_attempts[0],
        )
