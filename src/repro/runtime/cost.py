"""Simulated node and link costs for the fragment runtime.

The reproduction runs every node of the smart environment inside one Python
process, so the *relative* speeds of Table 1 (a sensor at 0.1x, an appliance
at 2x, the PC at 10x, the cloud at 100x) are invisible to wall-clock
measurements unless they are simulated.  A :class:`CostModel` charges every
fragment execution a delay proportional to its input rows and inversely
proportional to the node's relative CPU power, and every shipment a delay
proportional to its bytes.  Delays are real ``time.sleep`` calls — they
release the GIL, so delays on *independent* tasks genuinely overlap when the
scheduler runs them concurrently, while the serial oracle pays them end to
end.  Both execution paths charge the identical set of operations (fragment
scans, the anonymization step, the cloud remainder, every shipment; merges
are pointer work and charge nothing), which makes the parallel-vs-serial
speedup a pure measure of overlap, not of differing work.

``CostModel()`` with all-zero rates is free and is the default everywhere:
ordinary processing never sleeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.profile import CalibrationLog, CalibrationReport

#: Fallback per-task deadline (seconds) when no cost estimate is available.
#: Generous on purpose: a timeout declares the node dead and triggers a
#: re-plan, so it must only ever fire for genuinely hung devices.
DEFAULT_TASK_TIMEOUT = 30.0


@dataclass(frozen=True)
class CostModel:
    """Per-row compute and per-kilobyte transfer delays.

    Attributes:
        seconds_per_row: Simulated seconds one input row costs on a node of
            relative CPU power 1.0 (an apartment PC is 10.0, a sensor 0.1).
        seconds_per_kb: Simulated seconds one shipped kilobyte costs on a
            network hop.
    """

    seconds_per_row: float = 0.0
    seconds_per_kb: float = 0.0
    #: Predicted-vs-observed task costs, filled by the scheduler during
    #: profiled runs.  The binding is frozen with the dataclass but the log
    #: itself is mutable (and thread-safe); it never participates in
    #: equality or hashing.
    calibration: CalibrationLog = field(
        default_factory=CalibrationLog, compare=False, repr=False
    )

    def calibration_report(self) -> CalibrationReport:
        """Per-task-kind prediction error accumulated by profiled runs."""
        return self.calibration.report()

    @property
    def is_free(self) -> bool:
        """True when the model never sleeps."""
        return self.seconds_per_row <= 0.0 and self.seconds_per_kb <= 0.0

    def compute_delay(self, rows: int, cpu_power: float) -> float:
        """Seconds of simulated compute for ``rows`` input rows."""
        if self.seconds_per_row <= 0.0 or rows <= 0:
            return 0.0
        return rows * self.seconds_per_row / max(cpu_power, 1e-9)

    def transfer_delay(self, nbytes: int) -> float:
        """Seconds of simulated link time for ``nbytes`` shipped bytes."""
        if self.seconds_per_kb <= 0.0 or nbytes <= 0:
            return 0.0
        return nbytes / 1024.0 * self.seconds_per_kb

    def charge_compute(self, rows: int, cpu_power: float) -> float:
        """Sleep for the compute delay; returns the seconds slept."""
        delay = self.compute_delay(rows, cpu_power)
        if delay > 0.0:
            time.sleep(delay)
        return delay

    def task_timeout(
        self,
        rows: int,
        cpu_power: float,
        floor: float = DEFAULT_TASK_TIMEOUT,
        slack: float = 10.0,
    ) -> float:
        """A generous per-task deadline for the fault-tolerant scheduler.

        ``slack`` times the simulated compute cost of the task's worst-case
        input (its node is also paying transfer and queueing time), but
        never below ``floor`` — timeouts exist to catch *hung* nodes, not to
        race healthy slow ones, so false positives must be essentially
        impossible.
        """
        return max(floor, slack * self.compute_delay(rows, cpu_power))
