"""Execution-DAG construction for fragment plans over tree topologies.

:func:`build_execution_dag` turns a :class:`~repro.fragment.plan.FragmentPlan`
plus a (possibly tree-shaped) :class:`~repro.fragment.topology.Topology` into
a dependency graph of :class:`Task` objects the
:class:`~repro.runtime.scheduler.Scheduler` can run concurrently:

* When the base relation is horizontally partitioned across sibling sensor
  leaves (see :meth:`~repro.processor.network.NetworkSimulator.load_sensor_data`),
  the bottom fragment fans out into one task per leaf chunk.
* Row-distributive follow-up fragments (``partitionable``) are *lifted* one
  tree level per stage: the partials of each sibling group merge at their
  common parent, which then applies the fragment to its group — appliances
  keep working on their own sensors' data, exactly the placement of Figure 3.
* GROUP BY fragments whose aggregates all decompose
  (``QueryFragment.decomposable``) never force a global merge: every
  partition runs the fragment in *partial* mode where it lives (emitting
  mergeable aggregate states, see :mod:`repro.engine.aggregates`), sibling
  states *combine* at their common parent one tree level at a time, and the
  fragment *finalizes* (HAVING, select items, ORDER BY) at its assigned
  node.  Distributive fragments leading up to such an aggregation run in
  place on their partitions instead of lifting, so only group states — a
  few rows per node — ever cross a hop.
* The first non-distributive fragment that cannot be decomposed (windows,
  ordering, DISTINCT aggregates, MEDIAN, ...) forces a global merge at its
  assigned node; from there the plan chains serially.
* Anonymization and the cloud remainder become the final tasks of the DAG.

Chunks are contiguous slices of the original relation in leaf order, and
merge tasks concatenate partials in exactly that order, so the DAG's result
is row-for-row identical to the serial oracle
(:meth:`~repro.processor.paradise.ParadiseProcessor._execute_plan`) — the
differential tests in ``tests/test_runtime.py`` enforce this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.columns import copy_column, extend_column
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import DataType
from repro.fragment.plan import FragmentPlan, QueryFragment
from repro.fragment.topology import Topology
from repro.obs.profile import CalibrationLog
from repro.obs.trace import QueryTrace, current_span
from repro.processor.network import NetworkSimulator, TransferLog
from repro.processor.result import FragmentExecution
from repro.runtime.cost import CostModel
from repro.runtime.faults import CheckpointStore, FailureInjector
from repro.sql import ast
from repro.sql.visitor import clone


#: Cardinality fallback for the partial-aggregation protocol: when a leaf
#: chunk's observed group count reaches this share of its row count, state
#: rows would be nearly as numerous as raw rows (and individually larger),
#: so the DAG falls back to the global-merge path for that fragment.
GROUP_FALLBACK_RATIO = 0.75

#: Chunks below this row count skip the fallback check: either way only a
#: handful of rows cross the hop, and tiny chunks make the ratio noisy.
GROUP_FALLBACK_MIN_ROWS = 16

#: At most this many leading rows of a chunk are observed per DAG build.
#: The observation is planner-side statistics gathering (no data leaves the
#: node, so the cost model rightly never charges a transfer), but it runs
#: serially on the coordinator per query admission — the prefix cap keeps it
#: O(1) per chunk regardless of chunk size.
GROUP_FALLBACK_SAMPLE_ROWS = 512


def _aggregate_call_count(query: ast.SelectQuery) -> int:
    """Number of aggregate calls in the query — its partial state width
    (one packed state column per call) minus the group keys."""
    count = 0
    sources: List[ast.Node] = [item.expression for item in query.items]
    if query.having is not None:
        sources.append(query.having)
    sources.extend(item.expression for item in query.order_by)
    stack = sources
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, ast.FunctionCall) and ast.is_aggregate_function(node.name):
            count += 1
            continue  # nested aggregates are not decomposable anyway
        stack.extend(child for child in node.children() if child is not None)
    return count


def partial_aggregation_pays(
    network: NetworkSimulator,
    holders: Sequence[str],
    fragment: QueryFragment,
    observe_table: str,
) -> bool:
    """Cardinality heuristic: is leaf-level partial aggregation worthwhile?

    Observes the distinct group-key count over a bounded prefix of every
    leaf chunk of ``observe_table`` (at most
    :data:`GROUP_FALLBACK_SAMPLE_ROWS` rows, straight off the key column
    arrays).  When some chunk's observed group count approaches the
    observed row count (:data:`GROUP_FALLBACK_RATIO`), partial states
    would not shrink the shipment — each state row is bigger than the raw
    row it summarizes — so the builder should fall back to the
    global-merge path.

    Global aggregations (no GROUP BY) always pay: they ship one state row.
    Chunks that do not expose the key columns (a preceding fragment renames
    or derives them) cannot be observed and are assumed worthwhile.

    With the cost-based optimizer enabled, the sampled-prefix observation
    is replaced by per-leaf distinct-key statistics from the chunk's
    maintained column stats, and the fixed ratio becomes a two-stage rule:
    below the :data:`GROUP_FALLBACK_RATIO` distinct share partial always
    pays (sibling states keep merging at every tree level while raw rows
    concatenate with fan-in); at or above it, a byte-level estimate
    decides — the query's state width (keys plus one packed state per
    aggregate call) times the observed packed bytes per state *cell* (fed
    back by :data:`repro.engine.wire.state_size_feedback` from previously
    shipped partial states) is compared against the chunk's raw
    ``estimated_bytes()``, so genuinely small states keep the partial path
    even at high shares.  Both modes decide *placement only* — results are
    identical either way.
    """
    from repro.engine.stats import optimizer_enabled, optimizer_stats
    from repro.engine.vectorized import freeze_value
    from repro.engine.wire import state_size_feedback

    query = fragment.query
    if not isinstance(query, ast.SelectQuery) or not query.group_by:
        return True
    keys = [
        expression.name
        for expression in query.group_by
        if isinstance(expression, ast.Column)
    ]
    if len(keys) != len(query.group_by):
        return True  # non-column keys are not observable on the base chunks
    adaptive = optimizer_enabled()
    for holder in holders:
        database = network.database(holder)
        if observe_table not in database:
            continue
        chunk = database.table(observe_table)
        if adaptive:
            rows = len(chunk)
            if rows < GROUP_FALLBACK_MIN_ROWS:
                continue
            table_stats = chunk.stats()
            groups = 1
            observable = True
            for key in keys:
                summary = table_stats.column(key)
                if summary is None:
                    observable = False
                    break
                groups *= max(summary.distinct, 1)
            if not observable:
                return True
            groups = min(groups, rows)
            # Low distinct share: sibling states keep merging all the way up
            # the tree while raw rows would concatenate — partial always
            # pays, whatever a single state row weighs.
            if groups < GROUP_FALLBACK_RATIO * rows:
                optimizer_stats.adaptive_partial += 1
                continue
            # High share: states barely merge, so the decision comes down to
            # bytes at the leaf hop.  State width for *this* query (keys +
            # one state per aggregate call) times the observed packed bytes
            # per state cell — per-cell feedback transfers across query
            # shapes where a per-row average would let wide states inflate
            # narrow ones.  Unlike the fixed-ratio rule, genuinely small
            # states (few aggregates over wide raw rows) keep the partial
            # path even at high shares.
            state_width = len(keys) + max(_aggregate_call_count(query), 1)
            est_state_bytes = (
                groups * state_width * state_size_feedback.bytes_per_cell()
            )
            raw_bytes = chunk.estimated_bytes()
            if est_state_bytes >= raw_bytes:
                optimizer_stats.adaptive_fallback += 1
                return False
            optimizer_stats.adaptive_partial += 1
            continue
        rows = min(len(chunk), GROUP_FALLBACK_SAMPLE_ROWS)
        if rows < GROUP_FALLBACK_MIN_ROWS:
            continue
        arrays = [chunk.column_array(key) for key in keys]
        if any(array is None for array in arrays):
            return True
        if len(arrays) == 1:
            observed = len({freeze_value(value) for value in arrays[0][:rows]})
        else:
            observed = len(
                {
                    tuple(freeze_value(value) for value in values)
                    for values in zip(*(array[:rows] for array in arrays))
                }
            )
        if observed >= GROUP_FALLBACK_RATIO * rows:
            return False
    return True


def last_inside_node(topology: Topology, current: str) -> str:
    """The node the anonymization step A runs on.

    ``current`` itself when it is inside the apartment, otherwise the most
    powerful in-apartment node (the paper's placement of the postprocessor).
    """
    node = topology.node(current)
    if node.inside_apartment:
        return current
    inside = [n for n in topology.nodes if n.inside_apartment]
    return inside[-1].name if inside else current


def rebase_table_refs(query: ast.Query, old_name: str, new_name: str) -> ast.Query:
    """Clone ``query`` with every ``old_name`` table reference renamed.

    The original name survives as the alias (unless one exists), so
    qualified column references keep resolving.  Used to point fragment
    queries at namespaced per-session table names.
    """
    rebased = clone(query)
    if old_name.lower() == new_name.lower():
        return rebased
    stack: List[ast.Node] = [rebased]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, ast.TableRef) and node.name.lower() == old_name.lower():
            if node.alias is None:
                node.alias = node.name
            node.name = new_name
        stack.extend(child for child in node.children() if child is not None)
    return rebased


def union_partials(parts: Sequence[Relation], name: str) -> Relation:
    """Concatenate partial relations in order (the merge/union operator).

    The schema comes from the first non-empty partial: every partial is the
    same query over same-schema chunks, so non-empty ones agree; empty ones
    may carry weaker inferred types.  Degenerate inputs are handled too: an
    empty ``parts`` sequence yields an empty relation, and when *every*
    partial is empty the column types are merged across partials so one
    explicitly typed (but empty) chunk is not shadowed by the first
    partial's inferred-from-nothing defaults.

    Relations are columnar, so the union is a per-column ``extend`` over
    the partials' value arrays (aligned by column name) — no per-row dict
    copies, which is what makes the merge points of large parallel plans
    cheap.  Typed column backings are preserved: int64/float64 partials
    union into one contiguous typed buffer (degrading to a generic list
    only when a partial carries a different backing).
    """
    parts = list(parts)
    if not parts:
        return Relation(schema=Schema([]), rows=[], name=name)
    schema_source = next((part for part in parts if len(part)), None)
    if schema_source is not None:
        schema = schema_source.schema
    else:
        # All partials are empty.  Empty relations infer FLOAT for every
        # column, so prefer, per column, the first partial carrying a more
        # specific type.
        columns = []
        for index, column in enumerate(parts[0].schema.columns):
            data_type = column.data_type
            if data_type is DataType.FLOAT:
                for part in parts[1:]:
                    if index < len(part.schema.columns):
                        other = part.schema.columns[index].data_type
                        if other is not DataType.FLOAT:
                            data_type = other
                            break
            columns.append(ColumnDef(name=column.name, data_type=data_type))
        schema = Schema(columns)
    merged: List[Optional[list]] = [None for _ in schema.columns]
    for part in parts:
        if not len(part):
            continue
        for position, column_def in enumerate(schema.columns):
            source = part.column_array(column_def.name)
            if source is None:
                source = [None] * len(part)
            if merged[position] is None:
                merged[position] = copy_column(source)
            else:
                merged[position] = extend_column(merged[position], source)
    return Relation.from_columns(
        schema,
        [column if column is not None else [] for column in merged],
        name=name,
    )


class ExecutionContext:
    """Shared mutable state of one DAG run (thread-safe where it must be)."""

    def __init__(
        self,
        network: NetworkSimulator,
        log: TransferLog,
        engine_mode: str = "compiled",
        cost_model: Optional[CostModel] = None,
        anonymizer: Optional[object] = None,
        checkpoints: Optional[CheckpointStore] = None,
        injector: Optional[FailureInjector] = None,
        trace: Optional[QueryTrace] = None,
        calibration: Optional[CalibrationLog] = None,
        dispatcher: Optional[object] = None,
        optimizer: bool = True,
    ) -> None:
        self.network = network
        self.log = log
        self.engine_mode = engine_mode
        #: Whether worker threads run with the cost-based optimizer active
        #: (mirrored into the scan planner's thread-local by the scheduler).
        self.optimizer = optimizer
        #: Process-pool dispatcher (:class:`repro.runtime.procs.ProcessDispatcher`)
        #: when the run uses ``workers="processes"``; ``None`` keeps engine
        #: operations in the scheduler's threads.
        self.dispatcher = dispatcher
        self.cost_model = cost_model
        self.anonymizer = anonymizer
        #: Signature-keyed aggregate-state checkpoints; shared across the
        #: re-plan attempts of one processing run (``None`` disables).
        self.checkpoints = checkpoints
        #: The run's failure-injection harness (``None`` outside chaos runs).
        self.injector = injector
        #: Per-query span collection (``None`` outside profiled runs; every
        #: producer guards on that, keeping tracing near-zero-cost off).
        self.trace = trace
        #: Predicted-vs-observed task costs, filled by the scheduler.
        self.calibration = calibration
        #: Which re-plan attempt is executing (0 = the healthy first plan);
        #: bumped by the processor's recovery loop before each re-run.
        self.attempt = 0
        #: task id -> output relation; each task writes only its own key.
        self.outputs: Dict[str, Relation] = {}
        #: (attempt, task order) -> record.  Keyed, not appended: a task
        #: retried in place overwrites its own slot, so a transient failure
        #: after the engine call no longer double-charges the task's time in
        #: report sums.  Completion order is scheduling noise, so reports
        #: read :meth:`ordered_executions`.
        self._executions: Dict[Tuple[int, int], FragmentExecution] = {}
        self.capacity_warnings: List[str] = []
        self.anonymization = None
        self._lock = threading.Lock()

    def record_execution(self, order: int, execution: FragmentExecution) -> None:
        with self._lock:
            self._executions[(self.attempt, order)] = execution

    def ordered_executions(self) -> List[FragmentExecution]:
        """Execution records in deterministic attempt-then-build order."""
        with self._lock:
            return [record for _, record in sorted(self._executions.items())]

    def engine_call(self, fn, *args) -> Tuple[Relation, float]:
        """Run one engine operation, timed.  The single timing site for DAG
        task work: returns ``(output, elapsed_seconds)`` and, when tracing,
        accumulates the elapsed time on the current task span."""
        started = time.perf_counter()
        output = fn(*args)
        elapsed = time.perf_counter() - started
        if self.trace is not None:
            span = current_span()
            if span is not None and span.trace is self.trace:
                span.attrs["engine_seconds"] = (
                    span.attrs.get("engine_seconds", 0.0) + elapsed
                )
        return output, elapsed

    def annotate(self, **attrs) -> None:
        """Attach attributes to the current task span (no-op untraced)."""
        if self.trace is None:
            return
        span = current_span()
        if span is not None and span.trace is self.trace:
            span.attrs.update(attrs)

    def annotate_io(self, input_rows: int, output: Relation) -> None:
        """Record a task's row counts and output size on its span.

        ``estimated_bytes`` walks every value of the output, so it is only
        computed when tracing is on.
        """
        if self.trace is None:
            return
        self.annotate(
            input_rows=input_rows,
            output_rows=len(output),
            estimated_bytes=output.estimated_bytes(),
        )

    def save_checkpoint(self, task: "Task", relation: Relation) -> bool:
        """Checkpoint an aggregate-state task's output (partial/combine)."""
        if self.checkpoints is not None and task.kind in ("partial", "combine"):
            return self.checkpoints.save(task.signature, relation)
        return False

    def restore_checkpoint(self, task: "Task") -> Optional[Relation]:
        """The checkpointed output for ``task``'s signature, if any."""
        if self.checkpoints is None or task.kind not in ("partial", "combine"):
            return None
        return self.checkpoints.restore(task.signature)

    def warn_capacity(self, message: str) -> None:
        with self._lock:
            self.capacity_warnings.append(message)

    def charge_compute(self, rows: int, node_name: str) -> None:
        if self.cost_model is None:
            return
        power = self.network.topology.node(node_name).cpu_power or 1.0
        self.cost_model.charge_compute(rows, power)


@dataclass
class Task:
    """One unit of work pinned to a topology node."""

    task_id: str
    node: str
    #: Position in deterministic build order; fixes report ordering.
    order: int
    deps: List[str] = field(default_factory=list)
    kind: str = "task"
    #: Content identity: a Merkle-style hash over the task's kind,
    #: placement, relation names, dependency signatures and (for leaves)
    #: the input chunk's placement epoch — *not* the task id, which shifts
    #: between re-plans.  Equal signatures mean "produces the identical
    #: output", which is what checkpoint restoration keys on.
    signature: str = ""

    def execute(self, context: ExecutionContext) -> Relation:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _receive(
        self,
        context: ExecutionContext,
        relation: Relation,
        name: str,
        source_node: str,
        register: bool = True,
    ) -> Relation:
        """Move a dependency's output to this task's node (ship + register).

        Returns the relation *as received on this node* — for an actual
        inter-node hop that is the wire-deserialized copy, so downstream
        work consumes exactly what crossed the link.
        """
        node = context.network.topology.node(self.node)
        if not node.can_hold_rows(len(relation)):
            context.warn_capacity(
                f"{self.node}: {len(relation)} rows of {name} exceed "
                f"{node.free_memory_mb:g} MB of free memory"
            )
        if source_node == self.node:
            if register:
                context.network.database(self.node).register(name, relation)
            return relation
        return context.network.ship(
            relation,
            name,
            source_node,
            self.node,
            log=context.log,
            register=register,
            injector=context.injector,
        )

    def _engine(
        self,
        context: ExecutionContext,
        database,
        op: str,
        query: ast.Query,
        state: Optional[Relation] = None,
    ) -> Tuple[Relation, float]:
        """Run one engine operation on the configured compute backend.

        Thread backend (default): the bound database method runs in this
        scheduler thread.  Process backend: the operation, its referenced
        input relations and the optional merged state cross the process
        boundary as wire bytes (:mod:`repro.runtime.procs`) — the timing
        then honestly includes serialization and IPC.
        """
        dispatcher = context.dispatcher
        if dispatcher is not None:
            tables = dispatcher.gather_tables(database, query)
            return context.engine_call(
                dispatcher.run, op, context.engine_mode, query, tables, state
            )
        if op == "query":
            return context.engine_call(database.query, query)
        if op == "partial":
            return context.engine_call(database.partial_aggregate, query)
        if op == "combine":
            return context.engine_call(database.combine_partials, query, state)
        return context.engine_call(database.finalize_partials, query, state)


def _observe_rows_estimate(
    context: ExecutionContext,
    query: Optional[ast.Query],
    source: Optional[Relation],
    output: Relation,
) -> None:
    """Annotate a task span with its estimated output rows (trace-gated).

    Also feeds the run's calibration log so ``calibration_report()`` can
    score the estimator against the observed counts.
    """
    if context.trace is None or query is None or source is None:
        return
    from repro.engine.vectorized import estimate_select_rows

    estimated = estimate_select_rows(query, source)
    if estimated is None:
        return
    context.annotate(estimated_rows=estimated)
    if context.calibration is not None:
        context.calibration.observe(
            "rows", float(estimated), float(len(output)), rows=len(output)
        )


@dataclass
class FragmentTask(Task):
    """Run one fragment query on this node (a leaf scan or a chained hop)."""

    fragment: Optional[QueryFragment] = None
    query: Optional[ast.Query] = None
    #: Producing task of the input relation; ``None`` when the input is
    #: already resident on the node (base chunks, device tables).
    source_id: Optional[str] = None
    source_node: Optional[str] = None
    in_name: str = ""
    out_name: str = ""
    display_name: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        network = context.network
        database = network.database(self.node)
        if self.source_id is not None:
            source = context.outputs[self.source_id]
            self._receive(context, source, self.in_name, self.source_node or self.node)
            input_rows = len(source)
        else:
            source = database.table(self.in_name) if self.in_name in database else None
            input_rows = len(source) if source is not None else 0
        context.charge_compute(input_rows, self.node)
        output, elapsed = self._engine(context, database, "query", self.query)
        output.name = self.display_name
        database.register(self.out_name, output)
        context.annotate_io(input_rows, output)
        _observe_rows_estimate(context, self.query, source, output)
        context.record_execution(
            self.order,
            FragmentExecution(
                fragment_name=self.display_name,
                node=self.node,
                level=self.fragment.level.short_name if self.fragment else "",
                sql=self.fragment.sql if self.fragment else "",
                input_rows=input_rows,
                output_rows=len(output),
                elapsed_seconds=elapsed,
            )
        )
        return output


@dataclass
class RawScanTask(Task):
    """Expose a node's resident chunk of a base table as a task output."""

    table_name: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        output = context.network.database(self.node).table(self.table_name)
        context.annotate(input_rows=len(output), output_rows=len(output))
        return output


@dataclass
class MergeTask(Task):
    """Union sibling partials, in deterministic partition order."""

    parts: List[Tuple[str, str]] = field(default_factory=list)  # (task_id, node)
    out_name: str = ""
    display_name: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        partials: List[Relation] = []
        total_in = 0
        for part_id, part_node in self.parts:
            relation = context.outputs[part_id]
            total_in += len(relation)
            # Log the shipment of each partial towards the merge point; the
            # union itself is registered once below, so partials are not
            # individually registered (keeps the catalog shape stable).
            received = self._receive(
                context,
                relation,
                f"{self.display_name}@{part_node}",
                part_node,
                register=False,
            )
            partials.append(received)
        merged, elapsed = context.engine_call(
            union_partials, partials, self.display_name
        )
        context.network.database(self.node).register(self.out_name, merged)
        context.annotate_io(total_in, merged)
        context.record_execution(
            self.order,
            FragmentExecution(
                fragment_name=f"merge({self.display_name})",
                node=self.node,
                level=self.network_level(context),
                sql=f"UNION ALL of {len(self.parts)} partials",
                input_rows=total_in,
                output_rows=len(merged),
                elapsed_seconds=elapsed,
            )
        )
        return merged

    def network_level(self, context: ExecutionContext) -> str:
        return context.network.topology.node(self.node).level.short_name


@dataclass
class PartialAggregateTask(Task):
    """Run a decomposable GROUP BY fragment in *partial* mode on this node.

    Emits mergeable aggregate states (one row per group of the local
    chunk) instead of the fragment's finalized output — the rows that
    travel up the tree from here on are group states, not raw data.
    """

    fragment: Optional[QueryFragment] = None
    query: Optional[ast.Query] = None
    source_id: Optional[str] = None
    source_node: Optional[str] = None
    in_name: str = ""
    out_name: str = ""
    display_name: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        network = context.network
        database = network.database(self.node)
        if self.source_id is not None:
            source = context.outputs[self.source_id]
            self._receive(context, source, self.in_name, self.source_node or self.node)
            input_rows = len(source)
        else:
            source = database.table(self.in_name) if self.in_name in database else None
            input_rows = len(source) if source is not None else 0
        context.charge_compute(input_rows, self.node)
        output, elapsed = self._engine(context, database, "partial", self.query)
        output.name = self.display_name
        database.register(self.out_name, output)
        # Observed state size feeds the adaptive partial-aggregation ratio:
        # future placement decisions use real packed bytes per state cell.
        from repro.engine.wire import state_size_feedback

        state_size_feedback.record(
            len(output),
            output.estimated_bytes(),
            cells=len(output) * len(output.schema),
        )
        context.annotate_io(input_rows, output)
        _observe_rows_estimate(context, self.query, source, output)
        context.record_execution(
            self.order,
            FragmentExecution(
                fragment_name=self.display_name,
                node=self.node,
                level=self.fragment.level.short_name if self.fragment else "",
                sql=f"partial({self.fragment.sql})" if self.fragment else "",
                input_rows=input_rows,
                output_rows=len(output),
                elapsed_seconds=elapsed,
            ),
        )
        return output


@dataclass
class CombinePartialsTask(Task):
    """Merge sibling partial-state relations per group at this node.

    The states of sibling subtrees union in partition order and merge into
    one state row per group — the tree-level combine of the
    partial-aggregation protocol.  Output stays in partial-state form.
    """

    fragment: Optional[QueryFragment] = None
    query: Optional[ast.Query] = None
    parts: List[Tuple[str, str]] = field(default_factory=list)  # (task_id, node)
    out_name: str = ""
    display_name: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        partials: List[Relation] = []
        total_in = 0
        for part_id, part_node in self.parts:
            relation = context.outputs[part_id]
            total_in += len(relation)
            received = self._receive(
                context,
                relation,
                f"{self.display_name}@{part_node}",
                part_node,
                register=False,
            )
            partials.append(received)
        merged = union_partials(partials, self.display_name)
        context.charge_compute(total_in, self.node)
        database = context.network.database(self.node)
        output, elapsed = self._engine(
            context, database, "combine", self.query, state=merged
        )
        output.name = self.display_name
        database.register(self.out_name, output)
        context.annotate_io(total_in, output)
        context.record_execution(
            self.order,
            FragmentExecution(
                fragment_name=f"combine({self.display_name})",
                node=self.node,
                level=context.network.topology.node(self.node).level.short_name,
                sql=f"merge of {len(self.parts)} partial-state relations",
                input_rows=total_in,
                output_rows=len(output),
                elapsed_seconds=elapsed,
            ),
        )
        return output


@dataclass
class FinalizeAggregationTask(Task):
    """Merge the remaining partial states and emit the fragment's output.

    Runs where the serial oracle runs the GROUP BY fragment; applies
    HAVING, the select items and ORDER BY over the finalized aggregates,
    so the output is byte-identical to executing the fragment over the
    globally merged raw input — which never had to exist.
    """

    fragment: Optional[QueryFragment] = None
    query: Optional[ast.Query] = None
    parts: List[Tuple[str, str]] = field(default_factory=list)  # (task_id, node)
    out_name: str = ""
    display_name: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        partials: List[Relation] = []
        total_in = 0
        for part_id, part_node in self.parts:
            relation = context.outputs[part_id]
            total_in += len(relation)
            received = self._receive(
                context,
                relation,
                f"{self.display_name}~partial@{part_node}",
                part_node,
                register=False,
            )
            partials.append(received)
        merged = union_partials(partials, f"{self.display_name}~partial")
        context.charge_compute(total_in, self.node)
        database = context.network.database(self.node)
        output, elapsed = self._engine(
            context, database, "finalize", self.query, state=merged
        )
        output.name = self.display_name
        database.register(self.out_name, output)
        context.annotate_io(total_in, output)
        context.record_execution(
            self.order,
            FragmentExecution(
                fragment_name=self.display_name,
                node=self.node,
                level=self.fragment.level.short_name if self.fragment else "",
                sql=self.fragment.sql if self.fragment else "",
                input_rows=total_in,
                output_rows=len(output),
                elapsed_seconds=elapsed,
            ),
        )
        return output


@dataclass
class AnonymizeTask(Task):
    """The postprocessing step A on the last in-apartment node."""

    source_id: str = ""
    source_node: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        relation = context.outputs[self.source_id]
        context.charge_compute(len(relation), self.node)
        node = context.network.topology.node(self.node)
        outcome, _ = context.engine_call(
            lambda: context.anonymizer.anonymize(
                relation, node_cpu_power=node.cpu_power or 1.0
            )
        )
        context.anonymization = outcome
        context.annotate_io(len(relation), outcome.relation)
        return outcome.relation


@dataclass
class FinalizeTask(Task):
    """Ship d' across the boundary and run the remainder at the cloud."""

    source_id: str = ""
    source_node: str = ""
    result_name: str = ""
    remainder_query: Optional[ast.Query] = None
    remainder_input_alias: str = ""
    remainder_description: str = ""

    def execute(self, context: ExecutionContext) -> Relation:
        relation = context.outputs[self.source_id]
        if self.source_node != self.node:
            relation = self._receive(
                context, relation, self.result_name, self.source_node
            )
        if self.remainder_query is None:
            context.annotate_io(len(relation), relation)
            return relation
        database = context.network.database(self.node)
        database.register(self.remainder_input_alias, relation)
        context.charge_compute(len(relation), self.node)
        output, elapsed = self._engine(
            context, database, "query", self.remainder_query
        )
        context.annotate_io(len(relation), output)
        context.record_execution(
            self.order,
            FragmentExecution(
                fragment_name="Q_delta",
                node=self.node,
                level="E1",
                sql=self.remainder_description,
                input_rows=len(relation),
                output_rows=len(output),
                elapsed_seconds=elapsed,
            )
        )
        return output


@dataclass
class ExecutionDag:
    """A topologically buildable set of tasks plus its final task."""

    tasks: List[Task]
    final_task_id: str
    #: Number of leaf partitions the bottom fragment fanned out over.
    partition_width: int

    def by_id(self) -> Dict[str, Task]:
        return {task.task_id: task for task in self.tasks}


def build_execution_dag(
    plan: FragmentPlan,
    topology: Topology,
    network: NetworkSimulator,
    anonymize: bool = True,
    namespace: Optional[str] = None,
    partial_aggregation: bool = True,
) -> ExecutionDag:
    """Build the execution DAG for ``plan`` over ``topology``.

    ``namespace`` suffixes every intermediate table name (``d1__s3``) so
    concurrent sessions sharing one simulator never clobber each other's
    intermediates; base tables stay un-suffixed (shared, read-only).

    ``partial_aggregation`` enables the distributed GROUP BY protocol:
    fragments marked :attr:`~repro.fragment.plan.QueryFragment.decomposable`
    run as per-partition partial aggregation whose mergeable states combine
    at each tree level (reusing the sibling-lift machinery) and finalize at
    the fragment's assigned node — no global merge of raw rows ever
    happens.  ``False`` restores the merge-then-group behaviour (the
    ablation baseline the pushdown benchmark compares against).
    """
    if not plan.fragments:
        raise ValueError("Cannot build an execution DAG for an empty plan")

    def ns(name: str) -> str:
        return f"{name}__{namespace}" if namespace else name

    tasks: List[Task] = []
    counter = [0]

    def next_id(prefix: str) -> Tuple[str, int]:
        counter[0] += 1
        return f"t{counter[0]:03d}:{prefix}", counter[0]

    def add(task: Task) -> Task:
        tasks.append(task)
        return task

    fragments = list(plan.fragments)
    base_table = fragments[0].input_name
    holders = network.partition_holders(base_table)
    partition_width = len(holders)

    #: Ordered (task, node) partials of the current intermediate relation.
    partitions: List[Task] = []
    remaining = fragments

    def combine_and_finalize(fragment: QueryFragment, partial_tasks: List[Task]) -> Task:
        """Lift partial states up the tree, then finalize the fragment.

        Sibling partial-state relations combine at their common parent one
        tree level at a time (the same lift rule distributive fragments
        use); whatever states remain merge and finalize where the serial
        oracle runs the fragment.
        """
        partial_name = ns(f"{fragment.name}__partial")
        current = partial_tasks
        while len(current) > 1:
            lifted = _lift_groups(topology, current)
            if lifted is None:
                break
            next_level: List[Task] = []
            for parent, group in lifted:
                task_id, order = next_id(f"{fragment.name}~combine[{parent}]")
                next_level.append(
                    add(
                        CombinePartialsTask(
                            task_id=task_id,
                            node=parent,
                            order=order,
                            deps=[task.task_id for task in group],
                            kind="combine",
                            fragment=fragment,
                            query=fragment.query,
                            parts=[(task.task_id, task.node) for task in group],
                            out_name=partial_name,
                            display_name=f"{fragment.name}~partial",
                        )
                    )
                )
            current = next_level
        target = fragment.assigned_node or topology.cloud.name
        task_id, order = next_id(f"{fragment.name}~finalize")
        return add(
            FinalizeAggregationTask(
                task_id=task_id,
                node=target,
                order=order,
                deps=[task.task_id for task in current],
                kind="finalize_agg",
                fragment=fragment,
                query=fragment.query,
                parts=[(task.task_id, task.node) for task in current],
                out_name=ns(fragment.name),
                display_name=fragment.name,
            )
        )

    if len(holders) > 1:
        first = fragments[0]
        if first.partitionable:
            # Fan the bottom fragment out over the leaf chunks.
            for holder in holders:
                task_id, order = next_id(f"{first.name}[{holder}]")
                partitions.append(
                    add(
                        FragmentTask(
                            task_id=task_id,
                            node=holder,
                            order=order,
                            kind="fragment",
                            fragment=first,
                            query=rebase_table_refs(first.query, base_table, base_table),
                            in_name=base_table,
                            out_name=ns(first.name),
                            display_name=f"{first.name}[{holder}]",
                        )
                    )
                )
            remaining = fragments[1:]
        elif (
            partial_aggregation
            and first.decomposable
            and partial_aggregation_pays(network, holders, first, base_table)
        ):
            # The bottom fragment is itself a decomposable aggregation:
            # partial-aggregate every leaf chunk in place, combine states
            # up the tree, finalize at the assigned node.
            partial_tasks: List[Task] = []
            for holder in holders:
                task_id, order = next_id(f"{first.name}~partial[{holder}]")
                partial_tasks.append(
                    add(
                        PartialAggregateTask(
                            task_id=task_id,
                            node=holder,
                            order=order,
                            kind="partial",
                            fragment=first,
                            query=rebase_table_refs(first.query, base_table, base_table),
                            in_name=base_table,
                            out_name=ns(f"{first.name}__partial"),
                            display_name=f"{first.name}~partial[{holder}]",
                        )
                    )
                )
            partitions = [combine_and_finalize(first, partial_tasks)]
            remaining = fragments[1:]
        else:
            # Bottom fragment needs the whole relation: gather the raw
            # chunks first, then run it where the serial oracle would.
            for holder in holders:
                task_id, order = next_id(f"scan[{holder}]")
                partitions.append(
                    add(
                        RawScanTask(
                            task_id=task_id,
                            node=holder,
                            order=order,
                            kind="scan",
                            table_name=base_table,
                        )
                    )
                )
            ancestor = topology.common_ancestor(holders).name
            merge_id, order = next_id(f"merge[{base_table}]")
            merge = add(
                MergeTask(
                    task_id=merge_id,
                    node=ancestor,
                    order=order,
                    deps=[task.task_id for task in partitions],
                    kind="merge",
                    parts=[(task.task_id, task.node) for task in partitions],
                    out_name=ns(base_table),
                    display_name=base_table,
                )
            )
            target = first.assigned_node or topology.cloud.name
            task_id, order = next_id(first.name)
            partitions = [
                add(
                    FragmentTask(
                        task_id=task_id,
                        node=target,
                        order=order,
                        deps=[merge.task_id],
                        kind="fragment",
                        fragment=first,
                        query=rebase_table_refs(first.query, base_table, ns(base_table)),
                        source_id=merge.task_id,
                        source_node=merge.node,
                        in_name=ns(base_table),
                        out_name=ns(first.name),
                        display_name=first.name,
                    )
                )
            ]
            remaining = fragments[1:]

    for index, fragment in enumerate(remaining):
        in_base = fragment.input_name
        if (
            len(partitions) > 1
            and partial_aggregation
            and fragment.partitionable
            and _next_blocker_decomposable(remaining, index)
        ):
            # A decomposable aggregation is coming: run this distributive
            # fragment *in place* on every partition instead of lifting, so
            # the partition is still at the leaves when partial aggregation
            # starts — only aggregate states will ever climb the tree.
            in_place: List[Task] = []
            for previous in partitions:
                task_id, order = next_id(f"{fragment.name}[{previous.node}]")
                in_place.append(
                    add(
                        FragmentTask(
                            task_id=task_id,
                            node=previous.node,
                            order=order,
                            deps=[previous.task_id],
                            kind="fragment",
                            fragment=fragment,
                            query=rebase_table_refs(fragment.query, in_base, ns(in_base)),
                            source_id=previous.task_id,
                            source_node=previous.node,
                            in_name=ns(in_base),
                            out_name=ns(fragment.name),
                            display_name=f"{fragment.name}[{previous.node}]",
                        )
                    )
                )
            partitions = in_place
            continue
        if (
            len(partitions) > 1
            and partial_aggregation
            and fragment.decomposable
            and partial_aggregation_pays(
                network, [task.node for task in partitions], fragment, base_table
            )
        ):
            # Decomposable aggregation: keep the partition, aggregate each
            # chunk into mergeable states where it lives, combine states
            # per tree level, finalize at the assigned node.  Only group
            # states cross hops from here on — never the raw rows a global
            # merge would have shipped.
            partial_tasks = []
            for previous in partitions:
                task_id, order = next_id(f"{fragment.name}~partial[{previous.node}]")
                partial_tasks.append(
                    add(
                        PartialAggregateTask(
                            task_id=task_id,
                            node=previous.node,
                            order=order,
                            deps=[previous.task_id],
                            kind="partial",
                            fragment=fragment,
                            query=rebase_table_refs(fragment.query, in_base, ns(in_base)),
                            source_id=previous.task_id,
                            source_node=previous.node,
                            in_name=ns(in_base),
                            out_name=ns(f"{fragment.name}__partial"),
                            display_name=f"{fragment.name}~partial[{previous.node}]",
                        )
                    )
                )
            partitions = [combine_and_finalize(fragment, partial_tasks)]
            continue
        if len(partitions) > 1:
            lifted = _lift_groups(topology, partitions)
            if fragment.partitionable and lifted is not None:
                # Merge each sibling group at its parent, then apply the
                # fragment there: the partition narrows one tree level.
                new_partitions: List[Task] = []
                for parent, group in lifted:
                    merge_id, order = next_id(f"merge[{in_base}@{parent}]")
                    merge = add(
                        MergeTask(
                            task_id=merge_id,
                            node=parent,
                            order=order,
                            deps=[task.task_id for task in group],
                            kind="merge",
                            parts=[(task.task_id, task.node) for task in group],
                            out_name=ns(in_base),
                            display_name=in_base,
                        )
                    )
                    task_id, order = next_id(f"{fragment.name}[{parent}]")
                    new_partitions.append(
                        add(
                            FragmentTask(
                                task_id=task_id,
                                node=parent,
                                order=order,
                                deps=[merge.task_id],
                                kind="fragment",
                                fragment=fragment,
                                query=rebase_table_refs(
                                    fragment.query, in_base, ns(in_base)
                                ),
                                source_id=merge.task_id,
                                source_node=merge.node,
                                in_name=ns(in_base),
                                out_name=ns(fragment.name),
                                display_name=f"{fragment.name}[{parent}]",
                            )
                        )
                    )
                partitions = new_partitions
                continue
            # Non-distributive fragment (or nowhere left to lift): merge
            # everything at the node the serial oracle uses and chain on.
            target = fragment.assigned_node or topology.cloud.name
            merge_id, order = next_id(f"merge[{in_base}]")
            merge = add(
                MergeTask(
                    task_id=merge_id,
                    node=target,
                    order=order,
                    deps=[task.task_id for task in partitions],
                    kind="merge",
                    parts=[(task.task_id, task.node) for task in partitions],
                    out_name=ns(in_base),
                    display_name=in_base,
                )
            )
            task_id, order = next_id(fragment.name)
            partitions = [
                add(
                    FragmentTask(
                        task_id=task_id,
                        node=target,
                        order=order,
                        deps=[merge.task_id],
                        kind="fragment",
                        fragment=fragment,
                        query=rebase_table_refs(fragment.query, in_base, ns(in_base)),
                        source_id=merge.task_id,
                        source_node=merge.node,
                        in_name=ns(in_base),
                        out_name=ns(fragment.name),
                        display_name=fragment.name,
                    )
                )
            ]
            continue
        # Single-stream chain: exactly the serial oracle's hop.
        target = fragment.assigned_node or topology.cloud.name
        previous = partitions[0] if partitions else None
        task_id, order = next_id(fragment.name)
        rebased_in = ns(in_base) if previous is not None else in_base
        partitions = [
            add(
                FragmentTask(
                    task_id=task_id,
                    node=target,
                    order=order,
                    deps=[previous.task_id] if previous is not None else [],
                    kind="fragment",
                    fragment=fragment,
                    query=rebase_table_refs(fragment.query, in_base, rebased_in),
                    source_id=previous.task_id if previous is not None else None,
                    source_node=previous.node if previous is not None else None,
                    in_name=rebased_in,
                    out_name=ns(fragment.name),
                    display_name=fragment.name,
                )
            )
        ]

    if len(partitions) > 1:
        # Every fragment was distributive: one final union before leaving.
        ancestor = topology.common_ancestor([task.node for task in partitions]).name
        final_name = fragments[-1].name
        merge_id, order = next_id(f"merge[{final_name}]")
        partitions = [
            add(
                MergeTask(
                    task_id=merge_id,
                    node=ancestor,
                    order=order,
                    deps=[task.task_id for task in partitions],
                    kind="merge",
                    parts=[(task.task_id, task.node) for task in partitions],
                    out_name=ns(final_name),
                    display_name=final_name,
                )
            )
        ]

    current = partitions[0]

    if anonymize:
        boundary = last_inside_node(topology, current.node)
        task_id, order = next_id("anonymize")
        current = add(
            AnonymizeTask(
                task_id=task_id,
                node=boundary,
                order=order,
                deps=[current.task_id],
                kind="anonymize",
                source_id=current.task_id,
                source_node=current.node,
            )
        )

    cloud = topology.cloud.name
    remainder_query = None
    if plan.remainder_query is not None:
        remainder_query = rebase_table_refs(
            plan.remainder_query,
            plan.remainder_input_alias,
            ns(plan.remainder_input_alias),
        )
    task_id, order = next_id("finalize")
    final = add(
        FinalizeTask(
            task_id=task_id,
            node=cloud,
            order=order,
            deps=[current.task_id],
            kind="finalize",
            source_id=current.task_id,
            source_node=current.node,
            result_name=ns(plan.result_name),
            remainder_query=remainder_query,
            remainder_input_alias=ns(plan.remainder_input_alias),
            remainder_description=plan.remainder_description,
        )
    )

    _assign_signatures(tasks, network)
    return ExecutionDag(
        tasks=tasks, final_task_id=final.task_id, partition_width=partition_width
    )


def _assign_signatures(tasks: Sequence[Task], network: NetworkSimulator) -> None:
    """Give every task its content signature (Merkle-style, leaves up).

    Tasks are in build order, so every dependency's signature exists by the
    time its dependents hash it.  Leaf tasks (no deps, reading a resident
    chunk) fold in the chunk's placement epoch: after a failure re-places a
    chunk, the tasks over the *moved* data get fresh signatures while
    untouched subtrees keep theirs — exactly the distinction checkpoint
    restoration needs.
    """
    by_id: Dict[str, str] = {}
    for task in tasks:
        parts = [task.kind, task.node]
        for attr in ("display_name", "out_name", "in_name", "table_name", "result_name"):
            parts.append(str(getattr(task, attr, "")))
        if not task.deps:
            chunk_name = getattr(task, "in_name", "") or getattr(task, "table_name", "")
            if chunk_name:
                parts.append(f"epoch={network.data_epoch(task.node, chunk_name)}")
        parts.extend(by_id[dep] for dep in task.deps)
        task.signature = hashlib.sha1("\x1f".join(parts).encode("utf-8")).hexdigest()
        by_id[task.task_id] = task.signature


def replan_without(
    plan: FragmentPlan, topology: Topology, dead_names: Sequence[str]
) -> Tuple[FragmentPlan, Topology]:
    """Re-map ``plan`` onto ``topology`` minus the dead nodes.

    Returns the remapped plan plus the pruned topology to rebuild the
    execution DAG over (``build_execution_dag`` then re-derives the leaf
    fan-out from the network's updated partition map and re-lifts sibling
    groups with the same machinery as the healthy plan).  Fragments whose
    assigned node died re-root to the nearest live ancestor — except that a
    fragment placed *inside the apartment* never re-roots outside it: the
    privacy boundary outranks placement economics, so it falls back to the
    most powerful surviving in-apartment node instead.

    ``topology`` must be the original (healthy) topology and ``dead_names``
    the full accumulated death list, so repeated re-plans are independent of
    the order nodes died in.
    """
    pruned = topology.without(dead_names)
    dead = set(dead_names)
    live_inside = [node for node in pruned.nodes if node.inside_apartment]

    def replacement(name: str) -> str:
        original = topology.node(name)
        heir = next(
            (
                ancestor
                for ancestor in topology.path_to_root(name)[1:]
                if ancestor.name not in dead
            ),
            topology.cloud,
        )
        if original.inside_apartment and not heir.inside_apartment and live_inside:
            heir = live_inside[-1]
        return heir.name

    fragments = [
        dataclasses.replace(fragment, assigned_node=replacement(fragment.assigned_node))
        if fragment.assigned_node in dead
        else fragment
        for fragment in plan.fragments
    ]
    return dataclasses.replace(plan, fragments=fragments), pruned


def _next_blocker_decomposable(fragments: Sequence[QueryFragment], index: int) -> bool:
    """True when the first non-distributive fragment after ``index`` is a
    decomposable aggregation.

    Decides whether distributive fragments should stay on their partitions
    (the aggregation will shrink the data to group states before anything
    climbs the tree) or follow the default lift-per-level placement.
    """
    for fragment in fragments[index + 1 :]:
        if not fragment.partitionable:
            return fragment.decomposable
    return False


def lift_node_groups(
    topology: Topology, node_names: Sequence[str]
) -> Optional[List[Tuple[str, List[str]]]]:
    """Group partition-holding nodes by parent, preserving partition order.

    The placement primitive shared by the DAG builder (which lifts
    :class:`Task` partitions one level per plan stage) and the standing-query
    runtime (which computes the per-level combine placement of a maintained
    state tree once, at tree-creation time).

    Returns ``None`` when lifting is not possible or not useful: a partition
    node without a parent, a parent outside the apartment (data may not
    cross the boundary before anonymization), sibling groups that are not
    contiguous runs of the partition order (concatenating them would permute
    rows relative to the serial oracle), or a lift that would not reduce the
    number of partitions.
    """
    groups: List[Tuple[str, List[str]]] = []
    seen: Dict[str, int] = {}
    for name in node_names:
        parent = topology.parent_of(name)
        if parent is None or not parent.inside_apartment:
            return None
        if parent.name in seen:
            if seen[parent.name] != len(groups) - 1:
                # The parent's children are interleaved with another group:
                # a per-parent union would reorder rows.
                return None
            groups[-1][1].append(name)
        else:
            seen[parent.name] = len(groups)
            groups.append((parent.name, [name]))
    if len(groups) >= len(node_names):
        return None
    return groups


def _lift_groups(
    topology: Topology, partitions: Sequence[Task]
) -> Optional[List[Tuple[str, List[Task]]]]:
    """Group partition tasks by parent node (see :func:`lift_node_groups`)."""
    named = lift_node_groups(topology, [task.node for task in partitions])
    if named is None:
        return None
    tasks = iter(partitions)
    return [
        (parent, [next(tasks) for _ in children]) for parent, children in named
    ]
