"""Automatic generation and adaptation of privacy policies.

Figure 2 of the paper contains a module "for the automatic generation of
privacy settings" that "produces and adapts existing user-defined privacy
policies to new devices and changing requirements and queries" (detailed in
the companion paper [GH15]).  :class:`PolicyGenerator` reproduces that
behaviour on top of the schema classification carried by
:class:`~repro.engine.schema.ColumnDef`:

* identifying columns are denied,
* sensitive columns are restricted to an aggregation (AVG grouped by the
  quasi-identifiers, guarded by a minimum group size),
* quasi-identifier columns are allowed with reduced precision,
* everything else is allowed as-is.

``adapt_to_query`` extends an existing policy when a new query references
attributes the policy does not mention yet, using the same defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import DataType
from repro.policy.model import (
    AggregationRule,
    AttributeRule,
    ModulePolicy,
    PrivacyPolicy,
)
from repro.sql import ast
from repro.sql.analysis import analyze_query


@dataclass
class GeneratorSettings:
    """Tunables of the automatic policy generator."""

    #: Aggregate type imposed on sensitive numeric columns.
    sensitive_aggregation: str = "AVG"
    #: Minimum number of readings per group before a sensitive aggregate is
    #: released (enforced through a ``HAVING COUNT(*) >= k`` condition).
    minimum_group_size: int = 10
    #: Decimal precision kept on quasi-identifier columns.
    quasi_identifier_precision: int = 1
    #: Minimum seconds between two queries of the same module.
    query_interval_seconds: Optional[float] = 30.0
    #: Deny unknown attributes by default.
    default_allow: bool = False


class PolicyGenerator:
    """Generate and adapt :class:`~repro.policy.model.PrivacyPolicy` objects."""

    def __init__(self, settings: Optional[GeneratorSettings] = None) -> None:
        self.settings = settings or GeneratorSettings()

    # ------------------------------------------------------------------
    # generation from a schema
    # ------------------------------------------------------------------
    def generate(
        self,
        schema: Schema,
        module_id: str,
        owner: str = "user",
    ) -> PrivacyPolicy:
        """Generate a policy for ``module_id`` from a relation schema."""
        module = ModulePolicy(module_id=module_id, default_allow=self.settings.default_allow)
        module.stream_settings.query_interval_seconds = self.settings.query_interval_seconds
        quasi_identifiers = [c.name for c in schema if c.quasi_identifier]
        for column in schema:
            module.add_rule(self._rule_for_column(column, quasi_identifiers))
        policy = PrivacyPolicy(owner=owner)
        policy.add_module(module)
        return policy

    def _rule_for_column(self, column: ColumnDef, quasi_identifiers: List[str]) -> AttributeRule:
        if column.identifying:
            return AttributeRule(name=column.name, allow=False)
        if column.sensitive:
            if column.data_type.is_numeric:
                group_by = [name for name in quasi_identifiers if name != column.name]
                aggregation = AggregationRule(
                    aggregation_type=self.settings.sensitive_aggregation,
                    group_by=group_by,
                    having=f"COUNT(*) >= {self.settings.minimum_group_size}",
                )
                return AttributeRule(name=column.name, allow=True, aggregation=aggregation)
            # Non-numeric sensitive columns (e.g. the activity label) are
            # denied outright: there is no meaningful aggregate to hide behind.
            return AttributeRule(name=column.name, allow=False)
        if column.quasi_identifier:
            return AttributeRule(
                name=column.name,
                allow=True,
                max_precision=self.settings.quasi_identifier_precision,
            )
        return AttributeRule(name=column.name, allow=True)

    # ------------------------------------------------------------------
    # adaptation to new queries / devices
    # ------------------------------------------------------------------
    def adapt_to_query(
        self,
        policy: PrivacyPolicy,
        module_id: str,
        query: ast.Query,
        schema: Optional[Schema] = None,
    ) -> List[str]:
        """Extend ``policy`` with rules for attributes the query introduces.

        Returns the list of attribute names for which new rules were created.
        Existing rules are never weakened.
        """
        module = policy.module(module_id)
        features = analyze_query(query)
        added: List[str] = []
        quasi_identifiers = (
            [c.name for c in schema if c.quasi_identifier] if schema is not None else []
        )
        for column_name in sorted(features.columns):
            if module.rule_for(column_name) is not None:
                continue
            column = None
            if schema is not None and column_name in schema:
                column = schema.column(column_name)
            if column is None:
                column = ColumnDef(name=column_name, data_type=DataType.FLOAT)
            module.add_rule(self._rule_for_column(column, quasi_identifiers))
            added.append(column_name)
        return added

    def adapt_to_device(
        self,
        policy: PrivacyPolicy,
        module_id: str,
        device_schema: Schema,
    ) -> List[str]:
        """Extend ``policy`` with rules for the columns of a newly added device."""
        module = policy.module(module_id)
        quasi_identifiers = [c.name for c in device_schema if c.quasi_identifier]
        added: List[str] = []
        for column in device_schema:
            if module.rule_for(column.name) is None:
                module.add_rule(self._rule_for_column(column, quasi_identifiers))
                added.append(column.name)
        return added
