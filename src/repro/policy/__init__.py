"""Privacy policies for smart environments.

The paper bases its policy language on the W3C P3P draft, "but leaves out
browser-specific details" and adds stream configuration (allowed query
interval, aggregation levels).  A policy is organised per *module* (the
consumer of the data, e.g. the ``ActionFilter`` activity-recognition module of
Figure 4) and per *attribute*:

* whether the attribute may be revealed at all (``allow``),
* conditions that must hold on revealed tuples (``x > y``, ``z < 2``),
* an optional mandatory aggregation (type, GROUP BY attributes, HAVING
  condition) when the attribute may only leave in aggregated form,
* stream settings such as the minimum query interval.

Subpackages/modules:

* :mod:`repro.policy.model` — dataclass model,
* :mod:`repro.policy.xml_io` — parser/serializer for the XML dialect of
  Figure 4,
* :mod:`repro.policy.builder` — fluent programmatic construction,
* :mod:`repro.policy.validation` — consistency checks,
* :mod:`repro.policy.generator` — automatic generation/adaptation of policies
  from relation schemas (the "automatic generation of privacy settings" box of
  Figure 2),
* :mod:`repro.policy.presets` — ready-made policies, including the exact
  policy of Figure 4.
"""

from repro.policy.model import (
    AggregationRule,
    AttributeRule,
    ModulePolicy,
    PolicyError,
    PrivacyPolicy,
    StreamSettings,
)
from repro.policy.builder import PolicyBuilder
from repro.policy.xml_io import parse_policy_xml, policy_to_xml
from repro.policy.validation import PolicyIssue, validate_policy
from repro.policy.generator import PolicyGenerator
from repro.policy.presets import figure4_policy, open_policy, restrictive_policy

__all__ = [
    "AggregationRule",
    "AttributeRule",
    "ModulePolicy",
    "PolicyError",
    "PrivacyPolicy",
    "StreamSettings",
    "PolicyBuilder",
    "parse_policy_xml",
    "policy_to_xml",
    "PolicyIssue",
    "validate_policy",
    "PolicyGenerator",
    "figure4_policy",
    "open_policy",
    "restrictive_policy",
]
