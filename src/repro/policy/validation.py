"""Consistency checks for privacy policies.

The preprocessor refuses to rewrite queries against a policy that is
internally inconsistent (conditions that do not parse, aggregations grouped by
denied attributes, HAVING clauses referencing attributes without rules...).
``validate_policy`` returns the full list of issues so that policy authors can
fix them in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.policy.model import ModulePolicy, PrivacyPolicy
from repro.sql.errors import SqlError
from repro.sql.parser import parse_expression
from repro.sql.visitor import collect_column_names


@dataclass(frozen=True)
class PolicyIssue:
    """One validation finding."""

    module_id: str
    attribute: Optional[str]
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        scope = f"{self.module_id}.{self.attribute}" if self.attribute else self.module_id
        return f"[{self.severity}] {scope}: {self.message}"


def validate_policy(policy: PrivacyPolicy) -> List[PolicyIssue]:
    """Validate every module of ``policy`` and return all issues found."""
    issues: List[PolicyIssue] = []
    if not policy.modules:
        issues.append(
            PolicyIssue(module_id="<policy>", attribute=None, severity="error",
                        message="policy defines no module")
        )
    for module in policy.modules.values():
        issues.extend(_validate_module(module))
    return issues


def has_errors(issues: List[PolicyIssue]) -> bool:
    """Return True when at least one issue has severity ``error``."""
    return any(issue.severity == "error" for issue in issues)


def _validate_module(module: ModulePolicy) -> List[PolicyIssue]:
    issues: List[PolicyIssue] = []
    if not module.attributes and not module.default_allow:
        issues.append(
            PolicyIssue(
                module_id=module.module_id,
                attribute=None,
                severity="warning",
                message="module allows no attribute at all; every query will be rejected",
            )
        )

    known = {name.lower() for name in module.attributes}

    for rule in module.attributes.values():
        issues.extend(_validate_conditions(module, rule.name, rule.conditions, known))
        if rule.aggregation is None:
            continue
        aggregation = rule.aggregation
        for group_attribute in aggregation.group_by:
            lowered = group_attribute.lower()
            if lowered in known and not module.attributes[lowered].allow:
                issues.append(
                    PolicyIssue(
                        module_id=module.module_id,
                        attribute=rule.name,
                        severity="error",
                        message=(
                            f"aggregation groups by denied attribute '{group_attribute}'"
                        ),
                    )
                )
            if lowered not in known and not module.default_allow:
                issues.append(
                    PolicyIssue(
                        module_id=module.module_id,
                        attribute=rule.name,
                        severity="warning",
                        message=(
                            f"aggregation groups by attribute '{group_attribute}' "
                            "that has no policy rule"
                        ),
                    )
                )
        if aggregation.having is not None:
            issues.extend(
                _validate_conditions(module, rule.name, [aggregation.having], known,
                                     context="HAVING condition")
            )
        if not rule.allow:
            issues.append(
                PolicyIssue(
                    module_id=module.module_id,
                    attribute=rule.name,
                    severity="warning",
                    message="aggregation specified for a denied attribute is ignored",
                )
            )

    interval = module.stream_settings.query_interval_seconds
    if interval is not None and interval < 0:
        issues.append(
            PolicyIssue(
                module_id=module.module_id,
                attribute=None,
                severity="error",
                message="query interval must be non-negative",
            )
        )
    window = module.stream_settings.max_aggregation_window_seconds
    if window is not None and window <= 0:
        issues.append(
            PolicyIssue(
                module_id=module.module_id,
                attribute=None,
                severity="error",
                message="maximum aggregation window must be positive",
            )
        )
    return issues


def _validate_conditions(
    module: ModulePolicy,
    attribute: str,
    conditions: List[str],
    known_attributes: set,
    context: str = "condition",
) -> List[PolicyIssue]:
    issues: List[PolicyIssue] = []
    for condition in conditions:
        try:
            expression = parse_expression(condition)
        except SqlError as exc:
            issues.append(
                PolicyIssue(
                    module_id=module.module_id,
                    attribute=attribute,
                    severity="error",
                    message=f"{context} does not parse: {condition!r} ({exc})",
                )
            )
            continue
        for referenced in collect_column_names(expression):
            if referenced not in known_attributes and not module.default_allow:
                issues.append(
                    PolicyIssue(
                        module_id=module.module_id,
                        attribute=attribute,
                        severity="warning",
                        message=(
                            f"{context} references attribute '{referenced}' "
                            "that has no policy rule"
                        ),
                    )
                )
            elif referenced in known_attributes and not module.attributes[referenced].allow:
                issues.append(
                    PolicyIssue(
                        module_id=module.module_id,
                        attribute=attribute,
                        severity="error",
                        message=f"{context} references denied attribute '{referenced}'",
                    )
                )
    return issues
