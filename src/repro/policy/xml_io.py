"""XML serialisation of privacy policies.

The format mirrors Figure 4 of the paper:

.. code-block:: xml

    <policy owner="user">
      <module module_ID="ActionFilter">
        <queryInterval>60</queryInterval>
        <attributeList>
          <attribute name="x">
            <allow>true</allow>
            <condition><atomicCondition>x&gt;y</atomicCondition></condition>
          </attribute>
          <attribute name="z">
            <allow>true</allow>
            <condition><atomicCondition>z&lt;2</atomicCondition></condition>
            <aggregation>
              <aggregationType>AVG</aggregationType>
              <groupBy>x, y</groupBy>
              <having>SUM(z)&gt;100</having>
            </aggregation>
          </attribute>
        </attributeList>
      </module>
    </policy>

A document whose root element is ``<module>`` (exactly the fragment printed in
the paper) is accepted as well and yields a policy with that single module.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import List, Optional

from repro.policy.model import (
    AggregationRule,
    AttributeRule,
    ModulePolicy,
    PolicyError,
    PrivacyPolicy,
    StreamSettings,
)


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def parse_policy_xml(text: str) -> PrivacyPolicy:
    """Parse a policy document (or a single ``<module>`` fragment)."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise PolicyError(f"Malformed policy XML: {exc}") from exc

    if root.tag == "module":
        policy = PrivacyPolicy(owner="user")
        policy.add_module(_parse_module(root))
        return policy
    if root.tag != "policy":
        raise PolicyError(f"Unexpected root element: <{root.tag}>")

    policy = PrivacyPolicy(owner=root.get("owner", "user"))
    for module_element in root.findall("module"):
        policy.add_module(_parse_module(module_element))
    return policy


def _parse_module(element: ElementTree.Element) -> ModulePolicy:
    module_id = element.get("module_ID") or element.get("module_id")
    if not module_id:
        raise PolicyError("<module> requires a module_ID attribute")

    module = ModulePolicy(module_id=module_id)
    module.default_allow = _parse_bool(element.findtext("defaultAllow"), default=False)

    module.stream_settings = StreamSettings(
        query_interval_seconds=_parse_float(element.findtext("queryInterval")),
        max_aggregation_window_seconds=_parse_float(element.findtext("maxAggregationWindow")),
        allowed_aggregation_levels=_parse_levels(element.findtext("aggregationLevels")),
    )

    for substitution in element.findall("relationSubstitution"):
        source = substitution.get("from")
        target = substitution.get("to")
        if not source or not target:
            raise PolicyError("<relationSubstitution> requires from and to attributes")
        module.relation_substitutions[source.lower()] = target

    attribute_list = element.find("attributeList")
    if attribute_list is not None:
        for attribute_element in attribute_list.findall("attribute"):
            module.add_rule(_parse_attribute(attribute_element))
    return module


def _parse_attribute(element: ElementTree.Element) -> AttributeRule:
    name = element.get("name")
    if not name:
        raise PolicyError("<attribute> requires a name attribute")
    allow = _parse_bool(element.findtext("allow"), default=True)

    conditions: List[str] = []
    for condition_element in element.findall("condition"):
        for atomic in condition_element.findall("atomicCondition"):
            if atomic.text and atomic.text.strip():
                conditions.append(atomic.text.strip())

    aggregation: Optional[AggregationRule] = None
    aggregation_element = element.find("aggregation")
    if aggregation_element is not None:
        aggregation_type = (aggregation_element.findtext("aggregationType") or "").strip()
        if not aggregation_type:
            raise PolicyError(f"Attribute {name}: <aggregation> requires an aggregationType")
        group_by_text = aggregation_element.findtext("groupBy") or ""
        having_text = aggregation_element.findtext("having")
        aggregation = AggregationRule(
            aggregation_type=aggregation_type,
            group_by=[part.strip() for part in group_by_text.split(",") if part.strip()],
            having=having_text.strip() if having_text else None,
        )

    max_precision = element.findtext("maxPrecision")
    return AttributeRule(
        name=name,
        allow=allow,
        conditions=conditions,
        aggregation=aggregation,
        max_precision=int(max_precision) if max_precision else None,
    )


def _parse_bool(text: Optional[str], default: bool) -> bool:
    if text is None:
        return default
    return text.strip().lower() in {"true", "1", "yes"}


def _parse_float(text: Optional[str]) -> Optional[float]:
    if text is None or not text.strip():
        return None
    return float(text.strip())


def _parse_levels(text: Optional[str]) -> List[str]:
    if not text or not text.strip():
        return ["window"]
    return [part.strip() for part in text.split(",") if part.strip()]


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------


def policy_to_xml(policy: PrivacyPolicy, pretty: bool = True) -> str:
    """Serialise ``policy`` back into the XML dialect above."""
    root = ElementTree.Element("policy", attrib={"owner": policy.owner})
    for module in policy.modules.values():
        root.append(_module_to_element(module))
    if pretty:
        ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode")


def _module_to_element(module: ModulePolicy) -> ElementTree.Element:
    element = ElementTree.Element("module", attrib={"module_ID": module.module_id})
    if module.default_allow:
        ElementTree.SubElement(element, "defaultAllow").text = "true"

    settings = module.stream_settings
    if settings.query_interval_seconds is not None:
        ElementTree.SubElement(element, "queryInterval").text = _format_number(
            settings.query_interval_seconds
        )
    if settings.max_aggregation_window_seconds is not None:
        ElementTree.SubElement(element, "maxAggregationWindow").text = _format_number(
            settings.max_aggregation_window_seconds
        )
    if settings.allowed_aggregation_levels != ["window"]:
        ElementTree.SubElement(element, "aggregationLevels").text = ", ".join(
            settings.allowed_aggregation_levels
        )

    for source, target in module.relation_substitutions.items():
        ElementTree.SubElement(
            element, "relationSubstitution", attrib={"from": source, "to": target}
        )

    attribute_list = ElementTree.SubElement(element, "attributeList")
    for rule in module.attributes.values():
        attribute_list.append(_attribute_to_element(rule))
    return element


def _attribute_to_element(rule: AttributeRule) -> ElementTree.Element:
    element = ElementTree.Element("attribute", attrib={"name": rule.name})
    ElementTree.SubElement(element, "allow").text = "true" if rule.allow else "false"
    for condition in rule.conditions:
        condition_element = ElementTree.SubElement(element, "condition")
        ElementTree.SubElement(condition_element, "atomicCondition").text = condition
    if rule.aggregation is not None:
        aggregation_element = ElementTree.SubElement(element, "aggregation")
        ElementTree.SubElement(aggregation_element, "aggregationType").text = (
            rule.aggregation.aggregation_type
        )
        if rule.aggregation.group_by:
            ElementTree.SubElement(aggregation_element, "groupBy").text = ", ".join(
                rule.aggregation.group_by
            )
        if rule.aggregation.having:
            ElementTree.SubElement(aggregation_element, "having").text = rule.aggregation.having
    if rule.max_precision is not None:
        ElementTree.SubElement(element, "maxPrecision").text = str(rule.max_precision)
    return element


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return str(value)
