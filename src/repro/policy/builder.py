"""Fluent construction of privacy policies.

Example — the policy of Figure 4 built programmatically::

    policy = (
        PolicyBuilder(owner="resident")
        .module("ActionFilter")
        .allow("x", condition="x > y")
        .allow("y")
        .allow("z", condition="z < 2",
               aggregation="AVG", group_by=["x", "y"], having="SUM(z) > 100")
        .allow("t")
        .build()
    )
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.policy.model import (
    AggregationRule,
    AttributeRule,
    ModulePolicy,
    PolicyError,
    PrivacyPolicy,
    StreamSettings,
)


class PolicyBuilder:
    """Builds a :class:`~repro.policy.model.PrivacyPolicy` step by step."""

    def __init__(self, owner: str = "user") -> None:
        self._policy = PrivacyPolicy(owner=owner)
        self._current: Optional[ModulePolicy] = None

    # ------------------------------------------------------------------
    # module handling
    # ------------------------------------------------------------------
    def module(self, module_id: str, default_allow: bool = False) -> "PolicyBuilder":
        """Start (or switch to) the policy of ``module_id``."""
        if self._policy.has_module(module_id):
            self._current = self._policy.module(module_id)
        else:
            self._current = ModulePolicy(module_id=module_id, default_allow=default_allow)
            self._policy.add_module(self._current)
        return self

    def _require_module(self) -> ModulePolicy:
        if self._current is None:
            raise PolicyError("Call .module(<id>) before adding attribute rules")
        return self._current

    # ------------------------------------------------------------------
    # attribute rules
    # ------------------------------------------------------------------
    def allow(
        self,
        attribute: str,
        condition: Union[str, Sequence[str], None] = None,
        aggregation: Optional[str] = None,
        group_by: Optional[Sequence[str]] = None,
        having: Optional[str] = None,
        max_precision: Optional[int] = None,
    ) -> "PolicyBuilder":
        """Allow ``attribute``, optionally with conditions and an aggregation."""
        module = self._require_module()
        conditions = _normalize_conditions(condition)
        aggregation_rule = None
        if aggregation is not None:
            aggregation_rule = AggregationRule(
                aggregation_type=aggregation,
                group_by=list(group_by or []),
                having=having,
            )
        elif group_by or having:
            raise PolicyError("group_by/having require an aggregation type")
        module.add_rule(
            AttributeRule(
                name=attribute,
                allow=True,
                conditions=conditions,
                aggregation=aggregation_rule,
                max_precision=max_precision,
            )
        )
        return self

    def deny(self, attribute: str) -> "PolicyBuilder":
        """Deny ``attribute`` entirely for the current module."""
        module = self._require_module()
        module.add_rule(AttributeRule(name=attribute, allow=False))
        return self

    # ------------------------------------------------------------------
    # module-level settings
    # ------------------------------------------------------------------
    def substitute_relation(self, source: str, target: str) -> "PolicyBuilder":
        """Replace queries against ``source`` with ``target`` in FROM clauses."""
        module = self._require_module()
        module.relation_substitutions[source.lower()] = target
        return self

    def query_interval(self, seconds: float) -> "PolicyBuilder":
        """Set the minimum time between queries by the current module."""
        module = self._require_module()
        module.stream_settings.query_interval_seconds = seconds
        return self

    def max_aggregation_window(self, seconds: float) -> "PolicyBuilder":
        """Set the largest stream window the module may aggregate over."""
        module = self._require_module()
        module.stream_settings.max_aggregation_window_seconds = seconds
        return self

    def aggregation_levels(self, levels: Sequence[str]) -> "PolicyBuilder":
        """Set the allowed aggregation granularities for streams."""
        module = self._require_module()
        module.stream_settings.allowed_aggregation_levels = list(levels)
        return self

    def default_allow(self, value: bool = True) -> "PolicyBuilder":
        """Set the decision for attributes without an explicit rule."""
        module = self._require_module()
        module.default_allow = value
        return self

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    def build(self) -> PrivacyPolicy:
        """Return the constructed policy."""
        if not self._policy.modules:
            raise PolicyError("Policy contains no module")
        return self._policy


def _normalize_conditions(condition: Union[str, Sequence[str], None]) -> List[str]:
    if condition is None:
        return []
    if isinstance(condition, str):
        return [condition]
    return list(condition)
