"""Dataclass model of the privacy policy language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.sql.render import render_expression


class PolicyError(Exception):
    """Raised for malformed or inconsistent policies."""


@dataclass
class AggregationRule:
    """A mandatory aggregation for an attribute.

    Mirrors the ``<aggregation>`` element of Figure 4: the attribute may only
    appear inside the given aggregate function, grouped by ``group_by`` and
    guarded by the ``having`` condition (which ensures a minimum group size /
    mass so single readings cannot be reconstructed).
    """

    aggregation_type: str
    group_by: List[str] = field(default_factory=list)
    having: Optional[str] = None

    def __post_init__(self) -> None:
        self.aggregation_type = self.aggregation_type.upper()
        if not ast.is_aggregate_function(self.aggregation_type):
            raise PolicyError(
                f"Unknown aggregation type in policy: {self.aggregation_type}"
            )
        self.group_by = [name.strip() for name in self.group_by if name.strip()]
        if self.having is not None:
            self.having = self.having.strip() or None

    def having_expression(self) -> Optional[ast.Expression]:
        """Parse the HAVING condition into an expression AST."""
        if self.having is None:
            return None
        return parse_expression(self.having)

    def alias_for(self, attribute: str) -> str:
        """The output name the rewriter gives the aggregated attribute.

        The paper renames ``z`` to ``zAVG`` when the policy forces an AVG
        aggregation; we follow the same ``<attribute><TYPE>`` convention.
        """
        return f"{attribute}{self.aggregation_type}"


@dataclass
class AttributeRule:
    """Policy entry for one attribute of one module."""

    name: str
    allow: bool = True
    conditions: List[str] = field(default_factory=list)
    aggregation: Optional[AggregationRule] = None
    #: Optional coarsening precision (number of decimals kept); ``None`` keeps
    #: full precision.  Used by the postprocessor's value generalization.
    max_precision: Optional[int] = None

    def __post_init__(self) -> None:
        self.name = self.name.strip()
        if not self.name:
            raise PolicyError("Attribute rule requires a name")
        self.conditions = [c.strip() for c in self.conditions if c and c.strip()]

    def condition_expressions(self) -> List[ast.Expression]:
        """Parse every condition into an expression AST."""
        return [parse_expression(condition) for condition in self.conditions]

    @property
    def requires_aggregation(self) -> bool:
        """True when the attribute may only leave in aggregated form."""
        return self.allow and self.aggregation is not None


@dataclass
class StreamSettings:
    """Stream-level settings the policy adds on top of P3P.

    Attributes:
        query_interval_seconds: Minimum time between consecutive queries by
            the same module (``None`` means unrestricted).
        max_aggregation_window_seconds: Largest window a stream aggregate may
            cover.
        allowed_aggregation_levels: Aggregation granularities the user allows
            (e.g. ``["raw", "window", "session"]``); the most permissive level
            is listed first.
    """

    query_interval_seconds: Optional[float] = None
    max_aggregation_window_seconds: Optional[float] = None
    allowed_aggregation_levels: List[str] = field(default_factory=lambda: ["window"])


@dataclass
class ModulePolicy:
    """The policy one module (data consumer) is subject to."""

    module_id: str
    attributes: Dict[str, AttributeRule] = field(default_factory=dict)
    stream_settings: StreamSettings = field(default_factory=StreamSettings)
    #: Relations the module may query; empty means "no restriction".  When a
    #: disallowed relation is queried the rewriter substitutes the replacement
    #: ("If one sensor releases too much information, another sensor is
    #: queried by changing the relation in the FROM clause").
    relation_substitutions: Dict[str, str] = field(default_factory=dict)
    #: Default decision for attributes that have no explicit rule.
    default_allow: bool = False

    def __post_init__(self) -> None:
        normalized: Dict[str, AttributeRule] = {}
        for key, rule in self.attributes.items():
            normalized[key.lower()] = rule
        self.attributes = normalized

    # ------------------------------------------------------------------
    # rule lookup
    # ------------------------------------------------------------------
    def rule_for(self, attribute: str) -> Optional[AttributeRule]:
        """Return the rule for ``attribute`` (case-insensitive) or ``None``."""
        return self.attributes.get(attribute.lower())

    def is_allowed(self, attribute: str) -> bool:
        """May the module see the attribute at all (possibly aggregated)?"""
        rule = self.rule_for(attribute)
        if rule is None:
            return self.default_allow
        return rule.allow

    def add_rule(self, rule: AttributeRule) -> None:
        """Insert (or replace) an attribute rule."""
        self.attributes[rule.name.lower()] = rule

    @property
    def allowed_attributes(self) -> List[str]:
        """Names of all explicitly allowed attributes."""
        return [rule.name for rule in self.attributes.values() if rule.allow]

    @property
    def denied_attributes(self) -> List[str]:
        """Names of all explicitly denied attributes."""
        return [rule.name for rule in self.attributes.values() if not rule.allow]

    def all_conditions(self) -> List[str]:
        """Every condition string of every allowed attribute."""
        conditions: List[str] = []
        for rule in self.attributes.values():
            if rule.allow:
                conditions.extend(rule.conditions)
        return conditions


@dataclass
class PrivacyPolicy:
    """A user's complete policy: one :class:`ModulePolicy` per module."""

    owner: str = "user"
    modules: Dict[str, ModulePolicy] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.modules = {key.lower(): value for key, value in self.modules.items()}

    def module(self, module_id: str) -> ModulePolicy:
        """Return the policy for ``module_id``.

        Raises:
            PolicyError: when no policy exists for the module — the paper's
            processor refuses to answer queries from unknown modules.
        """
        policy = self.modules.get(module_id.lower())
        if policy is None:
            raise PolicyError(f"No policy defined for module: {module_id}")
        return policy

    def has_module(self, module_id: str) -> bool:
        """Return True when a policy exists for the module."""
        return module_id.lower() in self.modules

    def add_module(self, module_policy: ModulePolicy) -> None:
        """Insert (or replace) a module policy."""
        self.modules[module_policy.module_id.lower()] = module_policy

    @property
    def module_ids(self) -> List[str]:
        """All module identifiers with a policy."""
        return [policy.module_id for policy in self.modules.values()]


def describe_rule(rule: AttributeRule) -> str:
    """One-line human-readable description of a rule (used in reports)."""
    if not rule.allow:
        return f"{rule.name}: denied"
    parts = [f"{rule.name}: allowed"]
    if rule.conditions:
        parts.append("if " + " AND ".join(rule.conditions))
    if rule.aggregation is not None:
        aggregation = rule.aggregation
        text = f"only as {aggregation.aggregation_type}"
        if aggregation.group_by:
            text += " grouped by " + ", ".join(aggregation.group_by)
        if aggregation.having:
            text += f" having {aggregation.having}"
        parts.append(text)
    return ", ".join(parts)
