"""Ready-made policies used by the examples, tests and benchmarks."""

from __future__ import annotations

from repro.policy.builder import PolicyBuilder
from repro.policy.model import PrivacyPolicy
from repro.policy.xml_io import parse_policy_xml

#: The exact policy of Figure 4 of the paper (ActionFilter module), as XML.
FIGURE4_POLICY_XML = """\
<module module_ID="ActionFilter">
  <attributeList>
    <attribute name="x">
      <allow>true</allow>
      <condition>
        <atomicCondition>x&gt;y</atomicCondition>
      </condition>
    </attribute>
    <attribute name="y">
      <allow>true</allow>
    </attribute>
    <attribute name="z">
      <allow>true</allow>
      <condition>
        <atomicCondition>z&lt;2</atomicCondition>
      </condition>
      <aggregation>
        <aggregationType>AVG</aggregationType>
        <groupBy>x, y</groupBy>
        <having>SUM(z)&gt;100</having>
      </aggregation>
    </attribute>
    <attribute name="t">
      <allow>true</allow>
    </attribute>
  </attributeList>
</module>
"""


def figure4_policy() -> PrivacyPolicy:
    """The policy of Figure 4, parsed from its XML representation.

    Two privacy claims are given: the x-value has to be greater than the
    y-value at any time; the z-value has to be less than 2 and may only appear
    as an AVG aggregation grouped by x and y with ``SUM(z) > 100`` per group.
    """
    return parse_policy_xml(FIGURE4_POLICY_XML)


def open_policy(module_id: str = "ActionFilter") -> PrivacyPolicy:
    """A policy that allows everything (the 'no privacy' baseline)."""
    return PolicyBuilder(owner="user").module(module_id, default_allow=True).build()


def restrictive_policy(module_id: str = "ActionFilter") -> PrivacyPolicy:
    """A policy for the running example that protects the identity columns.

    Compared to :func:`figure4_policy` it additionally denies ``person_id``
    and the ground-truth ``activity`` label and forbids querying the raw
    UbiSense table (substituting the coarser SensFloor readings), exercising
    the FROM-clause substitution rule of the preprocessor.
    """
    return (
        PolicyBuilder(owner="resident")
        .module(module_id)
        .deny("person_id")
        .deny("activity")
        .allow("x", condition="x > y")
        .allow("y")
        .allow(
            "z",
            condition="z < 2",
            aggregation="AVG",
            group_by=["x", "y"],
            having="SUM(z) > 100",
        )
        .allow("t")
        .allow("valid")
        .substitute_relation("ubisense", "sensfloor")
        .query_interval(60.0)
        .build()
    )
