"""A miniature parser for R call expressions.

The goal is not to parse arbitrary R but the call shapes the paper's analysis
scripts use::

    filterByClass(sqldf(
      SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t)
      FROM (SELECT x, y, z, t FROM d)
    ), action=''walk'', do.plot=F)

i.e. nested function calls with positional and named arguments, where an
argument may be a quoted string, an identifier/literal or — R-untypically but
used in the paper's listing — a raw SQL text.  Arguments are therefore kept as
*text spans*; nested calls are parsed recursively when they syntactically look
like ``name(...)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional


class RParseError(Exception):
    """Raised when a string cannot be parsed as an R call."""


_IDENTIFIER_RE = re.compile(r"^[A-Za-z.][A-Za-z0-9._]*$")
_CALL_START_RE = re.compile(r"^\s*([A-Za-z.][A-Za-z0-9._]*)\s*\(")


@dataclass
class RArgument:
    """One argument of an R call: optional name plus its raw text."""

    text: str
    name: Optional[str] = None
    call: Optional["RCall"] = None

    @property
    def is_call(self) -> bool:
        """True when the argument is itself a function call."""
        return self.call is not None


@dataclass
class RCall:
    """A parsed R function call."""

    function: str
    arguments: List[RArgument] = field(default_factory=list)
    source: str = ""

    def argument(self, name: str) -> Optional[RArgument]:
        """Return the named argument ``name`` if present."""
        for argument in self.arguments:
            if argument.name == name:
                return argument
        return None

    @property
    def positional(self) -> List[RArgument]:
        """The positional (unnamed) arguments in order."""
        return [argument for argument in self.arguments if argument.name is None]

    def find_calls(self, function: str) -> List["RCall"]:
        """Find all (transitively) nested calls to ``function``."""
        found: List[RCall] = []
        if self.function == function:
            found.append(self)
        for argument in self.arguments:
            if argument.call is not None:
                found.extend(argument.call.find_calls(function))
        return found

    def render(self) -> str:
        """Render the call back to R-ish text."""
        rendered_arguments = []
        for argument in self.arguments:
            text = argument.call.render() if argument.call is not None else argument.text
            if argument.name is not None:
                rendered_arguments.append(f"{argument.name}={text}")
            else:
                rendered_arguments.append(text)
        return f"{self.function}({', '.join(rendered_arguments)})"


def parse_r_call(text: str) -> RCall:
    """Parse ``text`` as a single R function call."""
    stripped = text.strip()
    match = _CALL_START_RE.match(stripped)
    if not match:
        raise RParseError(f"Not an R function call: {stripped[:60]!r}")
    function = match.group(1)
    open_index = match.end() - 1
    close_index = _matching_paren(stripped, open_index)
    inner = stripped[open_index + 1 : close_index]
    trailing = stripped[close_index + 1 :].strip()
    if trailing:
        raise RParseError(f"Unexpected trailing text after call: {trailing[:40]!r}")
    arguments = [_parse_argument(chunk) for chunk in _split_arguments(inner)]
    return RCall(function=function, arguments=arguments, source=stripped)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _matching_paren(text: str, open_index: int) -> int:
    depth = 0
    in_string: Optional[str] = None
    index = open_index
    while index < len(text):
        char = text[index]
        if in_string is not None:
            if char == in_string:
                in_string = None
            index += 1
            continue
        if char in "'\"":
            in_string = char
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return index
        index += 1
    raise RParseError("Unbalanced parentheses in R call")


def _split_arguments(text: str) -> List[str]:
    """Split an argument list on top-level commas (strings/parens respected)."""
    chunks: List[str] = []
    depth = 0
    in_string: Optional[str] = None
    current: List[str] = []
    for char in text:
        if in_string is not None:
            current.append(char)
            if char == in_string:
                in_string = None
            continue
        if char in "'\"":
            in_string = char
            current.append(char)
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            chunks.append("".join(current))
            current = []
            continue
        current.append(char)
    if current and "".join(current).strip():
        chunks.append("".join(current))
    return [chunk.strip() for chunk in chunks if chunk.strip()]


_NAMED_ARGUMENT_RE = re.compile(
    r"^([A-Za-z.][A-Za-z0-9._]*)\s*=\s*(?![=])(.*)$", re.DOTALL
)


def _parse_argument(chunk: str) -> RArgument:
    name: Optional[str] = None
    body = chunk
    named = _NAMED_ARGUMENT_RE.match(chunk)
    # Avoid misreading SQL text such as "a = b" inside a raw SQL argument: a
    # named argument's value must not itself start a SELECT statement and the
    # chunk must not look like SQL (contain SELECT before the '=').
    if named and "select" not in named.group(1).lower():
        candidate_body = named.group(2).strip()
        if not candidate_body.upper().startswith("SELECT"):
            prefix = chunk[: named.start(2)]
            if "SELECT" not in prefix.upper():
                name = named.group(1)
                body = candidate_body
    call: Optional[RCall] = None
    if _CALL_START_RE.match(body) and not body.upper().startswith("SELECT"):
        try:
            call = parse_r_call(body)
        except RParseError:
            call = None
    return RArgument(text=body, name=name, call=call)
