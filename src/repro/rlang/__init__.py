"""Detection of "SQLable" patterns in R analysis code.

The paper's workloads are R machine-learning scripts whose data access happens
through an embedded SQL query (via ``sqldf``).  Recognising the *maximal*
SQL-able part of an arbitrary R program is undecidable in general, so — like
the paper ([Weu16]) — this subpackage detects the common pattern: an analysis
call (e.g. ``filterByClass``) wrapping a ``sqldf(<SQL>)`` data source.

* :mod:`repro.rlang.parser` — a miniature parser for R call expressions,
* :mod:`repro.rlang.sqlable` — extraction of the embedded SQL and construction
  of the residual R call that the cloud executes over ``d'``.
"""

from repro.rlang.parser import RArgument, RCall, RParseError, parse_r_call
from repro.rlang.sqlable import (
    RQueryExtraction,
    SqlablePatternError,
    extract_sql_from_r,
    find_sqldf_calls,
)

__all__ = [
    "RArgument",
    "RCall",
    "RParseError",
    "parse_r_call",
    "RQueryExtraction",
    "SqlablePatternError",
    "extract_sql_from_r",
    "find_sqldf_calls",
]
