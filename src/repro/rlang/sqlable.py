"""Extraction of the embedded SQL ("SQLable pattern") from R analysis code.

``extract_sql_from_r`` finds the ``sqldf(...)`` data source inside an analysis
call, parses the embedded SQL with :mod:`repro.sql` and returns both the query
and a *residual call*: the surrounding R expression with the ``sqldf`` source
replaced by a reference to the pushed-down result ``d'`` — exactly the
transformation of Section 4.2::

    filterByClass(sqldf(SELECT ...), action=''walk'', do.plot=F)
        →  SQL part:      SELECT ...
        →  residual call: filterByClass(d', action=''walk'', do.plot=F)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.rlang.parser import RParseError, parse_r_call
from repro.sql import ast
from repro.sql.errors import SqlError
from repro.sql.parser import parse


class SqlablePatternError(Exception):
    """Raised when no extractable SQL pattern is found in the R code."""


_SQLDF_RE = re.compile(r"\bsqldf\s*\(", re.IGNORECASE)


@dataclass
class RQueryExtraction:
    """The result of extracting the SQL island from an R script."""

    original_code: str
    sql: str
    query: ast.Query
    #: The R code with the sqldf(...) call replaced by the placeholder.
    residual_template: str
    #: Name of the wrapping analysis function (e.g. ``filterByClass``).
    wrapper_function: Optional[str] = None
    #: Remaining (non-data) arguments of the wrapper, rendered as text.
    wrapper_arguments: List[str] = field(default_factory=list)

    def residual_call(self, result_name: str = "d_prime") -> str:
        """Return the residual R call over the pushed-down result."""
        return self.residual_template.replace("{RESULT}", result_name)


def find_sqldf_calls(r_code: str) -> List[Tuple[int, int, str]]:
    """Find every ``sqldf(...)`` occurrence.

    Returns tuples ``(start, end, inner_text)`` where ``start``/``end`` span
    the whole call (inclusive of the closing parenthesis) and ``inner_text``
    is the raw argument text.
    """
    results: List[Tuple[int, int, str]] = []
    for match in _SQLDF_RE.finditer(r_code):
        open_index = match.end() - 1
        close_index = _matching_paren(r_code, open_index)
        inner = r_code[open_index + 1 : close_index]
        results.append((match.start(), close_index + 1, inner))
    return results


def extract_sql_from_r(r_code: str) -> RQueryExtraction:
    """Extract the (first) embedded SQL query from ``r_code``.

    Raises:
        SqlablePatternError: when no ``sqldf`` call is present or the embedded
            text does not parse as SQL.
    """
    normalized = r_code.strip()
    calls = find_sqldf_calls(normalized)
    if not calls:
        raise SqlablePatternError("No sqldf(...) call found in the R code")
    start, end, inner = calls[0]

    sql_text = _strip_quotes(inner.strip())
    try:
        query = parse(sql_text)
    except SqlError as exc:
        raise SqlablePatternError(f"Embedded text is not parseable SQL: {exc}") from exc

    residual_template = normalized[:start] + "{RESULT}" + normalized[end:]
    residual_template = _collapse_whitespace(residual_template)

    wrapper_function: Optional[str] = None
    wrapper_arguments: List[str] = []
    try:
        wrapper = parse_r_call(_collapse_whitespace(normalized))
        wrapper_function = wrapper.function
        for argument in wrapper.arguments:
            if argument.call is not None and argument.call.function.lower() == "sqldf":
                continue
            if "sqldf" in argument.text.lower():
                continue
            rendered = argument.text if argument.name is None else f"{argument.name}={argument.text}"
            wrapper_arguments.append(rendered)
    except RParseError:
        # The surrounding code is not a single call (e.g. an assignment or a
        # multi-statement script); the extraction still works, only the
        # wrapper metadata stays empty.
        pass

    return RQueryExtraction(
        original_code=r_code,
        sql=_collapse_whitespace(sql_text),
        query=query,
        residual_template=residual_template,
        wrapper_function=wrapper_function,
        wrapper_arguments=wrapper_arguments,
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _matching_paren(text: str, open_index: int) -> int:
    depth = 0
    in_string: Optional[str] = None
    index = open_index
    while index < len(text):
        char = text[index]
        if in_string is not None:
            if char == in_string:
                in_string = None
            index += 1
            continue
        if char in "'\"":
            in_string = char
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return index
        index += 1
    raise SqlablePatternError("Unbalanced parentheses around sqldf(...)")


def _strip_quotes(text: str) -> str:
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    return text


def _collapse_whitespace(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()
