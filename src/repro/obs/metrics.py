"""Process-wide metrics registry: counters, gauges, histograms, probes.

Design constraints (ISSUE 7):

* **Cheap.**  The registry is lock-striped — metric lookup/creation takes a
  short-lived creation lock, but each metric object carries one of a small
  pool of stripe locks, so unrelated metrics never contend.  For the truly
  hot paths (per-row LIKE evaluation, per-query plan-cache lookups) even a
  striped lock is too much: those sites keep plain module-local integers and
  register a pull-based **probe** here instead, which ``snapshot()`` invokes
  at read time.  Plain ``int`` increments are atomic enough under the GIL to
  be advisory-exact, and exactly correct single-threaded.
* **Stdlib only.**  Anything in the stack (``sql``, ``engine``, ``runtime``,
  ``processor``) may import this module without creating a cycle.
* **Resettable.**  Benchmarks and tests take before/after snapshots via
  :meth:`MetricsRegistry.snapshot` and diff them with :func:`delta`; global
  state never needs to be zeroed between measurements (but ``reset()``
  exists for test hygiene).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "delta",
    "registry",
]

_N_STRIPES = 16


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Point-in-time value that can move both ways (e.g. busy slots)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Running count/total/min/max over observed samples.

    Full sample retention is deliberately avoided — a histogram that is fed
    from the scheduler's per-task path must stay O(1) in memory.
    """

    __slots__ = ("name", "_lock", "count", "total", "min", "max")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "mean": self.mean,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
            }

    def _reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


Metric = Union[Counter, Gauge, Histogram]
ProbeFn = Callable[[], Union[float, int, Dict[str, Union[float, int]]]]


class MetricsRegistry:
    """Named metrics plus pull-based probes, shared process-wide."""

    def __init__(self, stripes: int = _N_STRIPES):
        self._creation_lock = threading.Lock()
        self._stripes: List[threading.Lock] = [threading.Lock() for _ in range(stripes)]
        self._metrics: Dict[str, Metric] = {}
        self._probes: Dict[str, ProbeFn] = {}

    def _stripe(self, name: str) -> threading.Lock:
        return self._stripes[hash(name) % len(self._stripes)]

    def _get_or_create(self, name: str, cls: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._creation_lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, self._stripe(name))
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    def probe(self, name: str, fn: ProbeFn) -> None:
        """Register (or replace) a pull-based readout.

        ``fn`` returns either a scalar or a flat dict; dict results are
        flattened into ``name.key`` entries in :meth:`snapshot`.
        """
        with self._creation_lock:
            self._probes[name] = fn

    def value(self, name: str) -> Any:
        """Current value of a metric or probe (None if unknown)."""
        metric = self._metrics.get(name)
        if metric is not None:
            if isinstance(metric, Histogram):
                return metric.summary()
            return metric.value
        fn = self._probes.get(name)
        if fn is not None:
            return fn()
        return None

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """Flat name -> value view over every metric and probe.

        Probes returning dicts are flattened as ``probe_name.key``.  The
        result is a plain dict safe to diff with :func:`delta` or dump to
        JSON.
        """
        out: Dict[str, Any] = {}
        with self._creation_lock:
            metrics = list(self._metrics.values())
            probes = list(self._probes.items())
        for metric in metrics:
            if prefix and not metric.name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                for key, value in metric.summary().items():
                    out[f"{metric.name}.{key}"] = value
            else:
                out[metric.name] = metric.value
        for name, fn in probes:
            if prefix and not name.startswith(prefix):
                continue
            result = fn()
            if isinstance(result, dict):
                for key, value in result.items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = result
        return out

    def reset(self) -> None:
        """Zero every registered metric (probes are left untouched)."""
        with self._creation_lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()


def delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Numeric difference of two snapshots (keys only in ``after`` kept)."""
    out: Dict[str, Any] = {}
    for key, value in after.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = value - before.get(key, 0)
        else:
            out[key] = value
    return out


#: The process-wide registry every subsystem instruments against.
registry = MetricsRegistry()
