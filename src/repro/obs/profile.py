"""EXPLAIN-ANALYZE-style profile reports and cost-model calibration.

:class:`CalibrationLog` accumulates (predicted, observed) task-cost pairs by
task kind — the training data the ROADMAP's cost-based-optimizer direction
needs.  :func:`build_profile_report` turns a finished
:class:`~repro.obs.trace.QueryTrace` into a per-task tree annotated with
observed vs predicted time, rows in/out, and bytes per hop, plus the
engine's scan-path counters for the run (fast-path hits and bail reasons).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import QueryTrace, Span

__all__ = [
    "CalibrationLog",
    "CalibrationReport",
    "KindCalibration",
    "ProfileReport",
    "build_profile_report",
]


class CalibrationLog:
    """Thread-safe accumulator of predicted-vs-observed task costs."""

    def __init__(self):
        self._lock = threading.Lock()
        self._samples: List[Dict[str, Any]] = []

    def observe(self, kind: str, predicted: float, observed: float, rows: int = 0) -> None:
        with self._lock:
            self._samples.append(
                {"kind": kind, "predicted": predicted, "observed": observed, "rows": rows}
            )

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def report(self) -> "CalibrationReport":
        by_kind: Dict[str, List[Dict[str, Any]]] = {}
        for sample in self.samples():
            by_kind.setdefault(sample["kind"], []).append(sample)
        kinds = []
        for kind in sorted(by_kind):
            samples = by_kind[kind]
            count = len(samples)
            predicted = sum(s["predicted"] for s in samples)
            observed = sum(s["observed"] for s in samples)
            abs_error = sum(abs(s["observed"] - s["predicted"]) for s in samples)
            # Relative error is per-sample against observed time; samples too
            # fast to measure meaningfully are skipped rather than letting a
            # division by ~0 dominate the mean.
            rel_errors = [
                abs(s["observed"] - s["predicted"]) / s["observed"]
                for s in samples
                if s["observed"] > 1e-9
            ]
            kinds.append(
                KindCalibration(
                    kind=kind,
                    count=count,
                    predicted_seconds=predicted,
                    observed_seconds=observed,
                    mean_abs_error_seconds=abs_error / count,
                    mean_rel_error=(
                        sum(rel_errors) / len(rel_errors) if rel_errors else 0.0
                    ),
                    rows=sum(s["rows"] for s in samples),
                )
            )
        return CalibrationReport(kinds=kinds)


@dataclass
class KindCalibration:
    """Aggregate prediction error for one task kind."""

    kind: str
    count: int
    predicted_seconds: float
    observed_seconds: float
    mean_abs_error_seconds: float
    mean_rel_error: float
    rows: int


@dataclass
class CalibrationReport:
    """Per-task-kind summary of cost-model prediction error."""

    kinds: List[KindCalibration] = field(default_factory=list)

    @property
    def sample_count(self) -> int:
        return sum(entry.count for entry in self.kinds)

    def by_kind(self) -> Dict[str, KindCalibration]:
        return {entry.kind: entry for entry in self.kinds}

    def render(self) -> str:
        if not self.kinds:
            return "calibration: no samples recorded"
        lines = [
            "cost-model calibration (predicted vs observed, by task kind)",
            f"{'kind':<14} {'n':>4} {'predicted':>11} {'observed':>11} "
            f"{'abs err':>10} {'rel err':>8}",
        ]
        for entry in self.kinds:
            if entry.kind.startswith("rows"):
                # Cardinality calibration: estimated vs observed row counts,
                # rendered as raw counts rather than milliseconds.
                lines.append(
                    f"{entry.kind:<14} {entry.count:>4} "
                    f"{entry.predicted_seconds:>9.0f}r "
                    f"{entry.observed_seconds:>9.0f}r "
                    f"{entry.mean_abs_error_seconds:>8.1f}r "
                    f"{entry.mean_rel_error * 100:>7.1f}%"
                )
                continue
            lines.append(
                f"{entry.kind:<14} {entry.count:>4} "
                f"{entry.predicted_seconds * 1e3:>9.2f}ms "
                f"{entry.observed_seconds * 1e3:>9.2f}ms "
                f"{entry.mean_abs_error_seconds * 1e3:>8.3f}ms "
                f"{entry.mean_rel_error * 100:>7.1f}%"
            )
        return "\n".join(lines)


@dataclass
class ProfileNode:
    """One task in the rendered profile tree (latest attempt wins)."""

    span: Span
    children: List["ProfileNode"] = field(default_factory=list)


@dataclass
class ProfileReport:
    """EXPLAIN ANALYZE output: task tree + scan-path + calibration."""

    query_id: str
    trace: QueryTrace
    roots: List[ProfileNode]
    trace_wall_seconds: float
    runtime_wall_seconds: float
    busy_seconds: float
    scan_paths: Dict[str, Any] = field(default_factory=dict)
    standing: Dict[str, Any] = field(default_factory=dict)
    calibration: Optional[CalibrationReport] = None

    def render(self) -> str:
        lines = [f"profile: {self.query_id or '(query)'}"]
        lines.append(
            f"wall {self.trace_wall_seconds * 1e3:.2f}ms"
            + (
                f" (runtime reports {self.runtime_wall_seconds * 1e3:.2f}ms)"
                if self.runtime_wall_seconds
                else ""
            )
            + f", busy {self.busy_seconds * 1e3:.2f}ms"
        )
        if not self.roots:
            lines.append("  (no task spans recorded)")
        for root in self.roots:
            self._render_node(root, lines, depth=0)
        if self.scan_paths:
            lines.append("scan paths:")
            for key in sorted(self.scan_paths):
                value = self.scan_paths[key]
                if value:
                    lines.append(f"  {key}: {value}")
        if self.standing:
            lines.append("standing queries:")
            for key in sorted(self.standing):
                value = self.standing[key]
                if value:
                    lines.append(f"  {key}: {value}")
        if self.calibration is not None:
            lines.append(self.calibration.render())
        return "\n".join(lines)

    def _render_node(self, node: ProfileNode, lines: List[str], depth: int) -> None:
        span = node.span
        indent = "  " * (depth + 1)
        parts = [f"{span.name} [{span.kind}]"]
        if span.node:
            parts.append(f"on {span.node}")
        parts.append(f"{span.duration * 1e3:.2f}ms")
        predicted = span.attrs.get("predicted_seconds")
        if predicted is not None:
            parts.append(f"(predicted {predicted * 1e3:.2f}ms)")
        queue_wait = span.attrs.get("queue_wait")
        if queue_wait is not None:
            parts.append(f"wait {queue_wait * 1e3:.2f}ms")
        rows_in = span.attrs.get("input_rows")
        rows_out = span.attrs.get("output_rows")
        if rows_in is not None or rows_out is not None:
            parts.append(f"rows {rows_in if rows_in is not None else '?'}"
                         f"->{rows_out if rows_out is not None else '?'}")
        estimated_rows = span.attrs.get("estimated_rows")
        if estimated_rows is not None:
            parts.append(f"(est. {estimated_rows} rows)")
        if span.attrs.get("attempt", 1) > 1:
            parts.append(f"attempt {span.attrs['attempt']}")
        if span.status not in (None, "ok"):
            parts.append(f"[{span.status}]")
        lines.append(indent + " ".join(parts))
        for event in span.events:
            if event.name == "transfer":
                attrs = event.attrs
                lines.append(
                    f"{indent}  ship {attrs.get('source')}->{attrs.get('target')} "
                    f"{attrs.get('rows')} rows, {attrs.get('bytes')} bytes"
                    + (" (leaves apartment)" if attrs.get("leaves_apartment") else "")
                )
            elif event.name in ("fault", "checkpoint_save", "checkpoint_restore"):
                detail = ", ".join(f"{k}={v}" for k, v in sorted(event.attrs.items()))
                lines.append(f"{indent}  {event.name}: {detail}")
        for child in node.children:
            self._render_node(child, lines, depth + 1)


def _latest_task_spans(spans: List[Span]) -> Dict[str, Span]:
    """Latest attempt of the latest epoch per task id (retries/replans)."""
    latest: Dict[str, Span] = {}
    for span in spans:
        task_id = span.attrs.get("task_id")
        if task_id is None:
            continue
        key = (span.attrs.get("epoch", 0), span.attrs.get("attempt", 1))
        current = latest.get(task_id)
        if current is None or key >= (
            current.attrs.get("epoch", 0),
            current.attrs.get("attempt", 1),
        ):
            latest[task_id] = span
    return latest


def build_profile_report(
    trace: QueryTrace,
    runtime_wall_seconds: float = 0.0,
    calibration: Optional[CalibrationLog] = None,
    metrics_before: Optional[Dict[str, Any]] = None,
    metrics_after: Optional[Dict[str, Any]] = None,
) -> ProfileReport:
    """Assemble the per-task tree from a finished trace.

    Tree shape comes from each task span's recorded ``deps`` — the DAG edge
    list — with the final task(s) as roots, so the rendering reads top-down
    from the query's result to its leaf scans.  Only the *latest* attempt of
    the latest replan epoch represents each task (earlier linked attempts
    remain in the trace itself).  Serial executions, which record plan-stage
    spans instead of DAG task spans, render as a flat stage list.
    """
    spans = trace.snapshot()
    task_spans = _latest_task_spans(spans)

    roots: List[ProfileNode] = []
    if task_spans:
        nodes = {task_id: ProfileNode(span) for task_id, span in task_spans.items()}
        # deps point upstream (task depends on dep), so the tree hangs each
        # dep under its consumer; tasks no one consumes are the roots.
        consumed = set()
        for task_id, node in sorted(nodes.items()):
            for dep in node.span.attrs.get("deps", ()):
                child = nodes.get(dep)
                if child is not None:
                    node.children.append(child)
                    consumed.add(dep)
        roots = [
            node
            for task_id, node in sorted(nodes.items())
            if task_id not in consumed
        ]
    else:
        # Serial path: render finished stage spans flat, in start order.
        stage_spans = [
            span
            for span in spans
            if span.kind in ("stage", "fragment") and span.finished
        ]
        stage_spans.sort(key=lambda span: span.start)
        roots = [ProfileNode(span) for span in stage_spans]

    # Wall time is taken from the run-level span (covers every epoch of a
    # replanned execution) falling back to the overall span extent.
    run_spans = [span for span in spans if span.kind == "dag_run" and span.finished]
    if run_spans:
        trace_wall = max(span.end for span in run_spans) - min(
            span.start for span in run_spans
        )
    else:
        trace_wall = trace.wall_seconds()

    scan_paths: Dict[str, Any] = {}
    standing: Dict[str, Any] = {}
    if metrics_before is not None and metrics_after is not None:
        for key, value in metrics_after.items():
            if key.startswith("standing."):
                # Standing-query maintenance this window: registrations,
                # refreshes, delta rows, groups re-finalized, shared-tree
                # subscriber counts (gauges report their current value).
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    continue
                if key.startswith(("standing.trees", "standing.subscribers",
                                   "standing.state_bytes")):
                    standing[key[len("standing.") :]] = value
                else:
                    diff = value - metrics_before.get(key, 0)
                    if diff:
                        standing[key[len("standing.") :]] = diff
                continue
            if not key.startswith(("engine.vectorized.", "engine.optimizer.")):
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            diff = value - metrics_before.get(key, 0)
            if not diff:
                continue
            if key.startswith("engine.optimizer."):
                # Cost-based plan decisions taken this run (conjunct
                # reorders, build-side flips, adaptive placement, ...).
                scan_paths[
                    "optimizer." + key[len("engine.optimizer.") :]
                ] = diff
                continue
            short = key.replace("engine.vectorized.", "")
            if short.startswith("bails."):
                # Per-reason bail counters (scan fallbacks plus backing
                # diagnostics like ``untyped_backing``) group under one
                # nested dict so the report names every reason this run hit.
                scan_paths.setdefault("bails", {})[short[len("bails.") :]] = diff
            else:
                scan_paths[short] = diff

    return ProfileReport(
        query_id=trace.query_id,
        trace=trace,
        roots=roots,
        trace_wall_seconds=trace_wall,
        runtime_wall_seconds=runtime_wall_seconds,
        busy_seconds=trace.busy_seconds("task"),
        scan_paths=scan_paths,
        standing=standing,
        calibration=calibration.report() if calibration is not None else None,
    )
