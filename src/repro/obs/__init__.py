"""Observability: structured tracing, process metrics and query profiling.

The runtime overlaps work across tree topologies, pushes partial aggregates
and recovers from injected failures — this package supplies the lenses into
all of it (PR 7):

``trace``
    :class:`~repro.obs.trace.QueryTrace` collects per-task
    :class:`~repro.obs.trace.Span` records (queue-wait vs execute time,
    rows, bytes, retries, checkpoints, replan epochs) thread-safely per
    query and exports them to Chrome ``trace_event`` JSON
    (:meth:`~repro.obs.trace.QueryTrace.to_chrome`).  Tracing is strictly
    opt-in (``ParadiseProcessor(profile=True)``) and near-zero-cost when
    off: every producer guards on ``trace is None``.

``metrics``
    A process-wide, lock-striped :class:`~repro.obs.metrics.MetricsRegistry`
    of counters/gauges/histograms plus pull-based *probes* for hot-path
    statistics (vectorized bail reasons, parse/LIKE/subquery cache hit
    rates) that are kept as plain integers where they are produced.

``profile``
    :func:`~repro.obs.profile.build_profile_report` renders an
    EXPLAIN-ANALYZE-style per-task tree (observed vs cost-model-predicted
    time, rows, bytes per hop), and :class:`~repro.obs.profile.CalibrationLog`
    accumulates predicted-vs-observed task costs for
    ``CostModel.calibration_report()``.

Import discipline: this package imports only the standard library, so any
layer of the stack (``sql``, ``engine``, ``runtime``, ``processor``,
benchmarks) may instrument itself without creating an import cycle.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, registry
from repro.obs.profile import (
    CalibrationLog,
    CalibrationReport,
    ProfileReport,
    build_profile_report,
)
from repro.obs.trace import (
    QueryTrace,
    Span,
    SpanEvent,
    activate,
    current_span,
    maybe_span,
)

__all__ = [
    "CalibrationLog",
    "CalibrationReport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileReport",
    "QueryTrace",
    "Span",
    "SpanEvent",
    "activate",
    "build_profile_report",
    "current_span",
    "maybe_span",
    "registry",
]
