"""Structured per-query tracing with Chrome ``trace_event`` export.

A :class:`QueryTrace` collects :class:`Span` records thread-safely for one
query execution.  Producers throughout the stack follow one rule that keeps
tracing near-zero-cost when disabled: *every* instrumentation site guards on
``trace is None`` (or uses :func:`maybe_span`, which does it for them), so a
non-profiled run pays only a handful of ``is None`` checks.

Ambient attribution: the scheduler activates the current task's span in a
thread-local (:func:`activate`) while the task executes, so deeper layers
(``NetworkSimulator.ship``, ``ExecutionContext.engine_call``) can attach
events and attributes to *whichever* span is running without any plumbing —
and without cross-query leakage, because attachment helpers verify
``span.trace is self`` before touching a span that might belong to another
session's query.

Timeline semantics: all timestamps are ``time.perf_counter()`` seconds
relative to the trace's ``_origin``, so spans from different threads share
one monotonic timeline and export cleanly to Chrome's ``about:tracing`` /
Perfetto JSON (microsecond ``ts``/``dur``, one synthetic tid per topology
node).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "QueryTrace",
    "Span",
    "SpanEvent",
    "activate",
    "current_span",
    "maybe_span",
]


class SpanEvent:
    """An instantaneous annotation inside a span (transfer, fault, ...)."""

    __slots__ = ("name", "at", "attrs")

    def __init__(self, name: str, at: float, attrs: Dict[str, Any]):
        self.name = name
        self.at = at
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanEvent({self.name!r}, at={self.at:.6f}, attrs={self.attrs!r})"


class Span:
    """One timed unit of work (a DAG task attempt, a plan stage, a run)."""

    __slots__ = (
        "trace",
        "span_id",
        "parent_id",
        "name",
        "kind",
        "node",
        "start",
        "end",
        "status",
        "attrs",
        "events",
    )

    def __init__(
        self,
        trace: "QueryTrace",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        node: str,
        start: float,
        attrs: Dict[str, Any],
    ):
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        #: "ok" | "retried" | "aborted"; None while the span is open.
        self.status: Optional[str] = None
        self.attrs = attrs
        self.events: List[SpanEvent] = []

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration * 1e3:.2f}ms" if self.finished else "open"
        return f"Span(#{self.span_id} {self.name!r} kind={self.kind} {state})"


# --- ambient current-span (thread-local) -----------------------------------

_ambient = threading.local()


def current_span() -> Optional[Span]:
    """The span activated on this thread, or None.

    This is the single hook deep layers use for ambient attribution; when
    tracing is off nothing ever activates a span, so this returns None at
    the cost of one thread-local attribute read.
    """
    return getattr(_ambient, "span", None)


@contextmanager
def activate(span: Optional[Span]) -> Iterator[Optional[Span]]:
    """Make ``span`` the thread's current span for the duration.

    ``activate(None)`` is a no-op context, so callers can activate
    unconditionally with whatever :func:`maybe_span` handed them.
    """
    if span is None:
        yield None
        return
    previous = getattr(_ambient, "span", None)
    _ambient.span = span
    try:
        yield span
    finally:
        _ambient.span = previous


class QueryTrace:
    """Thread-safe span collection for a single query execution."""

    def __init__(self, query_id: str = ""):
        self.query_id = query_id
        self._lock = threading.Lock()
        self._origin = time.perf_counter()
        self._ids = itertools.count(1)
        self.spans: List[Span] = []

    # --- recording ---------------------------------------------------------

    def now(self) -> float:
        """Seconds since this trace's origin (monotonic)."""
        return time.perf_counter() - self._origin

    def begin(
        self,
        name: str,
        kind: str = "task",
        node: str = "",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  Auto-parents under the thread's current span when
        that span belongs to *this* trace (never across sessions)."""
        if parent is None:
            ambient = current_span()
            if ambient is not None and ambient.trace is self:
                parent = ambient
        start = self.now()
        with self._lock:
            span = Span(
                self,
                next(self._ids),
                parent.span_id if parent is not None else None,
                name,
                kind,
                node,
                start,
                attrs,
            )
            self.spans.append(span)
        return span

    def finish(self, span: Span, status: str = "ok") -> Span:
        span.end = self.now()
        span.status = status
        return span

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "task",
        node: str = "",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open, activate, and finish a span around a block.

        The span finishes "aborted" if the block raises, "ok" otherwise
        (unless the block already finished it, e.g. as "retried").
        """
        opened = self.begin(name, kind=kind, node=node, parent=parent, **attrs)
        try:
            with activate(opened):
                yield opened
        except BaseException:
            if not opened.finished:
                self.finish(opened, status="aborted")
            raise
        else:
            if not opened.finished:
                self.finish(opened, status="ok")

    def add_event(self, span: Span, name: str, **attrs: Any) -> SpanEvent:
        event = SpanEvent(name, self.now(), attrs)
        with self._lock:
            span.events.append(event)
        return event

    # --- queries -----------------------------------------------------------

    def find(self, **attrs: Any) -> List[Span]:
        """Spans whose attrs (or name/kind/node/status) match every filter."""
        out = []
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            for key, wanted in attrs.items():
                if key in ("name", "kind", "node", "status"):
                    have = getattr(span, key)
                else:
                    have = span.attrs.get(key)
                if have != wanted:
                    break
            else:
                out.append(span)
        return out

    def by_kind(self, kind: str) -> List[Span]:
        return self.find(kind=kind)

    def roots(self) -> List[Span]:
        return [span for span in self.snapshot() if span.parent_id is None]

    def snapshot(self) -> List[Span]:
        with self._lock:
            return list(self.spans)

    def wall_seconds(self) -> float:
        """Span of the whole trace: earliest start to latest end."""
        spans = [span for span in self.snapshot() if span.finished]
        if not spans:
            return 0.0
        return max(span.end for span in spans) - min(span.start for span in spans)

    def busy_seconds(self, kind: str = "task") -> float:
        return sum(span.duration for span in self.by_kind(kind) if span.finished)

    # --- Chrome trace_event export -----------------------------------------

    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """Render spans as Chrome ``trace_event`` objects.

        One synthetic thread per topology node (named via ``M`` metadata
        events), complete ``X`` duration events for spans, instant ``i``
        events for span events.  Times are microseconds from the trace
        origin.  Unfinished spans (e.g. a hung task the scheduler abandoned)
        are exported with zero duration and ``"status": "unfinished"`` so
        they remain visible rather than silently dropped.
        """
        spans = self.snapshot()
        nodes = sorted({span.node or "(coordinator)" for span in spans})
        tids = {node: index + 1 for index, node in enumerate(nodes)}
        events: List[Dict[str, Any]] = []
        for node, tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": node},
                }
            )
        for span in spans:
            tid = tids[span.node or "(coordinator)"]
            args = {"span_id": span.span_id, "kind": span.kind}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args["status"] = span.status if span.status is not None else "unfinished"
            args.update(span.attrs)
            duration = span.duration if span.finished else 0.0
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.kind,
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(duration * 1e6, 3),
                    "args": args,
                }
            )
            for event in span.events:
                events.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": tid,
                        "name": event.name,
                        "cat": span.kind,
                        "ts": round(event.at * 1e6, 3),
                        "s": "t",
                        "args": dict(event.attrs),
                    }
                )
        return events

    def to_chrome(self, path: Any) -> None:
        """Write Chrome ``trace_event`` JSON; open in about:tracing/Perfetto."""
        payload = {
            "traceEvents": self.to_chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"query_id": self.query_id},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueryTrace({self.query_id!r}, spans={len(self.spans)})"


@contextmanager
def maybe_span(
    trace: Optional[QueryTrace],
    name: str,
    kind: str = "task",
    node: str = "",
    **attrs: Any,
) -> Iterator[Optional[Span]]:
    """``trace.span(...)`` when tracing is on; a free no-op when it's off."""
    if trace is None:
        yield None
        return
    with trace.span(name, kind=kind, node=node, **attrs) as span:
        yield span
