"""SQL frontend: lexer, parser, AST, renderer and analysis utilities.

This subpackage is the SQL substrate of the PArADISE reproduction.  The
original paper relies on ordinary SQL tooling (the queries of Section 4.2 are
SQL:2003 with window functions); since no SQL parsing library is available in
this environment, the subpackage implements the whole frontend from scratch:

* :mod:`repro.sql.lexer` — tokenizer for the SQL dialect used by the paper,
* :mod:`repro.sql.ast` — immutable-ish dataclass AST nodes,
* :mod:`repro.sql.parser` — recursive-descent parser producing the AST,
* :mod:`repro.sql.render` — canonical SQL text rendering,
* :mod:`repro.sql.visitor` — walkers and transformers used by the rewriter,
* :mod:`repro.sql.analysis` — query feature extraction (columns, tables,
  aggregates, window functions, nesting depth) consumed by the fragmenter.
"""

from repro.sql.errors import LexerError, ParseError, SqlError
from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import Parser, parse, parse_expression
from repro.sql.render import render, render_expression
from repro.sql.analysis import QueryFeatures, analyze_query
from repro.sql import ast

__all__ = [
    "SqlError",
    "LexerError",
    "ParseError",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "render",
    "render_expression",
    "QueryFeatures",
    "analyze_query",
    "ast",
]
