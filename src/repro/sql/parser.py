"""Recursive-descent parser producing the :mod:`repro.sql.ast` tree.

The grammar covers the SQL subset required by the paper and a reasonable
superset so that realistic analysis queries (joins, subqueries, set
operations, window functions, CASE, IN/BETWEEN/LIKE/EXISTS) parse without
surprises.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.sql import ast
from repro.sql.errors import ParseError
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_COMPARISON_OPERATORS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ADDITIVE_OPERATORS = {"+", "-", "||"}
_MULTIPLICATIVE_OPERATORS = {"*", "/", "%"}


class Parser:
    """Parse a token stream into an AST.

    The public entry points are :meth:`parse_query` (full SELECT statement,
    possibly with set operations) and :meth:`parse_expression_only` (a single
    scalar/boolean expression, used for policy conditions such as ``x > y``).
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens: List[Token] = tokenize(text)
        self._index = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def parse_query(self) -> ast.Query:
        """Parse a complete query and require that all input is consumed."""
        query = self._parse_set_expression()
        self._accept_punctuation(";")
        self._expect_eof()
        return query

    def parse_expression_only(self) -> ast.Expression:
        """Parse a standalone expression (used for policy conditions)."""
        expression = self._parse_expression()
        self._expect_eof()
        return expression

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        return ParseError(
            f"{message}; found {token.type.value} {token.value!r} "
            f"at line {token.line}, column {token.column}",
            token.position,
        )

    def _expect_keyword(self, *names: str) -> Token:
        if self._current.is_keyword(*names):
            return self._advance()
        raise self._error(f"Expected keyword {' or '.join(names)}")

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_punctuation(self, value: str) -> Token:
        if self._current.matches(TokenType.PUNCTUATION, value):
            return self._advance()
        raise self._error(f"Expected {value!r}")

    def _accept_punctuation(self, value: str) -> bool:
        if self._current.matches(TokenType.PUNCTUATION, value):
            self._advance()
            return True
        return False

    def _accept_operator(self, *values: str) -> Optional[str]:
        if self._current.type is TokenType.OPERATOR and self._current.value in values:
            return self._advance().value
        return None

    def _expect_identifier(self) -> str:
        if self._current.type is TokenType.IDENTIFIER:
            return self._advance().value
        # Allow non-reserved keywords in identifier position is deliberately
        # not supported: the dialect keeps the keyword list small instead.
        raise self._error("Expected identifier")

    def _expect_eof(self) -> None:
        if self._current.type is not TokenType.EOF:
            raise self._error("Unexpected trailing input")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _parse_set_expression(self) -> ast.Query:
        left: ast.Query = self._parse_select_or_parenthesised()
        while self._current.is_keyword("UNION", "INTERSECT", "EXCEPT"):
            operator = self._advance().value
            all_flag = self._accept_keyword("ALL")
            self._accept_keyword("DISTINCT")
            right = self._parse_select_or_parenthesised()
            left = ast.SetOperation(operator=operator, left=left, right=right, all=all_flag)
        return left

    def _parse_select_or_parenthesised(self) -> ast.Query:
        if self._current.matches(TokenType.PUNCTUATION, "("):
            # Lookahead: "( SELECT" starts a parenthesised query.
            if self._peek().is_keyword("SELECT"):
                self._advance()
                query = self._parse_set_expression()
                self._expect_punctuation(")")
                return query
        return self._parse_select()

    def _parse_select(self) -> ast.SelectQuery:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")

        items = [self._parse_select_item()]
        while self._accept_punctuation(","):
            items.append(self._parse_select_item())

        from_clause: Optional[ast.Relation] = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from_clause()

        where: Optional[ast.Expression] = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()

        group_by: List[ast.Expression] = []
        if self._current.is_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept_punctuation(","):
                group_by.append(self._parse_expression())

        having: Optional[ast.Expression] = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()

        order_by: List[ast.OrderItem] = []
        if self._current.is_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punctuation(","):
                order_by.append(self._parse_order_item())

        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_integer()
        if self._accept_keyword("OFFSET"):
            offset = self._parse_integer()

        return ast.SelectQuery(
            items=items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_integer(self) -> int:
        if self._current.type is TokenType.NUMBER:
            token = self._advance()
            try:
                return int(token.value)
            except ValueError as exc:
                raise ParseError(f"Expected integer, found {token.value!r}") from exc
        raise self._error("Expected integer literal")

    def _parse_select_item(self) -> ast.SelectItem:
        if self._current.type is TokenType.OPERATOR and self._current.value == "*":
            self._advance()
            return ast.SelectItem(expression=ast.Star())
        expression = self._parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("ASC"):
            ascending = True
        elif self._accept_keyword("DESC"):
            ascending = False
        nulls_first: Optional[bool] = None
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("FIRST"):
                nulls_first = True
            else:
                self._expect_keyword("LAST")
                nulls_first = False
        return ast.OrderItem(expression=expression, ascending=ascending, nulls_first=nulls_first)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _parse_from_clause(self) -> ast.Relation:
        relation = self._parse_joined_relation()
        while self._accept_punctuation(","):
            right = self._parse_joined_relation()
            relation = ast.Join(left=relation, right=right, join_type="CROSS")
        return relation

    def _parse_joined_relation(self) -> ast.Relation:
        relation = self._parse_relation_primary()
        while True:
            join_type = self._parse_join_type()
            if join_type is None:
                return relation
            right = self._parse_relation_primary()
            condition: Optional[ast.Expression] = None
            using: List[str] = []
            if join_type != "CROSS":
                if self._accept_keyword("ON"):
                    condition = self._parse_expression()
                elif self._accept_keyword("USING"):
                    self._expect_punctuation("(")
                    using.append(self._expect_identifier())
                    while self._accept_punctuation(","):
                        using.append(self._expect_identifier())
                    self._expect_punctuation(")")
            relation = ast.Join(
                left=relation,
                right=right,
                join_type=join_type,
                condition=condition,
                using=using,
            )

    def _parse_join_type(self) -> Optional[str]:
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "CROSS"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "INNER"
        for outer in ("LEFT", "RIGHT", "FULL"):
            if self._current.is_keyword(outer):
                self._advance()
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                return outer
        if self._accept_keyword("JOIN"):
            return "INNER"
        return None

    def _parse_relation_primary(self) -> ast.Relation:
        if self._current.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            if self._current.is_keyword("SELECT") or self._current.matches(
                TokenType.PUNCTUATION, "("
            ):
                query = self._parse_set_expression()
                self._expect_punctuation(")")
                alias = self._parse_optional_alias()
                return ast.SubqueryRef(query=query, alias=alias)
            relation = self._parse_from_clause()
            self._expect_punctuation(")")
            return relation
        if self._current.is_keyword("STREAM"):
            # "FROM stream" in the paper refers to the sensor's own stream;
            # treat the keyword as an ordinary table name.
            token = self._advance()
            alias = self._parse_optional_alias()
            return ast.TableRef(name=token.value.lower(), alias=alias)
        name = self._parse_qualified_name()
        alias = self._parse_optional_alias()
        return ast.TableRef(name=name, alias=alias)

    def _parse_qualified_name(self) -> str:
        parts = [self._expect_identifier()]
        while self._current.matches(TokenType.PUNCTUATION, ".") and self._peek().type is TokenType.IDENTIFIER:
            self._advance()
            parts.append(self._expect_identifier())
        return ".".join(parts)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_identifier()
        if self._current.type is TokenType.IDENTIFIER:
            return self._advance().value
        return None

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()

        negated = False
        if self._current.is_keyword("NOT") and self._peek().is_keyword(
            "IN", "BETWEEN", "LIKE"
        ):
            self._advance()
            negated = True

        if self._accept_keyword("IN"):
            return self._parse_in_tail(left, negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(expression=left, low=low, high=high, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return ast.Like(expression=left, pattern=pattern, negated=negated)
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(expression=left, negated=is_negated)

        operator = self._accept_operator(*_COMPARISON_OPERATORS)
        if operator is not None:
            right = self._parse_additive()
            return ast.BinaryOp(operator, left, right)
        return left

    def _parse_in_tail(self, left: ast.Expression, negated: bool) -> ast.Expression:
        self._expect_punctuation("(")
        if self._current.is_keyword("SELECT"):
            query = self._parse_set_expression()
            self._expect_punctuation(")")
            return ast.InSubquery(expression=left, query=query, negated=negated)
        values = [self._parse_expression()]
        while self._accept_punctuation(","):
            values.append(self._parse_expression())
        self._expect_punctuation(")")
        return ast.InList(expression=left, values=values, negated=negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            operator = self._accept_operator(*_ADDITIVE_OPERATORS)
            if operator is None:
                return left
            right = self._parse_multiplicative()
            left = ast.BinaryOp(operator, left, right)

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            operator = self._accept_operator(*_MULTIPLICATIVE_OPERATORS)
            if operator is None:
                return left
            right = self._parse_unary()
            left = ast.BinaryOp(operator, left, right)

    def _parse_unary(self) -> ast.Expression:
        operator = self._accept_operator("-", "+")
        if operator == "-":
            return ast.UnaryOp("-", self._parse_unary())
        if operator == "+":
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(self._parse_number_value(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punctuation("(")
            query = self._parse_set_expression()
            self._expect_punctuation(")")
            return ast.Exists(query=query)
        if token.is_keyword("NOT"):
            self._advance()
            return ast.UnaryOp("NOT", self._parse_primary())
        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            if self._current.is_keyword("SELECT"):
                query = self._parse_set_expression()
                self._expect_punctuation(")")
                return ast.ScalarSubquery(query=query)
            expression = self._parse_expression()
            self._expect_punctuation(")")
            return expression
        if token.type is TokenType.IDENTIFIER or token.is_keyword(
            "LEFT", "RIGHT"
        ):
            # LEFT/RIGHT may appear as scalar function names (string functions);
            # treat them as identifiers in expression position.
            return self._parse_identifier_expression()
        raise self._error("Expected expression")

    @staticmethod
    def _parse_number_value(text: str) -> float | int:
        if any(char in text for char in ".eE"):
            return float(text)
        return int(text)

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        branches: List[ast.CaseWhen] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            branches.append(ast.CaseWhen(condition=condition, result=result))
        default: Optional[ast.Expression] = None
        if self._accept_keyword("ELSE"):
            default = self._parse_expression()
        self._expect_keyword("END")
        if not branches:
            raise self._error("CASE expression requires at least one WHEN branch")
        return ast.CaseExpression(branches=branches, default=default)

    def _parse_cast(self) -> ast.Expression:
        self._expect_keyword("CAST")
        self._expect_punctuation("(")
        expression = self._parse_expression()
        self._expect_keyword("AS")
        target = self._expect_identifier()
        self._expect_punctuation(")")
        return ast.Cast(expression=expression, target_type=target.upper())

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self._advance().value
        # Function call.
        if self._current.matches(TokenType.PUNCTUATION, "("):
            return self._parse_function_call(name)
        # Qualified column or qualified star.
        if self._current.matches(TokenType.PUNCTUATION, "."):
            self._advance()
            if self._current.type is TokenType.OPERATOR and self._current.value == "*":
                self._advance()
                return ast.Star(table=name)
            column_name = self._expect_identifier()
            if self._current.matches(TokenType.PUNCTUATION, "("):
                return self._parse_function_call(f"{name}.{column_name}")
            return ast.Column(name=column_name, table=name)
        return ast.Column(name=name)

    def _parse_function_call(self, name: str) -> ast.Expression:
        self._expect_punctuation("(")
        distinct = False
        arguments: List[ast.Expression] = []
        if not self._current.matches(TokenType.PUNCTUATION, ")"):
            if self._accept_keyword("DISTINCT"):
                distinct = True
            if self._current.type is TokenType.OPERATOR and self._current.value == "*":
                self._advance()
                arguments.append(ast.Star())
            else:
                arguments.append(self._parse_expression())
                while self._accept_punctuation(","):
                    arguments.append(self._parse_expression())
        self._expect_punctuation(")")

        window: Optional[ast.WindowSpec] = None
        if self._current.is_keyword("OVER"):
            self._advance()
            window = self._parse_window_spec()
        return ast.FunctionCall(
            name=name.upper(), arguments=arguments, distinct=distinct, window=window
        )

    def _parse_window_spec(self) -> ast.WindowSpec:
        self._expect_punctuation("(")
        partition_by: List[ast.Expression] = []
        order_by: List[ast.OrderItem] = []
        frame: Optional[ast.WindowFrame] = None
        if self._current.is_keyword("PARTITION"):
            self._advance()
            self._expect_keyword("BY")
            partition_by.append(self._parse_expression())
            while self._accept_punctuation(","):
                partition_by.append(self._parse_expression())
        if self._current.is_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punctuation(","):
                order_by.append(self._parse_order_item())
        if self._current.is_keyword("ROWS", "RANGE"):
            frame = self._parse_window_frame()
        self._expect_punctuation(")")
        return ast.WindowSpec(partition_by=partition_by, order_by=order_by, frame=frame)

    def _parse_window_frame(self) -> ast.WindowFrame:
        mode = self._advance().value  # ROWS or RANGE
        if self._accept_keyword("BETWEEN"):
            start = self._parse_frame_bound()
            self._expect_keyword("AND")
            end = self._parse_frame_bound()
            return ast.WindowFrame(mode=mode, start=start, end=end)
        start = self._parse_frame_bound()
        return ast.WindowFrame(mode=mode, start=start, end=ast.FrameBound("CURRENT ROW"))

    def _parse_frame_bound(self) -> ast.FrameBound:
        if self._accept_keyword("UNBOUNDED"):
            if self._accept_keyword("PRECEDING"):
                return ast.FrameBound("UNBOUNDED PRECEDING")
            self._expect_keyword("FOLLOWING")
            return ast.FrameBound("UNBOUNDED FOLLOWING")
        if self._accept_keyword("CURRENT"):
            self._expect_keyword("ROW")
            return ast.FrameBound("CURRENT ROW")
        offset = self._parse_additive()
        if self._accept_keyword("PRECEDING"):
            return ast.FrameBound("PRECEDING", offset=offset)
        self._expect_keyword("FOLLOWING")
        return ast.FrameBound("FOLLOWING", offset=offset)


#: Parse-text memo.  Explicitly lock-protected (rather than relying on
#: ``functools.lru_cache`` internals) because concurrent scheduler workers
#: and session threads parse at the same time: lookups and insertions hold
#: the lock, the parse itself runs outside it (a racing miss parses twice
#: and both threads store an equivalent immutable tree, which is harmless).
_PARSE_CACHE: Dict[str, ast.Query] = {}
_PARSE_CACHE_LOCK = threading.Lock()
_PARSE_CACHE_MAX = 256

#: [hits, misses], bumped under the cache lock; exposed as a metrics probe.
_PARSE_CACHE_STATS = [0, 0]

from repro.obs.metrics import registry as _obs_registry  # noqa: E402

_obs_registry.probe(
    "sql.parse_cache",
    lambda: {"hits": _PARSE_CACHE_STATS[0], "misses": _PARSE_CACHE_STATS[1]},
)


def parse(text: str) -> ast.Query:
    """Parse ``text`` into a query AST (memoized on the exact SQL text).

    Repeated pipeline runs (the processor re-parsing the same module query,
    benchmark loops) get the cached AST back.  Cached trees are shared, which
    is safe under the repo-wide convention that AST nodes are immutable —
    every transformer (:func:`repro.sql.visitor.clone`, the rewriter, the
    fragmenter) deep-copies before mutating.  Parse errors are not cached.
    Thread-safe; see the memo's comment for the locking discipline.
    """
    with _PARSE_CACHE_LOCK:
        cached = _PARSE_CACHE.get(text)
        if cached is not None:
            _PARSE_CACHE_STATS[0] += 1
        else:
            _PARSE_CACHE_STATS[1] += 1
    if cached is not None:
        return cached
    parsed = Parser(text).parse_query()
    with _PARSE_CACHE_LOCK:
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX and text not in _PARSE_CACHE:
            # Flush wholesale past the bound, mirroring the engine's plan
            # memos; the vocabulary of live query texts is small.
            _PARSE_CACHE.clear()
        _PARSE_CACHE[text] = parsed
    return parsed


def clear_parse_cache() -> None:
    """Drop all memoized parse results (tests and long-running processes)."""
    with _PARSE_CACHE_LOCK:
        _PARSE_CACHE.clear()


def parse_expression(text: str) -> ast.Expression:
    """Parse ``text`` into a standalone expression AST."""
    return Parser(text).parse_expression_only()
