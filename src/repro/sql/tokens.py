"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PARAMETER = "parameter"
    EOF = "eof"


#: Reserved words recognised by the lexer.  Matching is case-insensitive; the
#: lexer stores the upper-cased form in :attr:`Token.value`.
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "BETWEEN",
        "LIKE",
        "EXISTS",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "CROSS",
        "ON",
        "USING",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "ALL",
        "DISTINCT",
        "OVER",
        "PARTITION",
        "ASC",
        "DESC",
        "CAST",
        "WITH",
        "RECURSIVE",
        "VALUES",
        "INSERT",
        "INTO",
        "CREATE",
        "TABLE",
        "STREAM",
        "WINDOW",
        "ROWS",
        "RANGE",
        "PRECEDING",
        "FOLLOWING",
        "CURRENT",
        "ROW",
        "UNBOUNDED",
        "NULLS",
        "FIRST",
        "LAST",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "||")

#: Single-character operators.
SINGLE_CHAR_OPERATORS = ("=", "<", ">", "+", "-", "*", "/", "%")

#: Punctuation characters that structure the query.
PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: Lexical category.
        value: Normalised token text (keywords are upper-cased, string
            literals are unquoted).
        position: Character offset of the token start in the source text.
        line: 1-based line number.
        column: 1-based column number.
    """

    type: TokenType
    value: str
    position: int = 0
    line: int = 1
    column: int = 1

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """Return ``True`` when the token has the given type (and value)."""
        if self.type is not token_type:
            return False
        if value is None:
            return True
        return self.value.upper() == value.upper()

    def is_keyword(self, *names: str) -> bool:
        """Return ``True`` when the token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in {
            name.upper() for name in names
        }

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.type.value}:{self.value!r}@{self.line}:{self.column}"
