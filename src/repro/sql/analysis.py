"""Query feature analysis.

The vertical fragmenter of the paper places each query fragment on the lowest
node that is still *capable* of evaluating it (Table 1).  To decide this, the
fragmenter needs a structural summary of a query: which SQL features it uses
(joins, grouping, window functions, subqueries, attribute-to-attribute
comparisons, ...), which tables and columns it touches and how deeply it
nests.  :func:`analyze_query` computes that summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set

from repro.sql import ast
from repro.sql.visitor import (
    collect_aggregates,
    collect_columns,
    collect_function_calls,
    collect_tables,
    nesting_depth,
    walk,
)


@dataclass(frozen=True)
class QueryFeatures:
    """Structural summary of a query used for capability decisions.

    Attributes:
        tables: Lower-cased names of base tables/streams referenced anywhere.
        columns: Lower-cased names of referenced columns.
        output_columns: Names produced by the outermost SELECT list (aliases
            win over column names); ``*`` appears as ``"*"``.
        features: The set of feature identifiers (see :data:`FEATURE_NAMES`).
        aggregate_functions: Upper-cased names of aggregate functions used.
        window_functions: Upper-cased names of windowed function calls.
        nesting_depth: Number of SELECT levels.
        join_count: Number of join operators.
        predicate_count: Number of top-level AND-ed WHERE terms summed over
            all SELECT levels.
    """

    tables: FrozenSet[str]
    columns: FrozenSet[str]
    output_columns: tuple
    features: FrozenSet[str]
    aggregate_functions: FrozenSet[str]
    window_functions: FrozenSet[str]
    nesting_depth: int
    join_count: int
    predicate_count: int

    def uses(self, feature: str) -> bool:
        """Return ``True`` when the query uses ``feature``."""
        return feature in self.features


#: Feature identifiers produced by :func:`analyze_query`.  They correspond to
#: the capability rows of Table 1 in the paper (from simple constant filters a
#: sensor can evaluate up to window functions only the cloud or a PC can run).
FEATURE_NAMES = (
    "projection",
    "selection_constant",
    "selection_attribute",
    "join",
    "group_by",
    "having",
    "aggregation",
    "window_function",
    "order_by",
    "subquery",
    "set_operation",
    "distinct",
    "limit",
    "case_expression",
    "like",
    "in_subquery",
    "exists",
    "arithmetic",
    "scalar_function",
)


def analyze_query(query: ast.Query) -> QueryFeatures:
    """Compute the :class:`QueryFeatures` summary of ``query``."""
    features: Set[str] = set()
    tables: Set[str] = set()
    columns: Set[str] = set()
    aggregates: Set[str] = set()
    windows: Set[str] = set()
    join_count = 0
    predicate_count = 0

    for node in walk(query):
        if isinstance(node, ast.SetOperation):
            features.add("set_operation")
        elif isinstance(node, ast.SelectQuery):
            _analyze_select_shallow(node, features)
            predicate_count += len(ast.conjunction_terms(node.where))
        elif isinstance(node, ast.Join):
            join_count += 1
            features.add("join")
        elif isinstance(node, ast.TableRef):
            tables.add(node.name.lower())
        elif isinstance(node, ast.Column):
            columns.add(node.name.lower())
        elif isinstance(node, ast.FunctionCall):
            if node.window is not None:
                features.add("window_function")
                windows.add(node.name.upper())
            if ast.is_aggregate_function(node.name):
                features.add("aggregation")
                aggregates.add(node.name.upper())
            elif node.window is None:
                features.add("scalar_function")
        elif isinstance(node, ast.CaseExpression):
            features.add("case_expression")
        elif isinstance(node, ast.Like):
            features.add("like")
        elif isinstance(node, ast.InSubquery):
            features.add("in_subquery")
            features.add("subquery")
        elif isinstance(node, (ast.Exists, ast.ScalarSubquery)):
            features.add("exists" if isinstance(node, ast.Exists) else "subquery")
            features.add("subquery")
        elif isinstance(node, ast.SubqueryRef):
            features.add("subquery")
        elif isinstance(node, ast.BinaryOp):
            _analyze_binary(node, features)

    depth = nesting_depth(query)
    if depth > 1:
        features.add("subquery")

    output_columns = tuple(_output_columns(query))

    return QueryFeatures(
        tables=frozenset(tables),
        columns=frozenset(columns),
        output_columns=output_columns,
        features=frozenset(features),
        aggregate_functions=frozenset(aggregates),
        window_functions=frozenset(windows),
        nesting_depth=depth,
        join_count=join_count,
        predicate_count=predicate_count,
    )


def _analyze_select_shallow(query: ast.SelectQuery, features: Set[str]) -> None:
    if query.items and not query.is_select_star:
        features.add("projection")
    if query.group_by:
        features.add("group_by")
    if query.having is not None:
        features.add("having")
    if query.order_by:
        features.add("order_by")
    if query.distinct:
        features.add("distinct")
    if query.limit is not None or query.offset is not None:
        features.add("limit")


def _analyze_binary(node: ast.BinaryOp, features: Set[str]) -> None:
    operator = node.operator.upper()
    if operator in {"AND", "OR"}:
        return
    if operator in {"+", "-", "*", "/", "%", "||"}:
        features.add("arithmetic")
        return
    # Comparison: decide whether it compares an attribute to a constant
    # (executable on a sensor) or two attributes (needs an appliance).
    left_is_column = isinstance(node.left, ast.Column)
    right_is_column = isinstance(node.right, ast.Column)
    if left_is_column and right_is_column:
        features.add("selection_attribute")
    elif left_is_column or right_is_column:
        features.add("selection_constant")
    else:
        features.add("selection_constant")


def _output_columns(query: ast.Query) -> List[str]:
    if isinstance(query, ast.SetOperation):
        return _output_columns(query.left)
    assert isinstance(query, ast.SelectQuery)
    names: List[str] = []
    for item in query.items:
        if isinstance(item.expression, ast.Star):
            names.append("*")
            continue
        name = item.output_name
        names.append(name if name is not None else "?")
    return names


def referenced_columns_by_table(query: ast.Query) -> dict[str, Set[str]]:
    """Group referenced column names by the table qualifier used (if any).

    Unqualified columns are grouped under the empty string.  Useful for
    projection pruning and for policy checks that are scoped per relation.
    """
    grouped: dict[str, Set[str]] = {}
    for column in collect_columns(query):
        key = (column.table or "").lower()
        grouped.setdefault(key, set()).add(column.name.lower())
    return grouped


def query_summary(query: ast.Query) -> dict:
    """Return a JSON-friendly dict describing the query (used in reports)."""
    features = analyze_query(query)
    return {
        "tables": sorted(features.tables),
        "columns": sorted(features.columns),
        "output_columns": list(features.output_columns),
        "features": sorted(features.features),
        "aggregates": sorted(features.aggregate_functions),
        "window_functions": sorted(features.window_functions),
        "nesting_depth": features.nesting_depth,
        "join_count": features.join_count,
        "predicate_count": features.predicate_count,
        "function_calls": sorted(
            {call.name.upper() for call in collect_function_calls(query)}
        ),
        "base_tables": sorted({t.name.lower() for t in collect_tables(query)}),
        "aggregate_calls": len(collect_aggregates(query)),
    }
