"""Dataclass AST for the SQL dialect of the PArADISE reproduction.

The AST deliberately mirrors the textual structure of SQL rather than a
relational-algebra plan: the paper's rewriting rules are phrased in terms of
SELECT/FROM/WHERE/GROUP BY/HAVING clauses ("the additional conditions will be
inserted as WHERE and HAVING clauses in the innermost possible part of the
nested SQL query"), so the rewriter and the fragmenter both operate on this
clause-level representation.  The relational engine in :mod:`repro.engine`
executes the same AST directly.

All nodes are plain dataclasses.  They are treated as immutable by convention:
transformations build new nodes via :func:`dataclasses.replace` or the helpers
in :mod:`repro.sql.visitor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union


class Node:
    """Marker base class for every AST node."""

    def children(self) -> Sequence["Node"]:
        """Return the direct child nodes (used by generic walkers)."""
        return ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Marker base class for scalar expressions."""


@dataclass
class Literal(Expression):
    """A constant value: number, string, boolean or NULL."""

    value: Union[int, float, str, bool, None]

    def children(self) -> Sequence[Node]:
        return ()


@dataclass
class Column(Expression):
    """A (possibly qualified) column reference such as ``d.x`` or ``z``."""

    name: str
    table: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        """Return ``table.name`` when qualified, else just ``name``."""
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name

    def children(self) -> Sequence[Node]:
        return ()


@dataclass
class Star(Expression):
    """The ``*`` projection item, optionally qualified (``t.*``)."""

    table: Optional[str] = None

    def children(self) -> Sequence[Node]:
        return ()


@dataclass
class UnaryOp(Expression):
    """A prefix operator application: ``NOT expr`` or ``-expr``."""

    operator: str
    operand: Expression

    def children(self) -> Sequence[Node]:
        return (self.operand,)


@dataclass
class BinaryOp(Expression):
    """An infix operator application such as ``x > y`` or ``a AND b``."""

    operator: str
    left: Expression
    right: Expression

    def children(self) -> Sequence[Node]:
        return (self.left, self.right)


@dataclass
class FrameBound(Node):
    """One bound of a window frame (``UNBOUNDED PRECEDING``, ``CURRENT ROW``...)."""

    kind: str  # "UNBOUNDED PRECEDING" | "PRECEDING" | "CURRENT ROW" | "FOLLOWING" | "UNBOUNDED FOLLOWING"
    offset: Optional[Expression] = None

    def children(self) -> Sequence[Node]:
        return (self.offset,) if self.offset is not None else ()


@dataclass
class WindowFrame(Node):
    """A window frame clause (``ROWS BETWEEN ... AND ...``)."""

    mode: str  # "ROWS" | "RANGE"
    start: FrameBound = field(default_factory=lambda: FrameBound("UNBOUNDED PRECEDING"))
    end: FrameBound = field(default_factory=lambda: FrameBound("CURRENT ROW"))

    def children(self) -> Sequence[Node]:
        return (self.start, self.end)


@dataclass
class OrderItem(Node):
    """A single ``ORDER BY`` element."""

    expression: Expression
    ascending: bool = True
    nulls_first: Optional[bool] = None

    def children(self) -> Sequence[Node]:
        return (self.expression,)


@dataclass
class WindowSpec(Node):
    """The ``OVER (...)`` specification of a window function call."""

    partition_by: List[Expression] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    frame: Optional[WindowFrame] = None

    def children(self) -> Sequence[Node]:
        nodes: List[Node] = list(self.partition_by)
        nodes.extend(self.order_by)
        if self.frame is not None:
            nodes.append(self.frame)
        return nodes


@dataclass
class FunctionCall(Expression):
    """A function call, possibly aggregate and possibly windowed.

    ``COUNT(*)`` is represented with a single :class:`Star` argument.
    """

    name: str
    arguments: List[Expression] = field(default_factory=list)
    distinct: bool = False
    window: Optional[WindowSpec] = None

    def children(self) -> Sequence[Node]:
        nodes: List[Node] = list(self.arguments)
        if self.window is not None:
            nodes.append(self.window)
        return nodes


@dataclass
class CaseWhen(Node):
    """One ``WHEN condition THEN result`` branch of a CASE expression."""

    condition: Expression
    result: Expression

    def children(self) -> Sequence[Node]:
        return (self.condition, self.result)


@dataclass
class CaseExpression(Expression):
    """A searched ``CASE WHEN ... THEN ... ELSE ... END`` expression."""

    branches: List[CaseWhen] = field(default_factory=list)
    default: Optional[Expression] = None

    def children(self) -> Sequence[Node]:
        nodes: List[Node] = list(self.branches)
        if self.default is not None:
            nodes.append(self.default)
        return nodes


@dataclass
class InList(Expression):
    """``expr [NOT] IN (value, value, ...)``."""

    expression: Expression
    values: List[Expression] = field(default_factory=list)
    negated: bool = False

    def children(self) -> Sequence[Node]:
        return (self.expression, *self.values)


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    expression: Expression
    query: "SelectQuery" = None  # type: ignore[assignment]
    negated: bool = False

    def children(self) -> Sequence[Node]:
        return (self.expression, self.query)


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    expression: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Sequence[Node]:
        return (self.expression, self.low, self.high)


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    expression: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> Sequence[Node]:
        return (self.expression, self.pattern)


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    expression: Expression
    negated: bool = False

    def children(self) -> Sequence[Node]:
        return (self.expression,)


@dataclass
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "SelectQuery" = None  # type: ignore[assignment]
    negated: bool = False

    def children(self) -> Sequence[Node]:
        return (self.query,)


@dataclass
class ScalarSubquery(Expression):
    """A subquery used as a scalar expression."""

    query: "SelectQuery" = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.query,)


@dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    expression: Expression
    target_type: str = "TEXT"

    def children(self) -> Sequence[Node]:
        return (self.expression,)


# ---------------------------------------------------------------------------
# Relations (FROM clause)
# ---------------------------------------------------------------------------


class Relation(Node):
    """Marker base class for FROM-clause items."""


@dataclass
class TableRef(Relation):
    """A reference to a base table or stream, optionally aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        """Name used to qualify columns of this relation."""
        return self.alias or self.name

    def children(self) -> Sequence[Node]:
        return ()


@dataclass
class SubqueryRef(Relation):
    """A derived table ``(SELECT ...) AS alias`` in the FROM clause."""

    query: "SelectQuery" = None  # type: ignore[assignment]
    alias: Optional[str] = None

    def children(self) -> Sequence[Node]:
        return (self.query,)


@dataclass
class Join(Relation):
    """A join of two relations."""

    left: Relation
    right: Relation
    join_type: str = "INNER"  # INNER | LEFT | RIGHT | FULL | CROSS
    condition: Optional[Expression] = None
    using: List[str] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        nodes: List[Node] = [self.left, self.right]
        if self.condition is not None:
            nodes.append(self.condition)
        return nodes


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One element of the SELECT list: an expression and an optional alias."""

    expression: Expression
    alias: Optional[str] = None

    @property
    def output_name(self) -> Optional[str]:
        """The column name this item produces, when it can be determined."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, Column):
            return self.expression.name
        if isinstance(self.expression, FunctionCall):
            return self.expression.name.lower()
        return None

    def children(self) -> Sequence[Node]:
        return (self.expression,)


class Query(Node):
    """Marker base class for query nodes (SELECT and set operations)."""


@dataclass
class SelectQuery(Query):
    """A full ``SELECT`` statement."""

    items: List[SelectItem] = field(default_factory=list)
    from_clause: Optional[Relation] = None
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def children(self) -> Sequence[Node]:
        nodes: List[Node] = list(self.items)
        if self.from_clause is not None:
            nodes.append(self.from_clause)
        if self.where is not None:
            nodes.append(self.where)
        nodes.extend(self.group_by)
        if self.having is not None:
            nodes.append(self.having)
        nodes.extend(self.order_by)
        return nodes

    @property
    def is_select_star(self) -> bool:
        """True when the projection is a bare ``SELECT *``."""
        return len(self.items) == 1 and isinstance(self.items[0].expression, Star)


@dataclass
class SetOperation(Query):
    """``UNION`` / ``INTERSECT`` / ``EXCEPT`` of two queries."""

    operator: str
    left: Query
    right: Query
    all: bool = False

    def children(self) -> Sequence[Node]:
        return (self.left, self.right)


# ---------------------------------------------------------------------------
# Convenience constructors used heavily by the rewriter and tests
# ---------------------------------------------------------------------------


def column(name: str, table: Optional[str] = None) -> Column:
    """Shorthand constructor for :class:`Column`."""
    return Column(name=name, table=table)


def literal(value: Union[int, float, str, bool, None]) -> Literal:
    """Shorthand constructor for :class:`Literal`."""
    return Literal(value=value)


def conjunction(*terms: Optional[Expression]) -> Optional[Expression]:
    """Combine expressions with ``AND``, skipping ``None`` terms.

    Returns ``None`` when no terms remain — the caller keeps an absent WHERE
    clause absent.  This is the primitive the paper's rewriting rule uses:
    "the WHERE condition is combined with the user's integrity constraints and
    the system query conjunctively".
    """
    remaining = [term for term in terms if term is not None]
    if not remaining:
        return None
    result = remaining[0]
    for term in remaining[1:]:
        result = BinaryOp("AND", result, term)
    return result


def conjunction_terms(expression: Optional[Expression]) -> List[Expression]:
    """Split a boolean expression into its top-level AND-ed terms."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.operator.upper() == "AND":
        return conjunction_terms(expression.left) + conjunction_terms(expression.right)
    return [expression]


AGGREGATE_FUNCTIONS = frozenset(
    {
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "COUNT",
        "STDDEV",
        "STDDEV_SAMP",
        "STDDEV_POP",
        "VARIANCE",
        "VAR_SAMP",
        "VAR_POP",
        "MEDIAN",
        "REGR_INTERCEPT",
        "REGR_SLOPE",
        "REGR_COUNT",
        "REGR_R2",
        "CORR",
        "COVAR_POP",
        "COVAR_SAMP",
    }
)

WINDOW_ONLY_FUNCTIONS = frozenset(
    {"ROW_NUMBER", "RANK", "DENSE_RANK", "LAG", "LEAD", "FIRST_VALUE", "LAST_VALUE", "NTILE"}
)


def is_aggregate_function(name: str) -> bool:
    """Return ``True`` when ``name`` denotes an aggregate function."""
    return name.upper() in AGGREGATE_FUNCTIONS
