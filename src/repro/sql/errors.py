"""Exception hierarchy for the SQL frontend."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for every error raised by :mod:`repro.sql`."""


class LexerError(SqlError):
    """Raised when the tokenizer meets a character sequence it cannot handle."""

    def __init__(self, message: str, position: int, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser meets an unexpected token."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position
