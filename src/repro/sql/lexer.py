"""Tokenizer for the SQL dialect used throughout the reproduction.

The dialect covers everything the paper's running example needs (SQL:2003
window functions, nested subqueries, aggregate functions) plus the usual
scalar expression syntax.  The lexer is a straightforward hand-written state
machine; it reports precise line/column information so that parse errors in
user-provided policies or queries are easy to diagnose.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.sql.errors import LexerError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)

_IDENTIFIER_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENTIFIER_BODY = _IDENTIFIER_START | frozenset("0123456789$'")
# The apostrophe is excluded from identifier bodies below; it is listed here
# only so that the frozenset literal above stays a single expression.
_IDENTIFIER_BODY = _IDENTIFIER_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_WHITESPACE = frozenset(" \t\r\n")


class Lexer:
    """Convert SQL text into a list of :class:`~repro.sql.tokens.Token`."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._length = len(text)
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Tokenize the whole input, appending a trailing EOF token."""
        tokens = list(self._iter_tokens())
        tokens.append(
            Token(TokenType.EOF, "", self._pos, self._line, self._column)
        )
        return tokens

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _iter_tokens(self) -> Iterator[Token]:
        while self._pos < self._length:
            char = self._text[self._pos]
            if char in _WHITESPACE:
                self._advance()
                continue
            if char == "-" and self._peek(1) == "-":
                self._skip_line_comment()
                continue
            if char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            if char in _IDENTIFIER_START:
                yield self._read_word()
                continue
            if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
                yield self._read_number()
                continue
            if char == "'":
                yield self._read_string()
                continue
            if char == '"':
                yield self._read_quoted_identifier()
                continue
            if char == "?":
                yield self._make_token(TokenType.PARAMETER, "?", 1)
                continue
            multi = self._match_multi_char_operator()
            if multi is not None:
                yield multi
                continue
            if char in SINGLE_CHAR_OPERATORS:
                yield self._make_token(TokenType.OPERATOR, char, 1)
                continue
            if char in PUNCTUATION:
                yield self._make_token(TokenType.PUNCTUATION, char, 1)
                continue
            raise LexerError(
                f"Unexpected character {char!r}", self._pos, self._line, self._column
            )

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= self._length:
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _peek(self, offset: int) -> str:
        index = self._pos + offset
        if index < self._length:
            return self._text[index]
        return ""

    def _make_token(self, token_type: TokenType, value: str, length: int) -> Token:
        token = Token(token_type, value, self._pos, self._line, self._column)
        self._advance(length)
        return token

    def _skip_line_comment(self) -> None:
        while self._pos < self._length and self._text[self._pos] != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_column, start_pos = self._line, self._column, self._pos
        self._advance(2)
        while self._pos < self._length:
            if self._text[self._pos] == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexerError("Unterminated block comment", start_pos, start_line, start_column)

    def _read_word(self) -> Token:
        start = self._pos
        line, column = self._line, self._column
        while self._pos < self._length and self._text[self._pos] in _IDENTIFIER_BODY:
            self._advance()
        word = self._text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, start, line, column)
        return Token(TokenType.IDENTIFIER, word, start, line, column)

    def _read_number(self) -> Token:
        start = self._pos
        line, column = self._line, self._column
        seen_dot = False
        seen_exponent = False
        while self._pos < self._length:
            char = self._text[self._pos]
            if char in _DIGITS:
                self._advance()
            elif char == "." and not seen_dot and not seen_exponent:
                seen_dot = True
                self._advance()
            elif char in "eE" and not seen_exponent and self._pos > start:
                nxt = self._peek(1)
                if nxt in _DIGITS or (nxt in "+-" and self._peek(2) in _DIGITS):
                    seen_exponent = True
                    self._advance()
                    if self._text[self._pos] in "+-":
                        self._advance()
                else:
                    break
            else:
                break
        return Token(TokenType.NUMBER, self._text[start : self._pos], start, line, column)

    def _read_string(self) -> Token:
        start = self._pos
        line, column = self._line, self._column
        self._advance()  # opening quote
        pieces: list[str] = []
        while True:
            if self._pos >= self._length:
                raise LexerError("Unterminated string literal", start, line, column)
            char = self._text[self._pos]
            if char == "'":
                if self._peek(1) == "'":
                    pieces.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            pieces.append(char)
            self._advance()
        return Token(TokenType.STRING, "".join(pieces), start, line, column)

    def _read_quoted_identifier(self) -> Token:
        start = self._pos
        line, column = self._line, self._column
        self._advance()  # opening quote
        pieces: list[str] = []
        while True:
            if self._pos >= self._length:
                raise LexerError("Unterminated quoted identifier", start, line, column)
            char = self._text[self._pos]
            if char == '"':
                if self._peek(1) == '"':
                    pieces.append('"')
                    self._advance(2)
                    continue
                self._advance()
                break
            pieces.append(char)
            self._advance()
        return Token(TokenType.IDENTIFIER, "".join(pieces), start, line, column)

    def _match_multi_char_operator(self) -> Token | None:
        for operator in MULTI_CHAR_OPERATORS:
            end = self._pos + len(operator)
            if self._text[self._pos : end] == operator:
                return self._make_token(TokenType.OPERATOR, operator, len(operator))
        return None


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return the token list (including the EOF token)."""
    return Lexer(text).tokenize()
