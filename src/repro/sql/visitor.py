"""Generic AST walkers and transformers.

The rewriter (:mod:`repro.rewrite`) and the fragmenter (:mod:`repro.fragment`)
need two styles of traversal:

* read-only walks that collect information (columns used, tables referenced,
  aggregate calls, nesting depth), and
* structure-preserving transformations that replace selected nodes while
  copying everything else (e.g. renaming a column to the alias of the
  aggregation that replaced it).
"""

from __future__ import annotations

import copy
from dataclasses import fields, is_dataclass
from typing import Callable, Iterator, List, Optional, TypeVar

from repro.sql import ast

NodeT = TypeVar("NodeT", bound=ast.Node)


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Yield ``node`` and all its descendants in depth-first pre-order."""
    yield node
    for child in node.children():
        if child is None:
            continue
        yield from walk(child)


def walk_expressions(node: ast.Node) -> Iterator[ast.Expression]:
    """Yield every expression node reachable from ``node``."""
    for descendant in walk(node):
        if isinstance(descendant, ast.Expression):
            yield descendant


def collect_columns(node: ast.Node) -> List[ast.Column]:
    """Return every column reference reachable from ``node`` (in order)."""
    return [n for n in walk(node) if isinstance(n, ast.Column)]


def collect_column_names(node: ast.Node) -> List[str]:
    """Return the (unqualified, lower-cased) names of referenced columns."""
    return [column.name.lower() for column in collect_columns(node)]


def collect_tables(node: ast.Node) -> List[ast.TableRef]:
    """Return every base-table reference reachable from ``node``."""
    return [n for n in walk(node) if isinstance(n, ast.TableRef)]


def collect_function_calls(node: ast.Node) -> List[ast.FunctionCall]:
    """Return every function call reachable from ``node``."""
    return [n for n in walk(node) if isinstance(n, ast.FunctionCall)]


def collect_aggregates(node: ast.Node) -> List[ast.FunctionCall]:
    """Return aggregate function calls (excluding pure window-ranking calls)."""
    return [
        call
        for call in collect_function_calls(node)
        if ast.is_aggregate_function(call.name)
    ]


def collect_subqueries(node: ast.Node) -> List[ast.SelectQuery]:
    """Return every SELECT query nested below ``node`` (excluding ``node``)."""
    result: List[ast.SelectQuery] = []
    for descendant in walk(node):
        if descendant is node:
            continue
        if isinstance(descendant, ast.SelectQuery):
            result.append(descendant)
    return result


def nesting_depth(query: ast.Query) -> int:
    """Return the number of SELECT levels in ``query`` (1 for a flat query)."""
    if isinstance(query, ast.SetOperation):
        return max(nesting_depth(query.left), nesting_depth(query.right))
    depth = 1
    assert isinstance(query, ast.SelectQuery)
    best_child = 0
    for subquery in _direct_subqueries(query):
        best_child = max(best_child, nesting_depth(subquery))
    return depth + best_child


def _direct_subqueries(query: ast.SelectQuery) -> Iterator[ast.SelectQuery]:
    """Yield subqueries that are *direct* children of ``query`` (one level down)."""
    seen: set[int] = set()
    stack: List[ast.Node] = list(query.children())
    while stack:
        node = stack.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, ast.SelectQuery):
            yield node
            continue  # do not descend further; deeper queries belong to the child
        stack.extend(node.children())


def clone(node: NodeT) -> NodeT:
    """Return a deep copy of ``node`` (AST nodes are plain dataclasses)."""
    return copy.deepcopy(node)


def transform(node: ast.Node, visitor: Callable[[ast.Node], Optional[ast.Node]]) -> ast.Node:
    """Rebuild the tree bottom-up, letting ``visitor`` replace nodes.

    ``visitor`` is called on every node after its children have been rebuilt.
    It may return a replacement node or ``None`` to keep the (rebuilt) node.
    The input tree is never modified.
    """
    rebuilt = _rebuild_with_transformed_children(node, visitor)
    replacement = visitor(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild_with_transformed_children(
    node: ast.Node, visitor: Callable[[ast.Node], Optional[ast.Node]]
) -> ast.Node:
    if not is_dataclass(node):
        return node
    changes = {}
    for field_info in fields(node):
        value = getattr(node, field_info.name)
        if isinstance(value, ast.Node):
            changes[field_info.name] = transform(value, visitor)
        elif isinstance(value, list):
            new_list = [
                transform(item, visitor) if isinstance(item, ast.Node) else item
                for item in value
            ]
            changes[field_info.name] = new_list
        else:
            changes[field_info.name] = value
    return type(node)(**changes)


def replace_columns(node: NodeT, mapping: dict[str, ast.Expression]) -> NodeT:
    """Replace column references by name (case-insensitive) using ``mapping``."""

    def visitor(current: ast.Node) -> Optional[ast.Node]:
        if isinstance(current, ast.Column):
            replacement = mapping.get(current.name.lower())
            if replacement is not None:
                return clone(replacement)
        return None

    return transform(node, visitor)  # type: ignore[return-value]


def rename_tables(node: NodeT, mapping: dict[str, str]) -> NodeT:
    """Rename base tables (case-insensitive) according to ``mapping``."""

    def visitor(current: ast.Node) -> Optional[ast.Node]:
        if isinstance(current, ast.TableRef):
            new_name = mapping.get(current.name.lower())
            if new_name is not None:
                return ast.TableRef(name=new_name, alias=current.alias)
        return None

    return transform(node, visitor)  # type: ignore[return-value]
