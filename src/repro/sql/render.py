"""Render AST nodes back into canonical SQL text.

The renderer produces a normalised form (upper-case keywords, explicit
parentheses around subqueries, single spaces) so that rewritten queries can be
compared textually in tests and printed in reports exactly like the staged
queries of Section 4.2 of the paper.
"""

from __future__ import annotations

from typing import List

from repro.sql import ast
from repro.sql.errors import SqlError


def render(query: ast.Query, pretty: bool = False, indent: int = 0) -> str:
    """Render a query node to SQL text.

    Args:
        query: The query AST (SELECT or set operation).
        pretty: When true, major clauses start on their own line and nested
            subqueries are indented, mirroring the listing style of the paper.
        indent: Starting indentation level (used internally for nesting).
    """
    if isinstance(query, ast.SelectQuery):
        return _render_select(query, pretty=pretty, indent=indent)
    if isinstance(query, ast.SetOperation):
        operator = query.operator.upper() + (" ALL" if query.all else "")
        left = render(query.left, pretty=pretty, indent=indent)
        right = render(query.right, pretty=pretty, indent=indent)
        separator = "\n" if pretty else " "
        return f"{left}{separator}{operator}{separator}{right}"
    raise SqlError(f"Cannot render node of type {type(query).__name__}")


def render_expression(expression: ast.Expression) -> str:
    """Render a scalar/boolean expression to SQL text."""
    return _render_expression(expression)


# ---------------------------------------------------------------------------
# SELECT rendering
# ---------------------------------------------------------------------------


def _render_select(query: ast.SelectQuery, pretty: bool, indent: int) -> str:
    clauses: List[str] = []

    select_keyword = "SELECT DISTINCT" if query.distinct else "SELECT"
    items = ", ".join(_render_select_item(item) for item in query.items)
    clauses.append(f"{select_keyword} {items}")

    if query.from_clause is not None:
        clauses.append("FROM " + _render_relation(query.from_clause, pretty, indent))
    if query.where is not None:
        clauses.append("WHERE " + _render_expression(query.where))
    if query.group_by:
        clauses.append("GROUP BY " + ", ".join(_render_expression(e) for e in query.group_by))
    if query.having is not None:
        clauses.append("HAVING " + _render_expression(query.having))
    if query.order_by:
        clauses.append("ORDER BY " + ", ".join(_render_order_item(o) for o in query.order_by))
    if query.limit is not None:
        clauses.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        clauses.append(f"OFFSET {query.offset}")

    if not pretty:
        return " ".join(clauses)
    pad = "  " * indent
    return ("\n" + pad).join(clauses)


def _render_select_item(item: ast.SelectItem) -> str:
    text = _render_expression(item.expression)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _render_order_item(item: ast.OrderItem) -> str:
    text = _render_expression(item.expression)
    if not item.ascending:
        text += " DESC"
    if item.nulls_first is True:
        text += " NULLS FIRST"
    elif item.nulls_first is False:
        text += " NULLS LAST"
    return text


def _render_relation(relation: ast.Relation, pretty: bool = False, indent: int = 0) -> str:
    if isinstance(relation, ast.TableRef):
        if relation.alias:
            return f"{relation.name} AS {relation.alias}"
        return relation.name
    if isinstance(relation, ast.SubqueryRef):
        inner = render(relation.query, pretty=pretty, indent=indent + 1)
        if pretty:
            pad = "  " * (indent + 1)
            text = f"(\n{pad}{inner}\n" + "  " * indent + ")"
        else:
            text = f"({inner})"
        if relation.alias:
            return f"{text} AS {relation.alias}"
        return text
    if isinstance(relation, ast.Join):
        left = _render_relation(relation.left, pretty, indent)
        right = _render_relation(relation.right, pretty, indent)
        if relation.join_type == "CROSS" and relation.condition is None and not relation.using:
            return f"{left} CROSS JOIN {right}"
        join_keyword = f"{relation.join_type} JOIN"
        text = f"{left} {join_keyword} {right}"
        if relation.condition is not None:
            text += " ON " + _render_expression(relation.condition)
        elif relation.using:
            text += " USING (" + ", ".join(relation.using) + ")"
        return text
    raise SqlError(f"Cannot render relation of type {type(relation).__name__}")


# ---------------------------------------------------------------------------
# expression rendering
# ---------------------------------------------------------------------------


def _render_expression(expression: ast.Expression) -> str:
    if isinstance(expression, ast.Literal):
        return _render_literal(expression)
    if isinstance(expression, ast.Column):
        return expression.qualified_name
    if isinstance(expression, ast.Star):
        return f"{expression.table}.*" if expression.table else "*"
    if isinstance(expression, ast.UnaryOp):
        operand = _render_expression(expression.operand)
        if expression.operator.upper() == "NOT":
            return f"NOT ({operand})"
        return f"{expression.operator}{_maybe_parenthesise(expression.operand, operand)}"
    if isinstance(expression, ast.BinaryOp):
        return _render_binary(expression)
    if isinstance(expression, ast.FunctionCall):
        return _render_function(expression)
    if isinstance(expression, ast.CaseExpression):
        return _render_case(expression)
    if isinstance(expression, ast.InList):
        values = ", ".join(_render_expression(v) for v in expression.values)
        keyword = "NOT IN" if expression.negated else "IN"
        return f"{_render_expression(expression.expression)} {keyword} ({values})"
    if isinstance(expression, ast.InSubquery):
        keyword = "NOT IN" if expression.negated else "IN"
        return f"{_render_expression(expression.expression)} {keyword} ({render(expression.query)})"
    if isinstance(expression, ast.Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (
            f"{_render_expression(expression.expression)} {keyword} "
            f"{_render_expression(expression.low)} AND {_render_expression(expression.high)}"
        )
    if isinstance(expression, ast.Like):
        keyword = "NOT LIKE" if expression.negated else "LIKE"
        return f"{_render_expression(expression.expression)} {keyword} {_render_expression(expression.pattern)}"
    if isinstance(expression, ast.IsNull):
        keyword = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{_render_expression(expression.expression)} {keyword}"
    if isinstance(expression, ast.Exists):
        keyword = "NOT EXISTS" if expression.negated else "EXISTS"
        return f"{keyword} ({render(expression.query)})"
    if isinstance(expression, ast.ScalarSubquery):
        return f"({render(expression.query)})"
    if isinstance(expression, ast.Cast):
        return f"CAST({_render_expression(expression.expression)} AS {expression.target_type})"
    raise SqlError(f"Cannot render expression of type {type(expression).__name__}")


def _render_literal(literal: ast.Literal) -> str:
    value = literal.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value.is_integer():
        return str(value)
    return repr(value) if isinstance(value, float) else str(value)


_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "<>": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def _render_binary(expression: ast.BinaryOp) -> str:
    operator = expression.operator.upper()
    precedence = _PRECEDENCE.get(operator, 7)

    def side(child: ast.Expression) -> str:
        text = _render_expression(child)
        if isinstance(child, ast.BinaryOp):
            child_precedence = _PRECEDENCE.get(child.operator.upper(), 7)
            if child_precedence < precedence:
                return f"({text})"
        return text

    return f"{side(expression.left)} {operator} {side(expression.right)}"


def _maybe_parenthesise(node: ast.Expression, text: str) -> str:
    if isinstance(node, ast.BinaryOp):
        return f"({text})"
    return text


def _render_function(call: ast.FunctionCall) -> str:
    arguments = ", ".join(_render_expression(argument) for argument in call.arguments)
    if call.distinct:
        arguments = f"DISTINCT {arguments}"
    text = f"{call.name}({arguments})"
    if call.window is not None:
        text += " OVER (" + _render_window(call.window) + ")"
    return text


def _render_window(window: ast.WindowSpec) -> str:
    parts: List[str] = []
    if window.partition_by:
        parts.append(
            "PARTITION BY " + ", ".join(_render_expression(e) for e in window.partition_by)
        )
    if window.order_by:
        parts.append("ORDER BY " + ", ".join(_render_order_item(o) for o in window.order_by))
    if window.frame is not None:
        parts.append(_render_frame(window.frame))
    return " ".join(parts)


def _render_frame(frame: ast.WindowFrame) -> str:
    return (
        f"{frame.mode} BETWEEN {_render_frame_bound(frame.start)} "
        f"AND {_render_frame_bound(frame.end)}"
    )


def _render_frame_bound(bound: ast.FrameBound) -> str:
    if bound.offset is not None:
        return f"{_render_expression(bound.offset)} {bound.kind}"
    return bound.kind


def _render_case(expression: ast.CaseExpression) -> str:
    parts = ["CASE"]
    for branch in expression.branches:
        parts.append(
            f"WHEN {_render_expression(branch.condition)} THEN {_render_expression(branch.result)}"
        )
    if expression.default is not None:
        parts.append(f"ELSE {_render_expression(expression.default)}")
    parts.append("END")
    return " ".join(parts)
