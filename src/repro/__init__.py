"""PArADISE — Privacy Protection through Query Rewriting in Smart Environments.

A reproduction of Grunert & Heuer, EDBT 2016 (TR CS-01-16).  The package
provides the complete middleware the paper describes:

* a SQL frontend and in-memory relational engine (:mod:`repro.sql`,
  :mod:`repro.engine`, :mod:`repro.streams`),
* simulators for the smart-environment sensors and scenarios
  (:mod:`repro.sensors`),
* the privacy-policy language of Figure 4 (:mod:`repro.policy`),
* the preprocessor: policy-driven query rewriting (:mod:`repro.rewrite`),
* vertical fragmentation over the capability hierarchy of Table 1
  (:mod:`repro.fragment`),
* the postprocessor: anonymization and information-loss metrics
  (:mod:`repro.anonymize`, :mod:`repro.metrics`),
* SQLable-pattern extraction from R analysis code (:mod:`repro.rlang`),
* and the end-to-end processor tying it all together
  (:mod:`repro.processor`).

Quickstart::

    from repro import ParadiseProcessor, SmartMeetingRoom, figure4_policy

    data = SmartMeetingRoom(person_count=4).generate(duration_seconds=60)
    processor = ParadiseProcessor(figure4_policy(), schema=data.integrated.schema)
    processor.load_data(data.integrated)
    result = processor.process(
        "SELECT x, y, z, t FROM d", module_id="ActionFilter"
    )
    print(result.summary())
"""

from repro.engine import Database, Relation, Schema
from repro.fragment import CapabilityLevel, FragmentPlan, Topology, VerticalFragmenter
from repro.policy import (
    PolicyBuilder,
    PrivacyPolicy,
    figure4_policy,
    open_policy,
    parse_policy_xml,
    policy_to_xml,
    restrictive_policy,
)
from repro.processor import ParadiseProcessor, ProcessingResult
from repro.rewrite import PolicyAnalyzer, QueryRewriter
from repro.anonymize import Anonymizer, KAnonymizer, Slicer
from repro.metrics import direct_distance, information_loss_summary, kl_divergence_relation
from repro.sensors import AalApartment, SmartMeetingRoom
from repro.sql import parse, render

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Relation",
    "Schema",
    "CapabilityLevel",
    "FragmentPlan",
    "Topology",
    "VerticalFragmenter",
    "PolicyBuilder",
    "PrivacyPolicy",
    "figure4_policy",
    "open_policy",
    "restrictive_policy",
    "parse_policy_xml",
    "policy_to_xml",
    "ParadiseProcessor",
    "ProcessingResult",
    "PolicyAnalyzer",
    "QueryRewriter",
    "Anonymizer",
    "KAnonymizer",
    "Slicer",
    "direct_distance",
    "information_loss_summary",
    "kl_divergence_relation",
    "AalApartment",
    "SmartMeetingRoom",
    "parse",
    "render",
    "__version__",
]
