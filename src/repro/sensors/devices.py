"""Simulators for the individual devices of the Smart Appliance Lab.

Each class models one device family from Section 1 of the paper.  The readings
are intentionally simple but realistic in shape: they carry the columns an
activity-recognition workload would query (positions, pressure, power draw,
switch states) together with identifying device/user columns that the privacy
machinery later has to protect.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import DataType
from repro.sensors.activity import Activity, ActivityTrace, PersonSimulator
from repro.sensors.base import Reading, SensorDevice


class LampSensor(SensorDevice):
    """A dimmable lamp reporting its brightness level (0–100 %)."""

    device_type = "lamp"
    default_rate_hz = 0.2

    def __init__(self, device_id: str, rng: Optional[random.Random] = None) -> None:
        super().__init__(device_id, rng)
        self._level = self._rng.choice([0, 30, 60, 100])

    @property
    def schema(self) -> Schema:
        return Schema(
            self._base_columns()
            + [
                ColumnDef(name="level", data_type=DataType.INTEGER),
                ColumnDef(name="powered", data_type=DataType.BOOLEAN),
            ]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        if self._rng.random() < 0.05:
            self._level = self._rng.choice([0, 10, 30, 60, 80, 100])
        return [{"level": self._level, "powered": self._level > 0}]


class ScreenSensor(SensorDevice):
    """A motorised projection screen that can be turned up or down."""

    device_type = "screen"
    default_rate_hz = 0.1

    def __init__(self, device_id: str, rng: Optional[random.Random] = None) -> None:
        super().__init__(device_id, rng)
        self._lowered = self._rng.random() < 0.5

    @property
    def schema(self) -> Schema:
        return Schema(
            self._base_columns()
            + [ColumnDef(name="lowered", data_type=DataType.BOOLEAN)]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        if self._rng.random() < 0.02:
            self._lowered = not self._lowered
        return [{"lowered": self._lowered}]


class PowerSocketSensor(SensorDevice):
    """An electrical outlet tracking its current draw in milliamperes."""

    device_type = "powersocket"
    default_rate_hz = 1.0

    def __init__(
        self,
        device_id: str,
        base_load_ma: float = 120.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(device_id, rng)
        self._base_load = base_load_ma
        self._active = self._rng.random() < 0.7

    @property
    def schema(self) -> Schema:
        return Schema(
            self._base_columns()
            + [
                ColumnDef(name="milliamperes", data_type=DataType.FLOAT, sensitive=True),
                ColumnDef(name="active", data_type=DataType.BOOLEAN),
            ]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        if self._rng.random() < 0.01:
            self._active = not self._active
        if self._active:
            draw = max(0.0, self._rng.gauss(self._base_load, self._base_load * 0.1))
        else:
            draw = max(0.0, self._rng.gauss(2.0, 1.0))  # standby draw
        return [{"milliamperes": round(draw, 2), "active": self._active}]


class PenSensor(SensorDevice):
    """The Smart Board pen tray: which pen is currently taken."""

    device_type = "pensensor"
    default_rate_hz = 0.5
    PEN_COLOURS = ("black", "red", "blue", "green")

    def __init__(self, device_id: str, rng: Optional[random.Random] = None) -> None:
        super().__init__(device_id, rng)
        self._taken: Dict[str, bool] = {colour: False for colour in self.PEN_COLOURS}

    @property
    def schema(self) -> Schema:
        return Schema(
            self._base_columns()
            + [
                ColumnDef(name="pen", data_type=DataType.TEXT),
                ColumnDef(name="taken", data_type=DataType.BOOLEAN),
            ]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        if self._rng.random() < 0.05:
            colour = self._rng.choice(self.PEN_COLOURS)
            self._taken[colour] = not self._taken[colour]
        return [
            {"pen": colour, "taken": taken} for colour, taken in self._taken.items()
        ]


class Thermometer(SensorDevice):
    """Room thermometer reporting degrees Celsius."""

    device_type = "thermometer"
    default_rate_hz = 0.1

    def __init__(
        self,
        device_id: str,
        base_temperature: float = 21.5,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(device_id, rng)
        self._base = base_temperature

    @property
    def schema(self) -> Schema:
        return Schema(
            self._base_columns()
            + [ColumnDef(name="celsius", data_type=DataType.FLOAT)]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        drift = 0.8 * math.sin(timestamp / 600.0)
        noise = self._rng.gauss(0.0, 0.1)
        return [{"celsius": round(self._base + drift + noise, 2)}]


class UbisenseTag(SensorDevice):
    """A UbiSense location tag worn by one person.

    Positions come from the shared :class:`PersonSimulator` trajectory so that
    the SensFloor readings and the activity ground truth stay consistent.  The
    ``valid`` flag models the "whether the position is valid or not" extra
    information the paper mentions.
    """

    device_type = "ubisense"
    default_rate_hz = 10.0

    def __init__(
        self,
        device_id: str,
        person: PersonSimulator,
        trace: ActivityTrace,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(device_id, rng)
        self._person = person
        self._trace = trace
        self._trajectory = person.positions(trace, rate_hz=self.default_rate_hz)
        self._index = 0

    @property
    def schema(self) -> Schema:
        return Schema(
            [
                ColumnDef(name="device_id", data_type=DataType.TEXT, identifying=True),
                ColumnDef(name="t", data_type=DataType.FLOAT),
                ColumnDef(name="person_id", data_type=DataType.INTEGER, identifying=True),
                ColumnDef(name="x", data_type=DataType.FLOAT, quasi_identifier=True),
                ColumnDef(name="y", data_type=DataType.FLOAT, quasi_identifier=True),
                ColumnDef(name="z", data_type=DataType.FLOAT, sensitive=True),
                ColumnDef(name="valid", data_type=DataType.BOOLEAN),
                ColumnDef(name="activity", data_type=DataType.TEXT, sensitive=True),
            ]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        if self._index >= len(self._trajectory):
            return []
        point = self._trajectory[self._index]
        self._index += 1
        valid = self._rng.random() > 0.03
        reading: Reading = {
            "person_id": point["person_id"],
            "x": point["x"] if valid else None,
            "y": point["y"] if valid else None,
            "z": point["z"] if valid else None,
            "valid": valid,
            "activity": point["activity"],
            "t": point["t"],
        }
        return [reading]

    @property
    def trajectory(self) -> List[Reading]:
        """The full ground-truth trajectory (used by SensFloor and tests)."""
        return [dict(point) for point in self._trajectory]


class SensFloor(SensorDevice):
    """The pressure-sensitive carpet covering the centre of the room.

    The floor reports, per sampled instant, the grid cell a person stands on
    and the pressure exerted.  Readings are derived from the UbiSense
    trajectories of all persons that stand inside the carpet area.
    """

    device_type = "sensfloor"
    default_rate_hz = 5.0

    def __init__(
        self,
        device_id: str,
        trajectories: Sequence[Sequence[Reading]],
        area: tuple = (2.0, 1.5, 6.0, 4.5),
        cell_size: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(device_id, rng)
        self._trajectories = [list(trajectory) for trajectory in trajectories]
        self._area = area
        self._cell_size = cell_size

    @property
    def schema(self) -> Schema:
        return Schema(
            [
                ColumnDef(name="device_id", data_type=DataType.TEXT),
                ColumnDef(name="t", data_type=DataType.FLOAT),
                ColumnDef(name="cell_x", data_type=DataType.INTEGER, quasi_identifier=True),
                ColumnDef(name="cell_y", data_type=DataType.INTEGER, quasi_identifier=True),
                ColumnDef(name="pressure", data_type=DataType.FLOAT, sensitive=True),
            ]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        x_min, y_min, x_max, y_max = self._area
        readings: List[Reading] = []
        for trajectory in self._trajectories:
            point = _closest_point(trajectory, timestamp)
            if point is None:
                continue
            x, y = point["x"], point["y"]
            if x is None or y is None:
                continue
            if not (x_min <= x <= x_max and y_min <= y <= y_max):
                continue
            # Pressure depends on posture: standing concentrates weight.
            activity = point.get("activity", Activity.STAND.value)
            base_pressure = 75.0 if activity == Activity.WALK.value else 60.0
            if activity in (Activity.FALL.value, Activity.LIE.value):
                base_pressure = 30.0
            readings.append(
                {
                    "cell_x": int((x - x_min) / self._cell_size),
                    "cell_y": int((y - y_min) / self._cell_size),
                    "pressure": round(max(5.0, self._rng.gauss(base_pressure, 8.0)), 2),
                }
            )
        return readings


class VgaSensor(SensorDevice):
    """Extron/VGA matrix sensor: which video port feeds which projector."""

    device_type = "vgasensor"
    default_rate_hz = 0.1

    def __init__(
        self,
        device_id: str,
        port_count: int = 4,
        projector_count: int = 2,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(device_id, rng)
        self._port_count = port_count
        self._projector_count = projector_count
        self._mapping = {
            projector: self._rng.randrange(port_count)
            for projector in range(projector_count)
        }

    @property
    def schema(self) -> Schema:
        return Schema(
            self._base_columns()
            + [
                ColumnDef(name="projector", data_type=DataType.INTEGER),
                ColumnDef(name="port", data_type=DataType.INTEGER),
                ColumnDef(name="connected", data_type=DataType.BOOLEAN),
            ]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        if self._rng.random() < 0.05:
            projector = self._rng.randrange(self._projector_count)
            self._mapping[projector] = self._rng.randrange(self._port_count)
        return [
            {"projector": projector, "port": port, "connected": True}
            for projector, port in self._mapping.items()
        ]


class EibGateway(SensorDevice):
    """EIB/KNX gateway controlling the blinds (reports blind positions)."""

    device_type = "eibgateway"
    default_rate_hz = 0.05

    def __init__(
        self, device_id: str, blind_count: int = 3, rng: Optional[random.Random] = None
    ) -> None:
        super().__init__(device_id, rng)
        self._positions = [self._rng.choice([0, 50, 100]) for _ in range(blind_count)]

    @property
    def schema(self) -> Schema:
        return Schema(
            self._base_columns()
            + [
                ColumnDef(name="blind", data_type=DataType.INTEGER),
                ColumnDef(name="position", data_type=DataType.INTEGER),
            ]
        )

    def sample(self, timestamp: float) -> List[Reading]:
        if self._rng.random() < 0.1:
            index = self._rng.randrange(len(self._positions))
            self._positions[index] = self._rng.choice([0, 25, 50, 75, 100])
        return [
            {"blind": index, "position": position}
            for index, position in enumerate(self._positions)
        ]


def _closest_point(trajectory: Sequence[Reading], timestamp: float) -> Optional[Reading]:
    """Return the trajectory point closest in time to ``timestamp``."""
    if not trajectory:
        return None
    best = None
    best_delta = float("inf")
    # Trajectories are ordered by time; a linear scan with early exit is fine
    # for the simulation sizes used here.
    for point in trajectory:
        delta = abs(point["t"] - timestamp)
        if delta < best_delta:
            best = point
            best_delta = delta
        elif point["t"] > timestamp and delta > best_delta:
            break
    if best is not None and best_delta > 1.0:
        return None
    return best
