"""Common base class for simulated sensor devices."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.streams.stream import SensorStream

Reading = Dict[str, Any]


@dataclass
class SensorReadingBatch:
    """A batch of readings produced by one device over a sampling run."""

    device_id: str
    device_type: str
    readings: List[Reading] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.readings)

    def to_relation(self, schema: Optional[Schema] = None, name: str = "") -> Relation:
        """Materialise the batch as a relation."""
        return Relation.from_rows(self.readings, name=name or self.device_id, schema=schema)


class SensorDevice:
    """Base class for every simulated device.

    Subclasses define :attr:`schema` and implement :meth:`sample` which
    produces the reading(s) for one point in time.  :meth:`generate` drives the
    sampling loop at a fixed rate — the paper quotes capture rates of "up to
    100 times per second"; the defaults below use device-appropriate rates.
    """

    device_type: str = "sensor"
    default_rate_hz: float = 1.0

    def __init__(self, device_id: str, rng: Optional[random.Random] = None) -> None:
        self.device_id = device_id
        self._rng = rng or random.Random(hash(device_id) & 0xFFFFFFFF)

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """Schema of the readings this device produces."""
        raise NotImplementedError

    def sample(self, timestamp: float) -> List[Reading]:
        """Return zero or more readings for time ``timestamp`` (seconds)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # sampling loop
    # ------------------------------------------------------------------
    def generate(
        self, duration_seconds: float, rate_hz: Optional[float] = None
    ) -> SensorReadingBatch:
        """Sample the device for ``duration_seconds`` at ``rate_hz``."""
        rate = rate_hz or self.default_rate_hz
        step = 1.0 / rate
        readings: List[Reading] = []
        timestamp = 0.0
        while timestamp < duration_seconds:
            for reading in self.sample(timestamp):
                reading.setdefault("device_id", self.device_id)
                reading.setdefault("t", round(timestamp, 3))
                readings.append(reading)
            timestamp += step
        return SensorReadingBatch(
            device_id=self.device_id, device_type=self.device_type, readings=readings
        )

    def stream(self, duration_seconds: float, rate_hz: Optional[float] = None) -> SensorStream:
        """Generate readings and load them into a :class:`SensorStream`."""
        batch = self.generate(duration_seconds, rate_hz)
        stream = SensorStream(name=self.device_id, schema=self.schema)
        stream.push_many(batch.readings)
        return stream

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _base_columns() -> List[ColumnDef]:
        from repro.engine.types import DataType

        return [
            ColumnDef(name="device_id", data_type=DataType.TEXT, identifying=False),
            ColumnDef(name="t", data_type=DataType.FLOAT),
        ]
