"""Scenario generators composing devices into complete smart environments.

Two scenarios mirror the paper's application settings:

* :class:`SmartMeetingRoom` — the MuSAMA Smart Appliance Lab (Figure 1) with
  lamps, screens, power sockets, the pen sensor, a thermometer, UbiSense tags
  (one per participant), the SensFloor carpet, VGA sensors and the EIB
  gateway.
* :class:`AalApartment` — the Ambient Assisted Living apartment of the
  fall-detection use case, with UbiSense tags, SensFloor, power sockets and a
  thermometer.

Both produce a :class:`ScenarioData` bundle: the integrated relation ``d``
(the "database d integrating the entire sensor data recorded in our
environment" of Section 4) plus one relation per device table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.database import Database
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation, concat
from repro.engine.types import DataType
from repro.sensors.activity import ActivityTrace, PersonSimulator
from repro.sensors.base import SensorDevice
from repro.sensors.devices import (
    EibGateway,
    LampSensor,
    PenSensor,
    PowerSocketSensor,
    ScreenSensor,
    SensFloor,
    Thermometer,
    UbisenseTag,
    VgaSensor,
)

#: Schema of the integrated sensor relation ``d`` used by the running example.
INTEGRATED_SCHEMA = Schema(
    [
        ColumnDef(name="person_id", data_type=DataType.INTEGER, identifying=True),
        ColumnDef(name="x", data_type=DataType.FLOAT, quasi_identifier=True),
        ColumnDef(name="y", data_type=DataType.FLOAT, quasi_identifier=True),
        ColumnDef(name="z", data_type=DataType.FLOAT, sensitive=True),
        ColumnDef(name="t", data_type=DataType.FLOAT),
        ColumnDef(name="valid", data_type=DataType.BOOLEAN),
        ColumnDef(name="activity", data_type=DataType.TEXT, sensitive=True),
    ]
)


@dataclass
class ScenarioData:
    """Everything a scenario run produces."""

    name: str
    integrated: Relation
    device_tables: Dict[str, Relation] = field(default_factory=dict)
    traces: List[ActivityTrace] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        """Total row count across the integrated table and all device tables."""
        return len(self.integrated) + sum(len(t) for t in self.device_tables.values())

    def to_database(self, name: str = "apartment") -> Database:
        """Load the scenario into a fresh :class:`Database`.

        The integrated relation is registered as ``d`` (and ``stream`` as an
        alias, matching the sensor-level query of the use case); every device
        table keeps its own name.
        """
        database = Database(name=name)
        database.register("d", self.integrated)
        database.register("stream", self.integrated)
        for table_name, relation in self.device_tables.items():
            database.register(table_name, relation)
        return database


class _ScenarioBase:
    """Shared machinery of the two scenario generators."""

    scenario_kind = "meeting"
    room_width = 8.0
    room_depth = 6.0

    def __init__(self, person_count: int, seed: int = 42) -> None:
        if person_count < 1:
            raise ValueError("person_count must be at least 1")
        self.person_count = person_count
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def _build_people(self, duration: float) -> tuple[List[UbisenseTag], List[ActivityTrace]]:
        tags: List[UbisenseTag] = []
        traces: List[ActivityTrace] = []
        for person_id in range(1, self.person_count + 1):
            person = PersonSimulator(
                person_id=person_id,
                room_width=self.room_width,
                room_depth=self.room_depth,
                scenario=self.scenario_kind,
                rng=random.Random(self.seed * 1000 + person_id),
            )
            trace = person.generate_trace(duration)
            traces.append(trace)
            tags.append(
                UbisenseTag(
                    device_id=f"ubisense_{person_id}",
                    person=person,
                    trace=trace,
                    rng=random.Random(self.seed * 2000 + person_id),
                )
            )
        return tags, traces

    def _collect(
        self,
        devices: List[SensorDevice],
        duration: float,
        rate_overrides: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Relation]:
        tables: Dict[str, Relation] = {}
        rate_overrides = rate_overrides or {}
        for device in devices:
            rate = rate_overrides.get(device.device_type)
            batch = device.generate(duration, rate_hz=rate)
            relation = batch.to_relation(schema=device.schema, name=device.device_type)
            existing = tables.get(device.device_type)
            if existing is None:
                tables[device.device_type] = relation
            else:
                tables[device.device_type] = concat([existing, relation], name=device.device_type)
        return tables

    @staticmethod
    def _integrated_from_tags(tables: Dict[str, Relation]) -> Relation:
        ubisense = tables.get("ubisense")
        if ubisense is None:
            return Relation.empty(INTEGRATED_SCHEMA, name="d")
        rows = []
        for row in ubisense:
            rows.append(
                {
                    "person_id": row.get("person_id"),
                    "x": row.get("x"),
                    "y": row.get("y"),
                    "z": row.get("z"),
                    "t": row.get("t"),
                    "valid": row.get("valid"),
                    "activity": row.get("activity"),
                }
            )
        return Relation(schema=INTEGRATED_SCHEMA, rows=rows, name="d")


class SmartMeetingRoom(_ScenarioBase):
    """The MuSAMA Smart Appliance Lab scenario."""

    scenario_kind = "meeting"

    def __init__(
        self,
        person_count: int = 6,
        lamp_count: int = 6,
        screen_count: int = 2,
        socket_count: int = 8,
        seed: int = 42,
    ) -> None:
        super().__init__(person_count=person_count, seed=seed)
        self.lamp_count = lamp_count
        self.screen_count = screen_count
        self.socket_count = socket_count

    def generate(self, duration_seconds: float = 120.0, position_rate_hz: float = 10.0) -> ScenarioData:
        """Run a meeting of ``duration_seconds`` and return all recorded data."""
        tags, traces = self._build_people(duration_seconds)
        devices: List[SensorDevice] = list(tags)
        devices.extend(
            LampSensor(f"lamp_{i}", rng=random.Random(self.seed + 10 + i))
            for i in range(self.lamp_count)
        )
        devices.extend(
            ScreenSensor(f"screen_{i}", rng=random.Random(self.seed + 30 + i))
            for i in range(self.screen_count)
        )
        devices.extend(
            PowerSocketSensor(
                f"socket_{i}",
                base_load_ma=self._rng.uniform(50, 400),
                rng=random.Random(self.seed + 50 + i),
            )
            for i in range(self.socket_count)
        )
        devices.append(PenSensor("pensensor_0", rng=random.Random(self.seed + 70)))
        devices.append(Thermometer("thermometer_0", rng=random.Random(self.seed + 80)))
        devices.append(VgaSensor("vgasensor_0", rng=random.Random(self.seed + 90)))
        devices.append(EibGateway("eibgateway_0", rng=random.Random(self.seed + 100)))
        devices.append(
            SensFloor(
                "sensfloor_0",
                trajectories=[tag.trajectory for tag in tags],
                rng=random.Random(self.seed + 110),
            )
        )

        tables = self._collect(
            devices, duration_seconds, rate_overrides={"ubisense": position_rate_hz}
        )
        integrated = self._integrated_from_tags(tables)
        return ScenarioData(
            name="smart_meeting_room",
            integrated=integrated,
            device_tables=tables,
            traces=traces,
        )


class AalApartment(_ScenarioBase):
    """The Ambient Assisted Living apartment (fall detection) scenario."""

    scenario_kind = "apartment"
    room_width = 10.0
    room_depth = 8.0

    def __init__(
        self,
        person_count: int = 1,
        socket_count: int = 12,
        seed: int = 7,
    ) -> None:
        super().__init__(person_count=person_count, seed=seed)
        self.socket_count = socket_count

    def generate(self, duration_seconds: float = 300.0, position_rate_hz: float = 10.0) -> ScenarioData:
        """Simulate apartment life for ``duration_seconds``."""
        tags, traces = self._build_people(duration_seconds)
        devices: List[SensorDevice] = list(tags)
        devices.extend(
            PowerSocketSensor(
                f"socket_{i}",
                base_load_ma=self._rng.uniform(20, 600),
                rng=random.Random(self.seed + 50 + i),
            )
            for i in range(self.socket_count)
        )
        devices.append(Thermometer("thermometer_0", rng=random.Random(self.seed + 80)))
        devices.append(
            SensFloor(
                "sensfloor_0",
                trajectories=[tag.trajectory for tag in tags],
                area=(1.0, 1.0, 9.0, 7.0),
                rng=random.Random(self.seed + 110),
            )
        )

        tables = self._collect(
            devices, duration_seconds, rate_overrides={"ubisense": position_rate_hz}
        )
        integrated = self._integrated_from_tags(tables)
        return ScenarioData(
            name="aal_apartment",
            integrated=integrated,
            device_tables=tables,
            traces=traces,
        )


def quantize_positions(relation: Relation, cell_size: float = 0.5) -> Relation:
    """Snap x/y coordinates to a grid of ``cell_size`` metres.

    The policy of Figure 4 groups the z-aggregation by x and y; on raw
    continuous coordinates every group would contain a single reading and the
    ``SUM(z) > 100`` guard would eliminate everything.  Quantising positions to
    zone coordinates (as a localisation system configured for zone-level
    output would deliver them) produces the group sizes the paper's use case
    assumes.
    """
    def snap(row):
        new_row = dict(row)
        for key in ("x", "y"):
            value = new_row.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                new_row[key] = round(round(value / cell_size) * cell_size, 3)
        return new_row

    return relation.map_rows(snap)


def fall_events(data: ScenarioData) -> List[dict]:
    """Extract ground-truth fall events from a scenario (for examples/tests)."""
    events = []
    for trace in data.traces:
        for segment in trace.segments:
            if segment.activity.value == "fall":
                events.append(
                    {
                        "person_id": trace.person_id,
                        "start": segment.start,
                        "end": segment.end,
                    }
                )
    return events
