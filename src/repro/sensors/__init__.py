"""Smart-environment simulators.

The paper evaluates its techniques on recordings from the MuSAMA Smart
Appliance Lab (Figure 1) — data we do not have.  This subpackage substitutes a
parameterised simulator for every sensor class the paper lists in Section 1:

* dimmable lamps and motorised screens,
* power sockets reporting current draw in milliamperes,
* the Smart Board pen sensor,
* a thermometer,
* UbiSense tags delivering (x, y, z) positions per person,
* the SensFloor pressure-sensitive carpet,
* Extron/VGA port sensors and the EIB gateway controlling the blinds.

Two scenario generators compose these devices into complete environments: the
Smart Meeting Room of the MuSAMA lab and an AAL apartment for the
fall-detection use case.  Both produce the integrated sensor relation ``d``
that the queries of Section 4 are issued against, as well as the per-device
tables.
"""

from repro.sensors.activity import Activity, ActivityTrace, PersonSimulator
from repro.sensors.base import SensorDevice, SensorReadingBatch
from repro.sensors.devices import (
    EibGateway,
    LampSensor,
    PenSensor,
    PowerSocketSensor,
    ScreenSensor,
    SensFloor,
    Thermometer,
    UbisenseTag,
    VgaSensor,
)
from repro.sensors.scenario import (
    AalApartment,
    ScenarioData,
    SmartMeetingRoom,
)

__all__ = [
    "Activity",
    "ActivityTrace",
    "PersonSimulator",
    "SensorDevice",
    "SensorReadingBatch",
    "LampSensor",
    "ScreenSensor",
    "PowerSocketSensor",
    "PenSensor",
    "Thermometer",
    "UbisenseTag",
    "SensFloor",
    "VgaSensor",
    "EibGateway",
    "SmartMeetingRoom",
    "AalApartment",
    "ScenarioData",
]
