"""Activity and movement model for simulated persons.

The paper's analysis queries feed an activity- and intention-recognition
algorithm ([KNY+14]); the interesting activity classes for the use cases are
*walk*, *sit*, *stand*, *present* (at the Smart Board) and — for the AAL
apartment — *fall*.  The :class:`PersonSimulator` produces a continuous
(x, y, z) trajectory labelled with these activities, which the UbiSense tag
and SensFloor simulators then sample.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class Activity(enum.Enum):
    """Activity classes used by the recognition workloads."""

    WALK = "walk"
    STAND = "stand"
    SIT = "sit"
    PRESENT = "present"
    FALL = "fall"
    LIE = "lie"

    @property
    def typical_height(self) -> float:
        """Typical z-coordinate (tag height in metres) for the activity."""
        return {
            Activity.WALK: 1.4,
            Activity.STAND: 1.45,
            Activity.SIT: 1.0,
            Activity.PRESENT: 1.5,
            Activity.FALL: 0.4,
            Activity.LIE: 0.2,
        }[self]


@dataclass
class ActivitySegment:
    """One contiguous stretch of a single activity."""

    activity: Activity
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start


@dataclass
class ActivityTrace:
    """The ground-truth activity timeline of one person."""

    person_id: int
    segments: List[ActivitySegment] = field(default_factory=list)

    def activity_at(self, timestamp: float) -> Optional[Activity]:
        """Return the activity at ``timestamp`` (None outside the trace)."""
        for segment in self.segments:
            if segment.start <= timestamp < segment.end:
                return segment.activity
        return None

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        if not self.segments:
            return 0.0
        return self.segments[-1].end - self.segments[0].start


#: Transition weights between activities for the meeting-room scenario.
_MEETING_TRANSITIONS: Dict[Activity, Sequence[Tuple[Activity, float]]] = {
    Activity.WALK: ((Activity.SIT, 0.5), (Activity.STAND, 0.3), (Activity.PRESENT, 0.2)),
    Activity.SIT: ((Activity.SIT, 0.5), (Activity.WALK, 0.3), (Activity.STAND, 0.2)),
    Activity.STAND: ((Activity.WALK, 0.5), (Activity.SIT, 0.3), (Activity.PRESENT, 0.2)),
    Activity.PRESENT: ((Activity.PRESENT, 0.4), (Activity.WALK, 0.4), (Activity.SIT, 0.2)),
}

#: Transition weights for the AAL apartment scenario (includes falls).
_APARTMENT_TRANSITIONS: Dict[Activity, Sequence[Tuple[Activity, float]]] = {
    Activity.WALK: (
        (Activity.SIT, 0.35),
        (Activity.STAND, 0.3),
        (Activity.LIE, 0.2),
        (Activity.FALL, 0.15),
    ),
    Activity.SIT: ((Activity.SIT, 0.4), (Activity.WALK, 0.4), (Activity.STAND, 0.2)),
    Activity.STAND: ((Activity.WALK, 0.6), (Activity.SIT, 0.4)),
    Activity.LIE: ((Activity.LIE, 0.5), (Activity.STAND, 0.5)),
    Activity.FALL: ((Activity.LIE, 0.7), (Activity.STAND, 0.3)),
}


class PersonSimulator:
    """Simulate one person's movement and activity inside a rectangular room."""

    def __init__(
        self,
        person_id: int,
        room_width: float = 8.0,
        room_depth: float = 6.0,
        scenario: str = "meeting",
        rng: Optional[random.Random] = None,
    ) -> None:
        if scenario not in {"meeting", "apartment"}:
            raise ValueError(f"Unknown scenario: {scenario}")
        self.person_id = person_id
        self.room_width = room_width
        self.room_depth = room_depth
        self.scenario = scenario
        self._rng = rng or random.Random(person_id)
        self._position = (
            self._rng.uniform(0.5, room_width - 0.5),
            self._rng.uniform(0.5, room_depth - 0.5),
        )

    # ------------------------------------------------------------------
    # activity timeline
    # ------------------------------------------------------------------
    def generate_trace(self, duration: float, mean_segment: float = 30.0) -> ActivityTrace:
        """Generate a ground-truth activity timeline of ``duration`` seconds."""
        transitions = (
            _MEETING_TRANSITIONS if self.scenario == "meeting" else _APARTMENT_TRANSITIONS
        )
        segments: List[ActivitySegment] = []
        current = Activity.WALK
        timestamp = 0.0
        while timestamp < duration:
            segment_length = max(2.0, self._rng.expovariate(1.0 / mean_segment))
            # Falls are short events.
            if current is Activity.FALL:
                segment_length = self._rng.uniform(1.0, 4.0)
            end = min(duration, timestamp + segment_length)
            segments.append(ActivitySegment(activity=current, start=timestamp, end=end))
            timestamp = end
            current = self._next_activity(current, transitions)
        return ActivityTrace(person_id=self.person_id, segments=segments)

    def _next_activity(
        self,
        current: Activity,
        transitions: Dict[Activity, Sequence[Tuple[Activity, float]]],
    ) -> Activity:
        options = transitions.get(current)
        if not options:
            return Activity.WALK
        activities = [activity for activity, _ in options]
        weights = [weight for _, weight in options]
        return self._rng.choices(activities, weights=weights, k=1)[0]

    # ------------------------------------------------------------------
    # positions
    # ------------------------------------------------------------------
    def positions(
        self, trace: ActivityTrace, rate_hz: float = 10.0
    ) -> List[Dict[str, float]]:
        """Sample the trajectory implied by ``trace`` at ``rate_hz``.

        Returns dict rows with keys ``t``, ``x``, ``y``, ``z``, ``person_id``
        and ``activity`` (the ground-truth label, used for evaluating the
        recognition workload, never shipped by the rewritten queries).
        """
        rows: List[Dict[str, float]] = []
        step = 1.0 / rate_hz
        timestamp = 0.0
        x, y = self._position
        heading = self._rng.uniform(0.0, 2.0 * math.pi)
        duration = trace.duration
        while timestamp < duration:
            activity = trace.activity_at(timestamp) or Activity.STAND
            if activity is Activity.WALK:
                speed = self._rng.uniform(0.6, 1.4)
                heading += self._rng.gauss(0.0, 0.3)
                x += math.cos(heading) * speed * step
                y += math.sin(heading) * speed * step
                x, heading = _bounce(x, heading, 0.2, self.room_width - 0.2, axis="x")
                y, heading = _bounce(y, heading, 0.2, self.room_depth - 0.2, axis="y")
            else:
                # Small jitter while (roughly) stationary.
                x += self._rng.gauss(0.0, 0.02)
                y += self._rng.gauss(0.0, 0.02)
                x = min(max(x, 0.2), self.room_width - 0.2)
                y = min(max(y, 0.2), self.room_depth - 0.2)
            z = max(0.05, activity.typical_height + self._rng.gauss(0.0, 0.05))
            rows.append(
                {
                    "t": round(timestamp, 3),
                    "x": round(x, 3),
                    "y": round(y, 3),
                    "z": round(z, 3),
                    "person_id": self.person_id,
                    "activity": activity.value,
                }
            )
            timestamp += step
        self._position = (x, y)
        return rows


def _bounce(value: float, heading: float, low: float, high: float, axis: str) -> Tuple[float, float]:
    """Reflect a coordinate at the room walls, flipping the heading."""
    if value < low:
        value = low + (low - value)
        heading = math.pi - heading if axis == "x" else -heading
    elif value > high:
        value = high - (value - high)
        heading = math.pi - heading if axis == "x" else -heading
    return value, heading
