"""Exception hierarchy for the relational engine."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for every engine error."""


class SchemaError(EngineError):
    """Raised for schema violations (unknown columns, duplicate tables...)."""


class ExecutionError(EngineError):
    """Raised when a query cannot be evaluated."""
