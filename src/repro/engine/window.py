"""Window function evaluation.

The paper's running example computes ``regr_intercept(y, x) OVER (PARTITION BY
z ORDER BY t)`` — an aggregate used as a window function.  This module
evaluates such calls (and the usual ranking functions) over the rows produced
by the executor's FROM/WHERE stage.

When the executor passes its :class:`~repro.engine.compile.ExpressionCompiler`
the partition/order/argument expressions are compiled once instead of being
tree-walked per row, and running frames (ORDER BY present) feed incremental
accumulators where those reproduce the batch result exactly — turning the
O(n²) prefix recomputation into a single pass for the common aggregates.
Without a compiler the original interpreted evaluation runs unchanged, which
keeps it usable as the differential oracle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.aggregates import compute_aggregate, is_known_aggregate, make_accumulator
from repro.engine.errors import ExecutionError
from repro.engine.evaluator import EvaluationContext, evaluate
from repro.sql import ast
from repro.sql.render import render_expression

_RANKING_FUNCTIONS = {
    "ROW_NUMBER",
    "RANK",
    "DENSE_RANK",
    "NTILE",
    "LAG",
    "LEAD",
    "FIRST_VALUE",
    "LAST_VALUE",
}

#: Evaluates one expression against a row context.
_EvalFn = Callable[[EvaluationContext], Any]


def is_window_capable(name: str) -> bool:
    """Return True when ``name`` may be used with an OVER clause."""
    return name.upper() in _RANKING_FUNCTIONS or is_known_aggregate(name)


class _SortKey:
    """Sort key wrapper that orders None before everything else."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _make_eval(expression: ast.Expression, compiler: Optional[Any]) -> _EvalFn:
    if compiler is not None:
        return compiler.compile(expression)
    return lambda context, _expression=expression: evaluate(_expression, context)


def compute_window_values(
    calls: Sequence[ast.FunctionCall],
    scopes: List[Dict[str, Any]],
    parent: EvaluationContext | None = None,
    compiler: Optional[Any] = None,
) -> Dict[str, List[Any]]:
    """Compute the value of each windowed call for every row.

    Args:
        calls: Window function calls (each must have ``window`` set).
        scopes: One evaluation scope per input row, in input order.
        parent: Optional enclosing context for correlated references.
        compiler: Optional :class:`~repro.engine.compile.ExpressionCompiler`;
            when given, expressions run compiled and running aggregates use
            incremental accumulators.

    Returns:
        Mapping from ``render_expression(call)`` to the list of per-row values
        aligned with ``scopes``.
    """
    results: Dict[str, List[Any]] = {}
    for call in calls:
        if call.window is None:
            raise ExecutionError("compute_window_values expects windowed calls")
        key = render_expression(call)
        if key in results:
            continue
        results[key] = _compute_single_window(call, scopes, parent, compiler)
    return results


def _compute_single_window(
    call: ast.FunctionCall,
    scopes: List[Dict[str, Any]],
    parent: EvaluationContext | None,
    compiler: Optional[Any],
) -> List[Any]:
    window = call.window
    assert window is not None
    contexts = [EvaluationContext(scope=scope, parent=parent) for scope in scopes]

    # Partition the row indices.
    partition_fns = [_make_eval(expression, compiler) for expression in window.partition_by]
    partitions: Dict[Tuple[Any, ...], List[int]] = {}
    for index, context in enumerate(contexts):
        partition_key = tuple(_freeze(fn(context)) for fn in partition_fns)
        partitions.setdefault(partition_key, []).append(index)

    values: List[Any] = [None] * len(scopes)
    for indices in partitions.values():
        ordered = _order_partition(indices, contexts, window.order_by, compiler)
        _fill_partition(
            call, ordered, contexts, values, has_order=bool(window.order_by), compiler=compiler
        )
    return values


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _order_partition(
    indices: List[int],
    contexts: List[EvaluationContext],
    order_by: Sequence[ast.OrderItem],
    compiler: Optional[Any],
) -> List[int]:
    if not order_by:
        return list(indices)

    order_fns = [_make_eval(item.expression, compiler) for item in order_by]

    def sort_key(index: int) -> Tuple:
        keys = []
        for fn, item in zip(order_fns, order_by):
            key = _SortKey(fn(contexts[index]))
            keys.append(key if item.ascending else _Reversed(key))
        return tuple(keys)

    return sorted(indices, key=sort_key)


class _Reversed:
    """Inverts the comparison of a wrapped sort key (for DESC ordering)."""

    __slots__ = ("key",)

    def __init__(self, key: _SortKey) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.key == other.key


def _fill_partition(
    call: ast.FunctionCall,
    ordered_indices: List[int],
    contexts: List[EvaluationContext],
    values: List[Any],
    has_order: bool,
    compiler: Optional[Any] = None,
) -> None:
    name = call.name.upper()

    if name in _RANKING_FUNCTIONS:
        _fill_ranking(call, name, ordered_indices, contexts, values, compiler)
        return

    if not is_known_aggregate(name):
        raise ExecutionError(f"Function {name} cannot be used as a window function")

    # Aggregate over a window.  With an ORDER BY the default frame is the
    # running prefix (UNBOUNDED PRECEDING .. CURRENT ROW); without it the
    # aggregate covers the whole partition.
    is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
    if is_star:
        argument_lists = [[1] for _ in ordered_indices]
    else:
        argument_fns = [_make_eval(argument, compiler) for argument in call.arguments]
        argument_lists = [
            [fn(contexts[i]) for fn in argument_fns] for i in ordered_indices
        ]

    if not has_order:
        columns = _transpose(argument_lists, len(call.arguments) if not is_star else 1)
        total = compute_aggregate(name, columns, is_star=is_star, distinct=call.distinct)
        for index in ordered_indices:
            values[index] = total
        return

    if compiler is not None:
        # Running frame via an accumulator: one pass instead of recomputing
        # every prefix.  Buffered accumulators still delegate to the batch
        # functions, so the emitted values match the oracle exactly.
        accumulator = make_accumulator(
            name,
            is_star=is_star,
            distinct=call.distinct,
            arg_count=len(call.arguments) if not is_star and call.arguments else 1,
        )
        for position, index in enumerate(ordered_indices):
            accumulator.add(tuple(argument_lists[position]))
            values[index] = accumulator.result()
        return

    for position, index in enumerate(ordered_indices):
        prefix = argument_lists[: position + 1]
        columns = _transpose(prefix, len(call.arguments) if not is_star else 1)
        values[index] = compute_aggregate(
            name, columns, is_star=is_star, distinct=call.distinct
        )


def _transpose(rows: List[List[Any]], width: int) -> List[List[Any]]:
    if not rows:
        return [[] for _ in range(max(width, 1))]
    return [list(column) for column in zip(*rows)]


def _fill_ranking(
    call: ast.FunctionCall,
    name: str,
    ordered_indices: List[int],
    contexts: List[EvaluationContext],
    values: List[Any],
    compiler: Optional[Any] = None,
) -> None:
    window = call.window
    assert window is not None
    order_fns = [_make_eval(item.expression, compiler) for item in window.order_by]
    argument_fns = [_make_eval(argument, compiler) for argument in call.arguments]

    def order_key(index: int) -> Tuple:
        return tuple(_freeze(fn(contexts[index])) for fn in order_fns)

    if name == "ROW_NUMBER":
        for position, index in enumerate(ordered_indices, start=1):
            values[index] = position
        return
    if name in {"RANK", "DENSE_RANK"}:
        rank = 0
        dense_rank = 0
        previous_key: Any = object()
        for position, index in enumerate(ordered_indices, start=1):
            key = order_key(index)
            if key != previous_key:
                rank = position
                dense_rank += 1
                previous_key = key
            values[index] = rank if name == "RANK" else dense_rank
        return
    if name in {"LAG", "LEAD"}:
        offset = 1
        default = None
        if len(call.arguments) > 1:
            offset_value = argument_fns[1](contexts[ordered_indices[0]])
            offset = int(offset_value) if offset_value is not None else 1
        if len(call.arguments) > 2:
            default = argument_fns[2](contexts[ordered_indices[0]])
        for position, index in enumerate(ordered_indices):
            source = position - offset if name == "LAG" else position + offset
            if 0 <= source < len(ordered_indices):
                values[index] = argument_fns[0](contexts[ordered_indices[source]])
            else:
                values[index] = default
        return
    if name == "FIRST_VALUE":
        first = argument_fns[0](contexts[ordered_indices[0]])
        for index in ordered_indices:
            values[index] = first
        return
    if name == "LAST_VALUE":
        last = argument_fns[0](contexts[ordered_indices[-1]])
        for index in ordered_indices:
            values[index] = last
        return
    if name == "NTILE":
        buckets = int(argument_fns[0](contexts[ordered_indices[0]]))
        count = len(ordered_indices)
        for position, index in enumerate(ordered_indices):
            values[index] = (position * buckets) // count + 1
        return
    raise ExecutionError(f"Unsupported ranking function: {name}")
