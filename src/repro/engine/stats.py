"""Per-column statistics and the optimizer toggle.

:class:`ColumnStats` summarizes one column — row/null counts, min/max, and
a distinct-count estimate from a fixed-size KMV (k-minimum-values) sketch
that stays *exact* for small domains (fewer distinct values than the sketch
size).  :class:`TableStats` materializes column summaries lazily per
relation and supports incremental row observation so appends do not force a
full recompute.  Both are order-independent: statistics built row-by-row
equal statistics recomputed from scratch over the same multiset of values,
which is what lets :class:`~repro.engine.table.Relation` keep them fresh
across append/extend/union/slice without ever diverging from a rebuild
(property-tested in ``tests/test_optimizer.py``).

The module also owns the cost-based-optimizer toggle mirroring
``vectorized_scans``: ``optimizer_mode(False)`` (or
``set_default_optimizer(False)``) restores the engine's syntactic plan
choices — written conjunct order, right-side hash builds, the fixed
partial-aggregation ratio — as a differential ablation arm.  Results are
byte-identical either way; only the work order changes.
"""

from __future__ import annotations

import heapq
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence

__all__ = [
    "ColumnStats",
    "TableStats",
    "column_stats",
    "optimizer_enabled",
    "optimizer_mode",
    "optimizer_stats",
    "set_default_optimizer",
    "value_hash",
]


# --------------------------------------------------------------------------
# Optimizer toggle (global default + thread-local override), mirroring the
# vectorized-scans knob so ablation benchmarks and worker threads compose.

_default_enabled = True
_thread_state = threading.local()


def set_default_optimizer(enabled: bool) -> None:
    """Set the process-wide default for statistics-driven planning."""
    global _default_enabled
    _default_enabled = bool(enabled)


def optimizer_enabled() -> bool:
    """Is cost-based planning active on this thread right now?"""
    override = getattr(_thread_state, "enabled", None)
    if override is None:
        return _default_enabled
    return override


@contextmanager
def optimizer_mode(enabled: bool) -> Iterator[None]:
    """Scoped thread-local override of the optimizer toggle."""
    previous = getattr(_thread_state, "enabled", None)
    _thread_state.enabled = bool(enabled)
    try:
        yield
    finally:
        _thread_state.enabled = previous


# --------------------------------------------------------------------------
# Hashing + the KMV distinct sketch.

#: Sketch capacity: distinct counts up to this stay exact; beyond it the
#: k-minimum-values estimator takes over (error ~1/sqrt(k) ~ 6%).
_SKETCH_SIZE = 256

_MASK = (1 << 64) - 1
_HASH_SPACE = 1 << 64


def _mix(h: int) -> int:
    """64-bit avalanche finalizer (splitmix64) over Python's raw hash."""
    h &= _MASK
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK
    h ^= h >> 33
    return h


def value_hash(value: Any) -> int:
    """A well-mixed 64-bit hash of any cell value.

    Python's ``hash`` keeps numeric cross-type equality (``hash(5) ==
    hash(5.0)``), which the sketch wants: typed-column storage may coerce a
    value the row path keeps as-is, and stats must agree either way.
    Unhashable values fall back to their ``repr``.
    """
    try:
        h = hash(value)
    except TypeError:
        h = hash(repr(value))
    return _mix(h)


class _Sketch:
    """KMV sketch: retains the :data:`_SKETCH_SIZE` smallest value hashes.

    The retained set is a pure function of the *set* of observed hashes
    (the k smallest, in any observation order), and ``pruned`` flips — in
    every order — exactly when more than k distinct hashes were seen, so
    sketch state is order-independent: the property the incremental ==
    from-scratch stats invariant rests on.
    """

    __slots__ = ("_members", "_heap", "pruned")

    def __init__(self) -> None:
        self._members: set = set()
        #: Negated max-heap over members: ``-_heap[0]`` is the largest
        #: retained hash (the k-th smallest overall once pruned).
        self._heap: list = []
        self.pruned = False

    def observe(self, h: int) -> None:
        members = self._members
        if h in members:
            return
        if len(members) < _SKETCH_SIZE:
            members.add(h)
            heapq.heappush(self._heap, -h)
            return
        self.pruned = True
        largest = -self._heap[0]
        if h >= largest:
            return
        members.discard(largest)
        members.add(h)
        heapq.heapreplace(self._heap, -h)

    def estimate(self) -> int:
        if not self.pruned:
            return len(self._members)
        kth = -self._heap[0]
        if kth <= 0:
            return _SKETCH_SIZE
        # Classic KMV: the k-th smallest of d uniform hashes sits near
        # k/d of the hash space, so d ~ (k-1) * space / kth.
        estimated = ((_SKETCH_SIZE - 1) * _HASH_SPACE) // kth
        return max(_SKETCH_SIZE + 1, estimated)

    def state(self):
        return (frozenset(self._members), self.pruned)


def _clamp(value: float, minimum: float = 0.0) -> float:
    return min(1.0, max(minimum, value))


def _plain_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class ColumnStats:
    """Incremental summary of one column's values.

    Tracks row/null counts, a running min/max (abandoned the first time two
    values fail to compare — mixed-type columns stay summarized, just
    without range information), and the distinct sketch.  Also hosts the
    selectivity estimators the vectorized planner orders conjuncts with.
    """

    __slots__ = ("rows", "nulls", "minimum", "maximum", "comparable", "_sketch")

    def __init__(self) -> None:
        self.rows = 0
        self.nulls = 0
        self.minimum: Any = None
        self.maximum: Any = None
        self.comparable = True
        self._sketch = _Sketch()

    # -- maintenance -------------------------------------------------------

    def observe(self, value: Any) -> None:
        self.rows += 1
        if value is None:
            self.nulls += 1
            return
        if self.comparable:
            if self.rows - self.nulls == 1:
                self.minimum = value
                self.maximum = value
            else:
                try:
                    if value < self.minimum:
                        self.minimum = value
                    elif value > self.maximum:
                        self.maximum = value
                except TypeError:
                    self.comparable = False
                    self.minimum = None
                    self.maximum = None
        self._sketch.observe(value_hash(value))

    # -- derived quantities ------------------------------------------------

    @property
    def non_null(self) -> int:
        return self.rows - self.nulls

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.rows if self.rows else 0.0

    @property
    def distinct(self) -> int:
        """Estimated distinct non-null values (exact below the sketch size)."""
        return min(self._sketch.estimate(), self.non_null)

    @property
    def distinct_exact(self) -> bool:
        return not self._sketch.pruned

    # -- selectivity model -------------------------------------------------

    def eq_fraction(self, value: Any) -> float:
        """Estimated fraction of rows with ``column = value``."""
        if self.rows == 0 or value is None:
            return 0.0
        if self.comparable and self.minimum is not None:
            try:
                if value < self.minimum or value > self.maximum:
                    return 0.0
            except TypeError:
                pass
        return _clamp((self.non_null / self.rows) / max(self.distinct, 1))

    def range_fraction(self, op: str, value: Any) -> float:
        """Estimated fraction satisfying ``column <op> value``.

        Numeric min/max interpolation assuming a uniform spread; non-numeric
        or range-less columns fall back to the classic 1/3 guess scaled by
        the non-null fraction.
        """
        if self.rows == 0 or value is None:
            return 0.0
        non_null_frac = self.non_null / self.rows
        lo, hi = self.minimum, self.maximum
        if (
            not self.comparable
            or not _plain_number(lo)
            or not _plain_number(hi)
            or not _plain_number(value)
        ):
            return _clamp(non_null_frac / 3.0)
        width = hi - lo
        if op in ("<", "<="):
            if value < lo or (value == lo and op == "<"):
                return 0.0
            if value >= hi or width <= 0:
                base = non_null_frac
            else:
                base = non_null_frac * ((value - lo) / width)
        elif op in (">", ">="):
            if value > hi or (value == hi and op == ">"):
                return 0.0
            if value <= lo or width <= 0:
                base = non_null_frac
            else:
                base = non_null_frac * ((hi - value) / width)
        else:
            return _clamp(non_null_frac / 3.0)
        if op in ("<=", ">="):
            base = max(base, self.eq_fraction(value))
        return _clamp(base)

    def between_fraction(self, low: Any, high: Any) -> float:
        """Estimated fraction satisfying ``column BETWEEN low AND high``."""
        if self.rows == 0 or low is None or high is None:
            return 0.0
        le = self.range_fraction("<=", high)
        ge = self.range_fraction(">=", low)
        non_null_frac = self.non_null / self.rows
        return _clamp(le + ge - non_null_frac)

    # -- equality (for the incremental == from-scratch invariant) ----------

    def state(self):
        return (
            self.rows,
            self.nulls,
            self.minimum,
            self.maximum,
            self.comparable,
            self._sketch.state(),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnStats) and self.state() == other.state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnStats(rows={self.rows}, nulls={self.nulls}, "
            f"min={self.minimum!r}, max={self.maximum!r}, "
            f"distinct~{self.distinct})"
        )


def column_stats(values: Sequence[Any]) -> ColumnStats:
    """Build :class:`ColumnStats` over a column array from scratch.

    Typed int64/float64 backings take a buffer-speed path: builtin min/max
    straight over the ``array`` buffer (the same left-to-right fold the
    incremental path performs, so results agree even for degenerate floats)
    plus a tight hash loop.  Everything else — generic lists, bool-typed
    columns — runs the plain observe loop.
    """
    from repro.engine.columns import FLOAT64, INT64, TypedColumn

    stats = ColumnStats()
    if isinstance(values, TypedColumn) and values.typecode in (INT64, FLOAT64):
        data = values.data_array()
        if not values.null_count:
            n = len(data)
            stats.rows = n
            if n:
                stats.minimum = min(data)
                stats.maximum = max(data)
            observe = stats._sketch.observe
            for value in data:
                observe(value_hash(value))
            return stats
        nulls = values.null_map()
        for index, value in enumerate(data):
            if nulls[index]:
                stats.rows += 1
                stats.nulls += 1
            else:
                stats.observe(value)
        return stats
    for value in values:
        stats.observe(value)
    return stats


class TableStats:
    """Lazy per-relation column statistics with incremental row feeding.

    Column summaries are computed on first request (from the relation's
    column arrays, at its then-current version) and cached by lowered name;
    :meth:`observe_row` keeps *already-computed* summaries fresh as rows
    append, while columns never asked about stay uncomputed.
    """

    __slots__ = ("rows", "_relation", "_names", "_columns")

    def __init__(self, relation) -> None:
        self.rows = len(relation)
        self._relation = relation
        self._names = {name.lower(): name for name in relation.schema.names}
        self._columns: Dict[str, Optional[ColumnStats]] = {}

    def column(self, name: str) -> Optional[ColumnStats]:
        """Stats for ``name`` (case-insensitive); ``None`` if no such column."""
        key = name.lower()
        if key in self._columns:
            return self._columns[key]
        original = self._names.get(key)
        stats: Optional[ColumnStats] = None
        if original is not None:
            values = self._relation.column_array(original)
            if values is not None:
                stats = column_stats(values)
        self._columns[key] = stats
        return stats

    def observe_row(self, row: Dict[str, Any]) -> None:
        """Fold one appended row into every already-computed column summary."""
        self.rows += 1
        if not self._columns:
            return
        lowered = {key.lower(): value for key, value in row.items()}
        for key, stats in self._columns.items():
            if stats is not None:
                stats.observe(lowered.get(key))


# --------------------------------------------------------------------------
# Optimizer decision counters (plain module ints, probe-read — the hot
# paths bump attributes and the metrics registry pulls on snapshot).


class OptimizerStats:
    """Process-wide counters of cost-based plan decisions."""

    __slots__ = (
        "conjunct_reorders",
        "or_scans",
        "order_by_scans",
        "distinct_scans",
        "expr_compare_scans",
        "build_side_flips",
        "nested_loop_joins",
        "adaptive_partial",
        "adaptive_fallback",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


optimizer_stats = OptimizerStats()


def _register_probes() -> None:
    from repro.obs.metrics import registry as _registry

    for name in OptimizerStats.__slots__:
        _registry.probe(
            f"engine.optimizer.{name}",
            lambda name=name: getattr(optimizer_stats, name),
        )


_register_probes()
