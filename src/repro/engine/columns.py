"""Typed column backing for :class:`~repro.engine.table.Relation`.

Relations store one array per column.  Historically every column was a plain
Python list of boxed values; this module adds an opt-in typed backing for
int/float/bool columns: a C-level ``array('q')`` / ``array('d')`` /
``array('b')`` of unboxed cells plus a NULL map (one byte per row, ``1`` =
NULL).  The typed backing is chosen per column at construction (guided by
the schema's declared type, verified against the actual values) and is
preserved through slicing, copies, gathers and concatenation — all of which
run at ``memcpy`` speed on the underlying buffers instead of
element-by-element through the interpreter.

:class:`TypedColumn` is deliberately list-compatible for the operations the
engine performs on columns (``len``/iteration/indexing/slicing/``append``/
``extend``/``count``/equality), so every existing consumer of
``Relation.column_array`` keeps working unchanged.  The one divergence is
**strictness**: a typed column only accepts ``None`` plus exactly-typed
values (``int`` within 64 bits for ``'q'``, ``float`` for ``'d'``,
``bool`` for ``'b'``; the numeric backings reject ``bool`` — and the bool
backing rejects ``int`` — so round-trips stay type-exact: bool cells are
stored as bytes but decode back to real ``bool`` objects on every read).
A value outside the backing raises :class:`TypedBackingError` and the
owning relation degrades that column to a plain list — writers never
observe the error.

The wire codec (:mod:`repro.engine.wire`) serializes typed columns as their
raw little-endian buffers plus a bit-packed NULL bitmap, which is both the
compact on-the-wire representation and an exact round-trip.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, List, Optional, Sequence

INT64 = "q"
FLOAT64 = "d"
BOOL = "b"

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Placeholder stored in the data array at NULL positions.  Always exactly
#: zero, which lets equality and ``count`` reason about NULL slots cheaply.
_ZEROS = {INT64: 0, FLOAT64: 0.0, BOOL: 0}


class TypedBackingError(TypeError):
    """A value does not fit a typed column's backing array."""


class TypedColumn:
    """A list-compatible int64/float64 column with a NULL map.

    ``typecode`` is ``'q'`` (int64) or ``'d'`` (float64).  The data array
    and the NULL map always have equal length; NULL positions hold a zero
    placeholder in the data array.
    """

    __slots__ = ("typecode", "_data", "_nulls", "_null_count")

    def __init__(
        self,
        typecode: str,
        data: Optional[array] = None,
        nulls: Optional[bytearray] = None,
        null_count: Optional[int] = None,
    ) -> None:
        if typecode not in _ZEROS:
            raise ValueError(f"Unsupported typed-column typecode: {typecode!r}")
        self.typecode = typecode
        self._data = data if data is not None else array(typecode)
        self._nulls = nulls if nulls is not None else bytearray(len(self._data))
        if len(self._nulls) != len(self._data):
            raise ValueError("NULL map and data array lengths differ")
        self._null_count = sum(self._nulls) if null_count is None else null_count

    # ------------------------------------------------------------------
    # fitting values into the backing
    # ------------------------------------------------------------------
    def _fit(self, value: Any) -> Any:
        """Return the storable cell for ``value`` (or None for NULL)."""
        if value is None:
            return None
        if self.typecode == INT64:
            if type(value) is int and _INT64_MIN <= value <= _INT64_MAX:
                return value
        elif self.typecode == FLOAT64:
            if type(value) is float:
                return value
        elif type(value) is bool:
            return 1 if value else 0
        raise TypedBackingError(
            f"{type(value).__name__} value does not fit {self.typecode!r} column"
        )

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            nulls = self._nulls[index]
            return TypedColumn(
                self.typecode,
                self._data[index],
                nulls,
                sum(nulls) if self._null_count else 0,
            )
        if self._nulls[index]:
            return None
        value = self._data[index]
        return bool(value) if self.typecode == BOOL else value

    def __setitem__(self, index: int, value: Any) -> None:
        if isinstance(index, slice):
            raise TypeError("Slice assignment is not supported on typed columns")
        cell = self._fit(value)
        was_null = self._nulls[index]
        if cell is None:
            self._data[index] = _ZEROS[self.typecode]
            if not was_null:
                self._nulls[index] = 1
                self._null_count += 1
        else:
            self._data[index] = cell
            if was_null:
                self._nulls[index] = 0
                self._null_count -= 1

    def append(self, value: Any) -> None:
        cell = self._fit(value)
        if cell is None:
            self._data.append(_ZEROS[self.typecode])
            self._nulls.append(1)
            self._null_count += 1
        else:
            self._data.append(cell)
            self._nulls.append(0)

    def extend(self, values: Iterable[Any]) -> None:
        """Append many values; atomic — a misfit leaves the column unchanged."""
        if isinstance(values, TypedColumn) and values.typecode == self.typecode:
            self._data.extend(values._data)
            self._nulls.extend(values._nulls)
            self._null_count += values._null_count
            return
        data = array(self.typecode)
        nulls = bytearray()
        null_count = 0
        zero = _ZEROS[self.typecode]
        for value in values:
            cell = self._fit(value)
            if cell is None:
                data.append(zero)
                nulls.append(1)
                null_count += 1
            else:
                data.append(cell)
                nulls.append(0)
        self._data.extend(data)
        self._nulls.extend(nulls)
        self._null_count += null_count

    def __iter__(self) -> Iterator[Any]:
        if self.typecode == BOOL:
            return self._iter_bool()
        if not self._null_count:
            return iter(self._data)
        return self._iter_with_nulls()

    def _iter_with_nulls(self) -> Iterator[Any]:
        for value, is_null in zip(self._data, self._nulls):
            yield None if is_null else value

    def _iter_bool(self) -> Iterator[Any]:
        if not self._null_count:
            for value in self._data:
                yield bool(value)
        else:
            for value, is_null in zip(self._data, self._nulls):
                yield None if is_null else bool(value)

    def __contains__(self, value: Any) -> bool:
        return self.count(value) > 0

    def count(self, value: Any) -> int:
        """Occurrences of ``value``, treating NULL slots as ``None``."""
        if value is None:
            return self._null_count
        try:
            matches = self._data.count(value)
        except (TypeError, OverflowError):
            return 0
        if self._null_count and value == _ZEROS[self.typecode]:
            matches -= self._null_count
        return matches

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TypedColumn):
            if other.typecode == self.typecode:
                return self._nulls == other._nulls and self._data == other._data
            other = other.to_list()
        if isinstance(other, (list, tuple, array)):
            if len(other) != len(self._data):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.to_list() if len(self) <= 8 else self.to_list()[:8] + ["..."]
        return f"TypedColumn({self.typecode!r}, {preview!r})"

    # ------------------------------------------------------------------
    # structural operations (all preserve the typed backing)
    # ------------------------------------------------------------------
    @property
    def null_count(self) -> int:
        return self._null_count

    @property
    def has_nulls(self) -> bool:
        return self._null_count > 0

    def to_list(self) -> List[Any]:
        """The column as a plain Python list (NULLs become ``None``)."""
        if self.typecode == BOOL:
            return list(self._iter_bool())
        if not self._null_count:
            return list(self._data)
        return [
            None if is_null else value
            for value, is_null in zip(self._data, self._nulls)
        ]

    def copy(self) -> "TypedColumn":
        return TypedColumn(
            self.typecode, self._data[:], self._nulls[:], self._null_count
        )

    def take(self, indices: Sequence[int]) -> "TypedColumn":
        """Gather the given positions into a new typed column."""
        source = self._data
        if not self._null_count:
            data = array(self.typecode, (source[i] for i in indices))
            return TypedColumn(self.typecode, data, bytearray(len(data)), 0)
        source_nulls = self._nulls
        data = array(self.typecode)
        nulls = bytearray()
        null_count = 0
        for i in indices:
            data.append(source[i])
            flag = source_nulls[i]
            nulls.append(flag)
            null_count += flag
        return TypedColumn(self.typecode, data, nulls, null_count)

    # ------------------------------------------------------------------
    # wire/measurement access
    # ------------------------------------------------------------------
    def data_array(self) -> array:
        """The live backing array (NULL slots hold zero placeholders)."""
        return self._data

    def null_map(self) -> bytearray:
        """The live NULL map (one byte per row, ``1`` = NULL)."""
        return self._nulls

    def packed_cells_size(self) -> int:
        """Sum of per-cell wire sizes for this backing.

        Numeric cells cost 9 bytes (tag + fixed64), bool cells 1 byte,
        NULLs 1 byte.
        """
        if self.typecode == BOOL:
            return len(self._data)
        return 9 * (len(self._data) - self._null_count) + self._null_count


def typed_column_from_values(
    values: Sequence[Any], typecode: str
) -> Optional[TypedColumn]:
    """Build a typed column from ``values``, or None if any value misfits."""
    data = array(typecode)
    nulls = bytearray()
    null_count = 0
    if typecode == INT64:
        for value in values:
            if value is None:
                data.append(0)
                nulls.append(1)
                null_count += 1
            elif type(value) is int and _INT64_MIN <= value <= _INT64_MAX:
                data.append(value)
                nulls.append(0)
            else:
                return None
    elif typecode == FLOAT64:
        for value in values:
            if value is None:
                data.append(0.0)
                nulls.append(1)
                null_count += 1
            elif type(value) is float:
                data.append(value)
                nulls.append(0)
            else:
                return None
    elif typecode == BOOL:
        for value in values:
            if value is None:
                data.append(0)
                nulls.append(1)
                null_count += 1
            elif type(value) is bool:
                data.append(1 if value else 0)
                nulls.append(0)
            else:
                return None
    else:
        raise ValueError(f"Unsupported typed-column typecode: {typecode!r}")
    return TypedColumn(typecode, data, nulls, null_count)


def copy_column(column: Sequence[Any]) -> Any:
    """A structural copy of a column, preserving its backing."""
    if isinstance(column, TypedColumn):
        return column.copy()
    return list(column)


def take_column(column: Sequence[Any], indices: Sequence[int]) -> Any:
    """Gather ``indices`` from a column, preserving its backing."""
    if isinstance(column, TypedColumn):
        return column.take(indices)
    return [column[i] for i in indices]


def extend_column(destination: Any, source: Sequence[Any]) -> Any:
    """Extend ``destination`` with ``source``, degrading on a type misfit.

    Returns the (possibly replaced) destination column: a typed destination
    that cannot absorb ``source`` degrades to a plain list first.
    """
    if isinstance(destination, TypedColumn):
        try:
            destination.extend(source)
            return destination
        except TypedBackingError:
            destination = destination.to_list()
    destination.extend(source)
    return destination
