"""The :class:`Relation` container used throughout the reproduction.

A relation couples a :class:`~repro.engine.schema.Schema` with row data.
Storage is **columnar**: one Python list per column, in schema order.  The
scan-bound hot paths of the compiled engine (projections, simple predicates,
aggregate scans, hash-join key builds) and the runtime's chunk/merge
machinery read and slice these arrays directly, paying no per-row dict
allocation or hashing.

Row-oriented consumers (anonymizers, metrics, policy checks, tests) keep
working unchanged through a lazy façade:

* ``relation.rows`` is a :class:`RowsView` — a live sequence that supports
  ``len``/iteration/indexing/slicing/``append``/``extend`` and compares equal
  to a list of plain dicts.
* Indexing or iterating yields :class:`RowView` — a mutable mapping over one
  row whose reads and writes go straight to the column arrays (mutating a
  view mutates the relation, exactly like the former stored dicts).
* ``to_dicts()`` materializes plain dict rows on demand (copies).

Column lookup is case-insensitive (mirroring :class:`Schema`); keys not in
the schema raise ``KeyError`` from views.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
)

from repro.engine.columns import (
    BOOL,
    FLOAT64,
    INT64,
    TypedBackingError,
    TypedColumn,
    copy_column,
    extend_column,
    take_column,
    typed_column_from_values,
)
from repro.engine.errors import SchemaError
from repro.engine.schema import ColumnDef, Schema
from repro.engine.stats import TableStats
from repro.engine.types import DataType
from repro.engine.wire import WireFormatError, packed_size

Row = Dict[str, Any]

#: Schema types that get a typed backing attempt at construction.  The
#: values are still verified cell by cell — a declared-INTEGER column
#: holding a stray string simply keeps the generic list backing.
_TYPECODES = {
    DataType.INTEGER: INT64,
    DataType.FLOAT: FLOAT64,
    DataType.BOOLEAN: BOOL,
}


class RowView(MutableMapping):
    """A mapping façade over one row of a columnar :class:`Relation`.

    Reads and writes resolve to the backing column arrays; keys are the
    schema's column names (original spelling), and lookup is
    case-insensitive.  Deleting or adding keys is not supported — the row
    shape is the relation's schema.
    """

    __slots__ = ("_relation", "_index")

    def __init__(self, relation: "Relation", index: int) -> None:
        self._relation = relation
        self._index = index

    def __getitem__(self, key: str) -> Any:
        column = self._relation._column_for(key)
        if column is None:
            raise KeyError(key)
        return column[self._index]

    def __setitem__(self, key: str, value: Any) -> None:
        relation = self._relation
        position = relation._index_by_name.get(key.lower())
        if position is None:
            raise KeyError(f"Cannot add column {key!r} through a row view")
        relation._set_cell(position, self._index, value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("Cannot delete columns through a row view")

    def __iter__(self) -> Iterator[str]:
        return iter(self._relation.schema.names)

    def __len__(self) -> int:
        return len(self._relation.schema)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self._relation._column_for(key) is not None

    def to_dict(self) -> Row:
        """The row as a plain dict (copy), keyed by schema column names."""
        relation = self._relation
        index = self._index
        return {
            name: column[index]
            for name, column in zip(relation.schema.names, relation._columns)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowView({self.to_dict()!r})"


class RowsView:
    """A live, list-like view of a relation's rows.

    Supports the idioms the former ``List[Dict]`` storage allowed:
    ``len(rows)``, iteration, ``rows[i]`` (a :class:`RowView`),
    ``rows[a:b]`` (a list of views), ``rows.append(mapping)``,
    ``rows.extend(...)`` and equality against lists of dicts.
    """

    __slots__ = ("_relation",)

    def __init__(self, relation: "Relation") -> None:
        self._relation = relation

    def __len__(self) -> int:
        return self._relation._nrows

    def __bool__(self) -> bool:
        return self._relation._nrows > 0

    def __iter__(self) -> Iterator[RowView]:
        relation = self._relation
        for index in range(relation._nrows):
            yield RowView(relation, index)

    def __getitem__(self, index):
        relation = self._relation
        if isinstance(index, slice):
            return [RowView(relation, i) for i in range(*index.indices(relation._nrows))]
        if index < 0:
            index += relation._nrows
        if not 0 <= index < relation._nrows:
            raise IndexError("row index out of range")
        return RowView(relation, index)

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one row (missing schema columns become None)."""
        self._relation._append_row(row)

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self._relation._append_row(row)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RowsView):
            other = list(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowsView({[dict(row) for row in self]!r})"


class Relation:
    """A named, schema-carrying bag of rows with columnar backing."""

    __slots__ = (
        "schema",
        "name",
        "_columns",
        "_index_by_name",
        "_nrows",
        "_version",
        "_scope_cache",
        "_stats_cache",
        "_bytes_cache",
    )

    def __init__(
        self,
        schema: Schema,
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
        name: str = "",
    ) -> None:
        self.schema = schema
        self.name = name
        self._index_by_name = {
            column.name.lower(): position for position, column in enumerate(schema.columns)
        }
        self._version = 0
        self._scope_cache: Optional[tuple] = None
        self._stats_cache: Optional[tuple] = None
        self._bytes_cache: Optional[tuple] = None
        if rows is None:
            self._columns: List[List[Any]] = [[] for _ in schema.columns]
            self._nrows = 0
        elif isinstance(rows, RowsView):
            source = rows._relation
            self._columns = source._aligned_column_copies(schema)
            self._nrows = source._nrows
        else:
            self._columns, self._nrows = _columns_from_rows(schema, rows)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, Any]],
        name: str = "",
        schema: Optional[Schema] = None,
    ) -> "Relation":
        """Build a relation from mapping rows, inferring the schema if needed."""
        materialized = list(rows)
        if schema is None:
            schema = Schema.infer(materialized)
        return cls(schema=schema, rows=materialized, name=name)

    @classmethod
    def from_columns(
        cls, schema: Schema, columns: Sequence[List[Any]], name: str = ""
    ) -> "Relation":
        """Build a relation directly from per-column value lists.

        Takes ownership of ``columns`` (no copy) — the fast constructor the
        vectorized scan paths and the chunk/merge machinery use.  All columns
        must have equal length and align positionally with ``schema``.
        """
        if len(columns) != len(schema):
            raise SchemaError(
                f"Expected {len(schema)} columns, got {len(columns)}"
            )
        relation = cls(schema=schema, rows=None, name=name)
        columns = list(columns)
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(f"Ragged columns: lengths {sorted(lengths)}")
        relation._columns = columns
        relation._nrows = lengths.pop() if lengths else 0
        return relation

    @classmethod
    def empty(cls, schema: Schema, name: str = "") -> "Relation":
        """Return a relation with no rows."""
        return cls(schema=schema, rows=None, name=name)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._nrows

    def __iter__(self) -> Iterator[RowView]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> RowView:
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.name == other.name
            and self._columns == other._columns
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation(name={self.name!r}, rows={self._nrows}, columns={self.schema.names!r})"

    @property
    def rows(self) -> RowsView:
        """Live row-oriented view of the columnar data."""
        return RowsView(self)

    @rows.setter
    def rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        self._columns, self._nrows = _columns_from_rows(self.schema, rows)
        self._bump()

    @property
    def column_names(self) -> List[str]:
        """Column names in schema order."""
        return self.schema.names

    def column_values(self, name: str) -> List[Any]:
        """Return all values of one column (in row order; a copy)."""
        column = self._column_for(name)
        if column is None:
            raise SchemaError(f"Unknown column: {name}")
        return list(column)

    # ------------------------------------------------------------------
    # columnar accessors (engine-internal hot paths)
    # ------------------------------------------------------------------
    def columns(self) -> List[List[Any]]:
        """The live column arrays in schema order.

        Callers outside this module must treat the arrays as read-only;
        writes bypass the version counter that guards the scope cache.
        """
        return self._columns

    def column_array(self, name: str) -> Optional[List[Any]]:
        """The live value array of ``name`` (case-insensitive), or None."""
        return self._column_for(name)

    def _column_for(self, name: str) -> Optional[List[Any]]:
        position = self._index_by_name.get(name.lower())
        if position is None:
            return None
        return self._columns[position]

    def _bump(self) -> None:
        # Stats and size caches are version-keyed rather than cleared: a
        # mismatched version simply misses, and _append_row re-keys the
        # stats cache after folding the new row in.
        self._version += 1
        self._scope_cache = None

    def _set_cell(self, position: int, index: int, value: Any) -> None:
        """Write one cell, degrading a typed column the value does not fit."""
        column = self._columns[position]
        if isinstance(column, TypedColumn):
            try:
                column[index] = value
            except TypedBackingError:
                column = column.to_list()
                self._columns[position] = column
                column[index] = value
        else:
            column[index] = value
        self._bump()

    def _append_row(self, row: Mapping[str, Any]) -> None:
        for position, name in enumerate(self.schema.names):
            column = self._columns[position]
            value = row.get(name)
            if isinstance(column, TypedColumn):
                try:
                    column.append(value)
                except TypedBackingError:
                    column = column.to_list()
                    self._columns[position] = column
                    column.append(value)
            else:
                column.append(value)
        self._nrows += 1
        cache = self._stats_cache
        self._bump()
        if cache is not None and cache[0] == self._version - 1:
            # Fold the appended row into the cached summaries instead of
            # invalidating them — appends are the streaming hot path.
            cache[1].observe_row(row)
            self._stats_cache = (self._version, cache[1])

    def _aligned_column_copies(self, schema: Schema) -> List[List[Any]]:
        """Column copies aligned (by lower-cased name) to ``schema``'s order."""
        copies: List[List[Any]] = []
        for column_def in schema.columns:
            column = self._column_for(column_def.name)
            copies.append(
                copy_column(column) if column is not None else [None] * self._nrows
            )
        return copies

    def scope_rows(self) -> List[Dict[str, Any]]:
        """Per-row scope dicts keyed by lower-cased column names (cached).

        The compiled executor reuses these dicts as read-only row scopes
        across repeated executions — the columnar equivalent of reusing the
        stored row dicts.  Any mutation of the relation (append, row-view
        write, rows replacement) invalidates the cache.
        """
        cached = self._scope_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        lowered = [name.lower() for name in self.schema.names]
        if not lowered:
            scopes: List[Dict[str, Any]] = [{} for _ in range(self._nrows)]
        else:
            scopes = [dict(zip(lowered, values)) for values in zip(*self._columns)]
        self._scope_cache = (self._version, scopes)
        return scopes

    def stats(self) -> TableStats:
        """Per-column statistics at the relation's current version (cached).

        Column summaries materialize lazily on first request
        (:meth:`TableStats.column`), so asking for stats is cheap until a
        plan actually consults a column.  Row appends fold into cached
        summaries incrementally; every other mutation (row-view writes,
        ``rows`` replacement) conservatively invalidates via the version
        counter and the next request recomputes from the arrays.
        """
        cached = self._stats_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        stats = TableStats(self)
        self._stats_cache = (self._version, stats)
        return stats

    def slice_rows(self, start: int, stop: Optional[int] = None, name: str = "") -> "Relation":
        """A new relation holding the contiguous row range ``[start, stop)``."""
        return Relation.from_columns(
            self.schema,
            [column[start:stop] for column in self._columns],
            name=name or self.name,
        )

    def take_rows(self, indices: Sequence[int], name: str = "") -> "Relation":
        """A new relation holding the given rows, in the given order."""
        return Relation.from_columns(
            self.schema,
            [take_column(column, indices) for column in self._columns],
            name=name or self.name,
        )

    # ------------------------------------------------------------------
    # functional operators (each returns a new relation)
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[Mapping[str, Any]], bool], name: str = "") -> "Relation":
        """Return only the rows for which ``predicate`` is true."""
        rows = self.rows
        kept = [i for i in range(self._nrows) if predicate(rows[i])]
        return self.take_rows(kept, name=name or self.name)

    def project(self, names: Sequence[str], name: str = "") -> "Relation":
        """Keep only the given columns."""
        schema = self.schema.project(names)
        columns = []
        for column_name in names:
            column = self._column_for(column_name)
            if column is None:
                raise SchemaError(f"Unknown column: {column_name}")
            columns.append(copy_column(column))
        return Relation.from_columns(schema, columns, name=name or self.name)

    def drop(self, names: Sequence[str], name: str = "") -> "Relation":
        """Remove the given columns."""
        remaining = [c for c in self.schema.names if c.lower() not in {n.lower() for n in names}]
        return self.project(remaining, name=name)

    def rename(self, mapping: Mapping[str, str], name: str = "") -> "Relation":
        """Rename columns according to ``mapping`` (values are shared copies)."""
        schema = self.schema.rename(mapping)
        return Relation.from_columns(
            schema, [copy_column(column) for column in self._columns], name=name or self.name
        )

    def limit(self, count: int) -> "Relation":
        """Return the first ``count`` rows."""
        return self.slice_rows(0, count)

    def order_by(self, key: Callable[[Mapping[str, Any]], Any], reverse: bool = False) -> "Relation":
        """Return a relation sorted by ``key``."""
        rows = self.rows
        indices = sorted(range(self._nrows), key=lambda i: key(rows[i]), reverse=reverse)
        return self.take_rows(indices)

    def map_rows(
        self, mapper: Callable[[Row], Row], schema: Optional[Schema] = None
    ) -> "Relation":
        """Apply ``mapper`` to every row (as a dict), optionally with a new schema."""
        mapped = [mapper(row.to_dict()) for row in self.rows]
        return Relation(schema=schema or self.schema, rows=mapped, name=self.name)

    def copy(self) -> "Relation":
        """Copy with fresh column arrays (values shared, structure private)."""
        return Relation.from_columns(
            self.schema, [copy_column(column) for column in self._columns], name=self.name
        )

    def __reduce__(self):
        # Relations must never cross a process boundary through pickle —
        # the wire codec (repro.engine.wire.pack_relation) is the only
        # sanctioned transport, and a guard test enforces this.
        raise TypeError(
            "Relation is not picklable; serialize with repro.engine.wire "
            "pack_relation/unpack_relation"
        )

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append rows in place (used by stream buffers and simulators)."""
        for row in rows:
            self._append_row(row)

    # ------------------------------------------------------------------
    # measurement helpers used by the benchmarks
    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Total number of cells (rows × columns)."""
        return self._nrows * len(self.schema)

    def estimated_bytes(self) -> int:
        """Per-cell wire-size estimate used for the transfer cost model.

        Every cell is charged at its :func:`repro.engine.wire.packed_size` —
        the exact encoded size of the codec that real shipments now pay —
        so size accounting, the link-latency cost model and checkpoints all
        agree.  Cells outside the wire vocabulary fall back to their
        textual length.  Typed columns are charged in O(1) per column
        (9 bytes per value, 1 per NULL, matching the generic cell tags).

        The walk is memoized per relation version: the cost model and the
        transfer log size the same relation repeatedly, and generic
        columns pay a per-cell ``packed_size`` each time without the memo.
        """
        cached = self._bytes_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        total = 0
        for column in self._columns:
            if isinstance(column, TypedColumn):
                total += column.packed_cells_size()
                continue
            for value in column:
                try:
                    total += packed_size(value)
                except WireFormatError:
                    # Cells outside the wire vocabulary (exotic objects)
                    # keep the textual estimate.
                    total += len(str(value))
        self._bytes_cache = (self._version, total)
        return total

    def to_dicts(self) -> List[Row]:
        """Return rows as a list of plain dicts (copies)."""
        names = self.schema.names
        if not names:
            return [{} for _ in range(self._nrows)]
        return [dict(zip(names, values)) for values in zip(*self._columns)]

    def distinct(self) -> "Relation":
        """Return a relation with duplicate rows removed (order-preserving)."""
        seen = set()
        kept: List[int] = []
        names = self.schema.names
        for index, values in enumerate(zip(*self._columns) if names else ()):
            key = tuple(zip(names, map(_hashable, values)))
            if key not in seen:
                seen.add(key)
                kept.append(index)
        return self.take_rows(kept)

    def head(self, count: int = 5) -> List[Row]:
        """Return the first ``count`` rows (for examples and debugging)."""
        return self.slice_rows(0, count).to_dicts()

    def pretty(self, max_rows: int = 10) -> str:
        """Render the relation as a fixed-width text table."""
        names = self.schema.names
        cells = [
            [_format_cell(value) for value in values]
            for values in zip(*(column[:max_rows] for column in self._columns))
        ]
        widths = [
            max(len(name), *(len(row[i]) for row in cells)) if cells else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(names))
        separator = "-+-".join("-" * width for width in widths)
        lines = [header, separator]
        for row in cells:
            lines.append(" | ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
        if self._nrows > max_rows:
            lines.append(f"... ({self._nrows} rows total)")
        return "\n".join(lines)


def _columns_from_rows(
    schema: Schema, rows: Iterable[Mapping[str, Any]]
) -> tuple:
    """Materialize mapping rows into per-column arrays, in schema order.

    Columns whose declared type maps to a typed backing (INTEGER/FLOAT)
    get an ``array``-backed :class:`TypedColumn` when every value fits;
    mixed or mistyped columns keep the generic list backing.
    """
    names = schema.names
    columns: List[Any] = [[] for _ in names]
    count = 0
    for row in rows:
        count += 1
        for position, name in enumerate(names):
            columns[position].append(row.get(name))
    for position, column_def in enumerate(schema.columns):
        typecode = _TYPECODES.get(column_def.data_type)
        if typecode is None:
            continue
        typed = typed_column_from_values(columns[position], typecode)
        if typed is not None:
            columns[position] = typed
    return columns, count


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _format_cell(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def concat(relations: Sequence[Relation], name: str = "") -> Relation:
    """Concatenate relations with identical column names."""
    if not relations:
        raise SchemaError("Cannot concatenate zero relations")
    first = relations[0]
    expected = [n.lower() for n in first.schema.names]
    columns: List[Any] = [copy_column(column) for column in first.columns()]
    for relation in relations[1:]:
        if [n.lower() for n in relation.schema.names] != expected:
            raise SchemaError("Relations have different schemas")
        for position, column in enumerate(relation.columns()):
            columns[position] = extend_column(columns[position], column)
    return Relation.from_columns(first.schema, columns, name=name or first.name)
