"""The :class:`Relation` row container used throughout the reproduction.

A relation couples a :class:`~repro.engine.schema.Schema` with a list of rows.
Rows are plain dictionaries keyed by (unqualified) column name, which keeps the
executor, the anonymizers and the metrics simple and debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.engine.errors import SchemaError
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import DataType

Row = Dict[str, Any]


@dataclass
class Relation:
    """A named, schema-carrying bag of rows."""

    schema: Schema
    rows: List[Row] = field(default_factory=list)
    name: str = ""

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, Any]],
        name: str = "",
        schema: Optional[Schema] = None,
    ) -> "Relation":
        """Build a relation from dict rows, inferring the schema if needed."""
        materialized = [dict(row) for row in rows]
        if schema is None:
            schema = Schema.infer(materialized)
        return cls(schema=schema, rows=materialized, name=name)

    @classmethod
    def empty(cls, schema: Schema, name: str = "") -> "Relation":
        """Return a relation with no rows."""
        return cls(schema=schema, rows=[], name=name)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    @property
    def column_names(self) -> List[str]:
        """Column names in schema order."""
        return self.schema.names

    def column_values(self, name: str) -> List[Any]:
        """Return all values of one column (in row order)."""
        if name not in self.schema:
            raise SchemaError(f"Unknown column: {name}")
        key = self._resolve_key(name)
        return [row.get(key) for row in self.rows]

    def _resolve_key(self, name: str) -> str:
        return self.schema.column(name).name

    # ------------------------------------------------------------------
    # functional operators (each returns a new relation)
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[Row], bool], name: str = "") -> "Relation":
        """Return only the rows for which ``predicate`` is true."""
        return Relation(
            schema=self.schema,
            rows=[dict(row) for row in self.rows if predicate(row)],
            name=name or self.name,
        )

    def project(self, names: Sequence[str], name: str = "") -> "Relation":
        """Keep only the given columns."""
        schema = self.schema.project(names)
        keys = [self._resolve_key(column) for column in names]
        rows = [{key: row.get(key) for key in keys} for row in self.rows]
        return Relation(schema=schema, rows=rows, name=name or self.name)

    def drop(self, names: Sequence[str], name: str = "") -> "Relation":
        """Remove the given columns."""
        remaining = [c for c in self.schema.names if c.lower() not in {n.lower() for n in names}]
        return self.project(remaining, name=name)

    def rename(self, mapping: Mapping[str, str], name: str = "") -> "Relation":
        """Rename columns according to ``mapping``."""
        schema = self.schema.rename(mapping)
        lowered = {key.lower(): value for key, value in mapping.items()}
        rows = []
        for row in self.rows:
            rows.append({lowered.get(key.lower(), key): value for key, value in row.items()})
        return Relation(schema=schema, rows=rows, name=name or self.name)

    def limit(self, count: int) -> "Relation":
        """Return the first ``count`` rows."""
        return Relation(schema=self.schema, rows=[dict(r) for r in self.rows[:count]], name=self.name)

    def order_by(self, key: Callable[[Row], Any], reverse: bool = False) -> "Relation":
        """Return a relation sorted by ``key``."""
        return Relation(
            schema=self.schema,
            rows=sorted((dict(r) for r in self.rows), key=key, reverse=reverse),
            name=self.name,
        )

    def map_rows(self, mapper: Callable[[Row], Row], schema: Optional[Schema] = None) -> "Relation":
        """Apply ``mapper`` to every row, optionally with a new schema."""
        rows = [mapper(dict(row)) for row in self.rows]
        return Relation(schema=schema or self.schema, rows=rows, name=self.name)

    def copy(self) -> "Relation":
        """Deep-ish copy (rows are copied, values shared)."""
        return Relation(schema=self.schema, rows=[dict(row) for row in self.rows], name=self.name)

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append rows in place (used by stream buffers and simulators)."""
        for row in rows:
            self.rows.append(dict(row))

    # ------------------------------------------------------------------
    # measurement helpers used by the benchmarks
    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Total number of cells (rows × columns)."""
        return len(self.rows) * len(self.schema)

    def estimated_bytes(self) -> int:
        """Rough wire-size estimate used for the data-transfer benchmarks.

        Numbers count as 8 bytes, booleans as 1, strings/timestamps as their
        textual length.  The absolute values do not matter; the benchmarks
        compare ratios between configurations.
        """
        sizes = {type(None): 1, bool: 1, int: 8, float: 8}
        total = 0
        for row in self.rows:
            for value in row.values():
                size = sizes.get(type(value))
                total += size if size is not None else len(str(value))
        return total

    def to_dicts(self) -> List[Row]:
        """Return rows as a list of plain dicts (copies)."""
        return [dict(row) for row in self.rows]

    def distinct(self) -> "Relation":
        """Return a relation with duplicate rows removed (order-preserving)."""
        seen = set()
        rows: List[Row] = []
        for row in self.rows:
            key = tuple((name, _hashable(row.get(name))) for name in self.schema.names)
            if key not in seen:
                seen.add(key)
                rows.append(dict(row))
        return Relation(schema=self.schema, rows=rows, name=self.name)

    def head(self, count: int = 5) -> List[Row]:
        """Return the first ``count`` rows (for examples and debugging)."""
        return self.to_dicts()[:count]

    def pretty(self, max_rows: int = 10) -> str:
        """Render the relation as a fixed-width text table."""
        names = self.schema.names
        rows = self.rows[:max_rows]
        cells = [[_format_cell(row.get(name)) for name in names] for row in rows]
        widths = [
            max(len(name), *(len(row[i]) for row in cells)) if cells else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(names))
        separator = "-+-".join("-" * width for width in widths)
        lines = [header, separator]
        for row in cells:
            lines.append(" | ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _format_cell(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def concat(relations: Sequence[Relation], name: str = "") -> Relation:
    """Concatenate relations with identical column names."""
    if not relations:
        raise SchemaError("Cannot concatenate zero relations")
    first = relations[0]
    rows: List[Row] = []
    for relation in relations:
        if [n.lower() for n in relation.schema.names] != [
            n.lower() for n in first.schema.names
        ]:
            raise SchemaError("Relations have different schemas")
        rows.extend(dict(row) for row in relation.rows)
    return Relation(schema=first.schema, rows=rows, name=name or first.name)
