"""Compact wire format for partial aggregate states.

The distributed runtime ships partial-state relations between nodes: tuples
such as ``SumAccumulator``'s ``(int_total, float_expansion, present,
all_int, specials, int_overflow)`` or ``StatAccumulator``'s exact rational
moments ``(n, Σx, Σx²)``.  The cost model used to size those shipments with
``len(str(value))`` — the *text* of a nested tuple of floats and Fractions,
several times larger than the data — which overstated the traffic of the
partial-aggregation protocol and understated its win.

This module packs exactly the value vocabulary partial states use into a
tagged binary encoding (:func:`pack_value` / :func:`unpack_value` round-trip
bit for bit) and computes the encoded size without materializing the bytes
(:func:`packed_size`).  :meth:`repro.engine.table.Relation.estimated_bytes`
charges tuple- and Fraction-valued cells at their packed size, so the
transfer log and the link-latency cost model see realistic state sizes.

Encoding: one tag byte per value, little-endian fixed-width payloads.
Ints within 64 bits pack as ``<q``; arbitrary-precision ints (exact
int SUMs can exceed 64 bits) and Fraction components fall back to a
length-prefixed two's-complement byte string.  Tuples nest with a
length-prefixed element count.
"""

from __future__ import annotations

import struct
from fractions import Fraction
from typing import Any, Tuple

_TAG_NONE = b"\x00"
_TAG_FALSE = b"\x01"
_TAG_TRUE = b"\x02"
_TAG_INT64 = b"\x03"
_TAG_BIGINT = b"\x04"
_TAG_FLOAT = b"\x05"
_TAG_STR = b"\x06"
_TAG_FRACTION = b"\x07"
_TAG_TUPLE = b"\x08"

_INT64 = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_LENGTH = struct.Struct("<I")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class WireFormatError(ValueError):
    """Raised when a value cannot be encoded or a payload cannot be decoded."""


def _bigint_bytes(value: int) -> bytes:
    length = (value.bit_length() + 8) // 8  # +8 keeps a sign bit
    return value.to_bytes(length or 1, "little", signed=True)


def pack_value(value: Any) -> bytes:
    """Encode one partial-state value (scalars, Fractions, nested tuples)."""
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, bool):  # numpy-like bool subclasses
        return _TAG_TRUE if value else _TAG_FALSE
    if isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            return _TAG_INT64 + _INT64.pack(value)
        payload = _bigint_bytes(value)
        return _TAG_BIGINT + _LENGTH.pack(len(payload)) + payload
    if isinstance(value, float):
        return _TAG_FLOAT + _FLOAT.pack(value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _TAG_STR + _LENGTH.pack(len(payload)) + payload
    if isinstance(value, Fraction):
        numerator = _bigint_bytes(value.numerator)
        denominator = _bigint_bytes(value.denominator)
        return (
            _TAG_FRACTION
            + _LENGTH.pack(len(numerator))
            + numerator
            + _LENGTH.pack(len(denominator))
            + denominator
        )
    if isinstance(value, tuple):
        parts = [_TAG_TUPLE, _LENGTH.pack(len(value))]
        parts.extend(pack_value(element) for element in value)
        return b"".join(parts)
    raise WireFormatError(f"Cannot pack value of type {type(value).__name__}")


def _take(data: bytes, offset: int, length: int) -> Tuple[bytes, int]:
    """Bounds-checked slice of ``length`` bytes; raises on truncation."""
    end = offset + length
    if end > len(data):
        raise WireFormatError("Truncated payload")
    return data[offset:end], end


def _unpack(data: bytes, offset: int) -> Tuple[Any, int]:
    tag, offset = _take(data, offset, 1)
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT64:
        payload, offset = _take(data, offset, 8)
        return _INT64.unpack(payload)[0], offset
    if tag == _TAG_BIGINT:
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        return int.from_bytes(payload, "little", signed=True), offset
    if tag == _TAG_FLOAT:
        payload, offset = _take(data, offset, 8)
        return _FLOAT.unpack(payload)[0], offset
    if tag == _TAG_STR:
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        return payload.decode("utf-8"), offset
    if tag == _TAG_FRACTION:
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        numerator = int.from_bytes(payload, "little", signed=True)
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        denominator = int.from_bytes(payload, "little", signed=True)
        return Fraction(numerator, denominator), offset
    if tag == _TAG_TUPLE:
        payload, offset = _take(data, offset, 4)
        (count,) = _LENGTH.unpack(payload)
        elements = []
        for _ in range(count):
            element, offset = _unpack(data, offset)
            elements.append(element)
        return tuple(elements), offset
    raise WireFormatError(f"Unknown tag byte: {tag!r}")


def unpack_value(data: bytes) -> Any:
    """Decode a payload produced by :func:`pack_value` (exact round-trip)."""
    value, offset = _unpack(data, 0)
    if offset != len(data):
        raise WireFormatError(f"{len(data) - offset} trailing bytes after value")
    return value


def packed_size(value: Any) -> int:
    """Size in bytes of ``pack_value(value)``, without building the bytes.

    The cost model calls this per cell of every shipped state relation, so
    it avoids the allocation; the wire tests assert it always equals
    ``len(pack_value(value))``.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            return 9
        return 5 + ((value.bit_length() + 8) // 8 or 1)
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, Fraction):
        return (
            9
            + ((value.numerator.bit_length() + 8) // 8 or 1)
            + ((value.denominator.bit_length() + 8) // 8 or 1)
        )
    if isinstance(value, tuple):
        return 5 + sum(packed_size(element) for element in value)
    raise WireFormatError(f"Cannot pack value of type {type(value).__name__}")


# ---------------------------------------------------------------------------
# whole-relation codec (checkpoints)
# ---------------------------------------------------------------------------
#
# The fault-tolerant runtime checkpoints partial-state relations at combine
# boundaries so recovery after a node death replays only the lost leaves.  A
# checkpoint must be *exactly* the relation it replaces — merging a restored
# state must be indistinguishable from merging the original — so the codec
# reuses :func:`pack_value`'s bit-exact vocabulary: the whole relation
# (name, schema, column arrays) becomes one nested tuple.  Relations whose
# cells fall outside that vocabulary raise :class:`WireFormatError`; callers
# treat that as "not checkpointable" and simply re-execute.


def pack_state_relation(relation: "Any") -> bytes:
    """Encode a relation (name, schema, columnar data) bit-exactly."""
    schema_spec = tuple(
        (column.name, column.data_type.value) for column in relation.schema.columns
    )
    columns = tuple(
        tuple(relation.column_array(column.name) or ())
        for column in relation.schema.columns
    )
    return pack_value((relation.name, schema_spec, columns))


def unpack_state_relation(data: bytes) -> "Any":
    """Decode a payload from :func:`pack_state_relation` into a Relation."""
    from repro.engine.schema import ColumnDef, Schema
    from repro.engine.table import Relation
    from repro.engine.types import DataType

    decoded = unpack_value(data)
    if not isinstance(decoded, tuple) or len(decoded) != 3:
        raise WireFormatError("Malformed state-relation payload")
    name, schema_spec, columns = decoded
    if len(schema_spec) != len(columns):
        raise WireFormatError("State-relation schema/data column count mismatch")
    schema = Schema(
        [
            ColumnDef(name=column_name, data_type=DataType(type_value))
            for column_name, type_value in schema_spec
        ]
    )
    return Relation.from_columns(
        schema, [list(column) for column in columns], name=name
    )
