"""Compact wire format for partial aggregate states.

The distributed runtime ships partial-state relations between nodes: tuples
such as ``SumAccumulator``'s ``(int_total, float_expansion, present,
all_int, specials, int_overflow)`` or ``StatAccumulator``'s exact rational
moments ``(n, Σx, Σx²)``.  The cost model used to size those shipments with
``len(str(value))`` — the *text* of a nested tuple of floats and Fractions,
several times larger than the data — which overstated the traffic of the
partial-aggregation protocol and understated its win.

This module packs exactly the value vocabulary partial states use into a
tagged binary encoding (:func:`pack_value` / :func:`unpack_value` round-trip
bit for bit) and computes the encoded size without materializing the bytes
(:func:`packed_size`).  :meth:`repro.engine.table.Relation.estimated_bytes`
charges tuple- and Fraction-valued cells at their packed size, so the
transfer log and the link-latency cost model see realistic state sizes.

Encoding: one tag byte per value, little-endian fixed-width payloads.
Ints within 64 bits pack as ``<q``; arbitrary-precision ints (exact
int SUMs can exceed 64 bits) and Fraction components fall back to a
length-prefixed two's-complement byte string.  Tuples nest with a
length-prefixed element count.
"""

from __future__ import annotations

import struct
import sys
from array import array
from datetime import datetime
from fractions import Fraction
from typing import Any, Optional, Tuple

import threading

from repro.engine.columns import BOOL, FLOAT64, INT64, TypedColumn

_TAG_NONE = b"\x00"
_TAG_FALSE = b"\x01"
_TAG_TRUE = b"\x02"
_TAG_INT64 = b"\x03"
_TAG_BIGINT = b"\x04"
_TAG_FLOAT = b"\x05"
_TAG_STR = b"\x06"
_TAG_FRACTION = b"\x07"
_TAG_TUPLE = b"\x08"
_TAG_DATETIME = b"\x09"

_INT64 = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_LENGTH = struct.Struct("<I")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class WireFormatError(ValueError):
    """Raised when a value cannot be encoded or a payload cannot be decoded."""


def _bigint_bytes(value: int) -> bytes:
    length = (value.bit_length() + 8) // 8  # +8 keeps a sign bit
    return value.to_bytes(length or 1, "little", signed=True)


def pack_value(value: Any) -> bytes:
    """Encode one partial-state value (scalars, Fractions, nested tuples)."""
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, bool):  # numpy-like bool subclasses
        return _TAG_TRUE if value else _TAG_FALSE
    if isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            return _TAG_INT64 + _INT64.pack(value)
        payload = _bigint_bytes(value)
        return _TAG_BIGINT + _LENGTH.pack(len(payload)) + payload
    if isinstance(value, float):
        return _TAG_FLOAT + _FLOAT.pack(value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _TAG_STR + _LENGTH.pack(len(payload)) + payload
    if isinstance(value, Fraction):
        numerator = _bigint_bytes(value.numerator)
        denominator = _bigint_bytes(value.denominator)
        return (
            _TAG_FRACTION
            + _LENGTH.pack(len(numerator))
            + numerator
            + _LENGTH.pack(len(denominator))
            + denominator
        )
    if isinstance(value, tuple):
        parts = [_TAG_TUPLE, _LENGTH.pack(len(value))]
        parts.extend(pack_value(element) for element in value)
        return b"".join(parts)
    if isinstance(value, datetime):
        # CAST(... AS TIMESTAMP) results; isoformat() round-trips exactly
        # through fromisoformat() (the fold attribute is not preserved).
        payload = value.isoformat().encode("utf-8")
        return _TAG_DATETIME + _LENGTH.pack(len(payload)) + payload
    raise WireFormatError(f"Cannot pack value of type {type(value).__name__}")


def _take(data: bytes, offset: int, length: int) -> Tuple[bytes, int]:
    """Bounds-checked slice of ``length`` bytes; raises on truncation."""
    end = offset + length
    if end > len(data):
        raise WireFormatError("Truncated payload")
    return data[offset:end], end


def _unpack(data: bytes, offset: int) -> Tuple[Any, int]:
    tag, offset = _take(data, offset, 1)
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT64:
        payload, offset = _take(data, offset, 8)
        return _INT64.unpack(payload)[0], offset
    if tag == _TAG_BIGINT:
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        return int.from_bytes(payload, "little", signed=True), offset
    if tag == _TAG_FLOAT:
        payload, offset = _take(data, offset, 8)
        return _FLOAT.unpack(payload)[0], offset
    if tag == _TAG_STR:
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        return payload.decode("utf-8"), offset
    if tag == _TAG_FRACTION:
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        numerator = int.from_bytes(payload, "little", signed=True)
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        denominator = int.from_bytes(payload, "little", signed=True)
        return Fraction(numerator, denominator), offset
    if tag == _TAG_TUPLE:
        payload, offset = _take(data, offset, 4)
        (count,) = _LENGTH.unpack(payload)
        elements = []
        for _ in range(count):
            element, offset = _unpack(data, offset)
            elements.append(element)
        return tuple(elements), offset
    if tag == _TAG_DATETIME:
        payload, offset = _take(data, offset, 4)
        (length,) = _LENGTH.unpack(payload)
        payload, offset = _take(data, offset, length)
        try:
            return datetime.fromisoformat(payload.decode("utf-8")), offset
        except ValueError as error:
            raise WireFormatError(f"Malformed datetime payload: {error}")
    raise WireFormatError(f"Unknown tag byte: {tag!r}")


def unpack_value(data: bytes) -> Any:
    """Decode a payload produced by :func:`pack_value` (exact round-trip)."""
    value, offset = _unpack(data, 0)
    if offset != len(data):
        raise WireFormatError(f"{len(data) - offset} trailing bytes after value")
    return value


def packed_size(value: Any) -> int:
    """Size in bytes of ``pack_value(value)``, without building the bytes.

    The cost model calls this per cell of every shipped state relation, so
    it avoids the allocation; the wire tests assert it always equals
    ``len(pack_value(value))``.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            return 9
        return 5 + ((value.bit_length() + 8) // 8 or 1)
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, Fraction):
        return (
            9
            + ((value.numerator.bit_length() + 8) // 8 or 1)
            + ((value.denominator.bit_length() + 8) // 8 or 1)
        )
    if isinstance(value, tuple):
        return 5 + sum(packed_size(element) for element in value)
    if isinstance(value, datetime):
        return 5 + len(value.isoformat().encode("utf-8"))
    raise WireFormatError(f"Cannot pack value of type {type(value).__name__}")


# ---------------------------------------------------------------------------
# whole-relation codec (shipments, checkpoints, process-boundary transport)
# ---------------------------------------------------------------------------
#
# Every inter-node shipment, every checkpoint and every task that crosses a
# process-pool boundary moves relations through this codec, so the transfer
# log, the link-latency cost model and the recovery machinery all see the
# same real bytes.  A decoded relation must be *exactly* the relation that
# was encoded — merging a restored state must be indistinguishable from
# merging the original.
#
# Layout: a 4-byte magic (versioned), the name and schema through
# :func:`pack_value`, a row count, then one backing tag per column.  Typed
# int64/float64/bool columns travel as a bit-packed NULL bitmap plus their
# raw little-endian buffer (a memcpy on both ends); generic columns fall
# back to one tagged cell at a time.  Relations whose cells fall outside the
# wire vocabulary raise :class:`WireFormatError`; checkpoint callers treat
# that as "not checkpointable" and simply re-execute.

#: Magic prefix of a packed relation.  0x50 ('P') is not a value tag, so a
#: relation payload can never be confused with a ``pack_value`` payload.
_RELATION_MAGIC = b"PRL1"

_COL_GENERIC = b"\x00"
_COL_INT64 = b"\x01"
_COL_FLOAT64 = b"\x02"
_COL_BOOL = b"\x03"

_COL_TYPECODES = {_COL_INT64: INT64, _COL_FLOAT64: FLOAT64, _COL_BOOL: BOOL}
_COL_TAGS = {INT64: _COL_INT64, FLOAT64: _COL_FLOAT64, BOOL: _COL_BOOL}


def _pack_bitmap(nulls) -> bytes:
    """Bit-pack a byte-per-row NULL map, LSB-first."""
    packed = bytearray((len(nulls) + 7) // 8)
    for index, flag in enumerate(nulls):
        if flag:
            packed[index >> 3] |= 1 << (index & 7)
    return bytes(packed)


def _unpack_bitmap(bitmap: bytes, count: int) -> bytearray:
    nulls = bytearray(count)
    if any(bitmap):
        for index in range(count):
            if bitmap[index >> 3] & (1 << (index & 7)):
                nulls[index] = 1
    return nulls


def pack_relation(relation: "Any") -> bytes:
    """Encode a relation (name, schema, columnar data) bit-exactly."""
    schema_spec = tuple(
        (column.name, column.data_type.value) for column in relation.schema.columns
    )
    parts = [
        _RELATION_MAGIC,
        pack_value(relation.name),
        pack_value(schema_spec),
        _LENGTH.pack(len(relation)),
    ]
    for column in relation.columns():
        if isinstance(column, TypedColumn):
            parts.append(_COL_TAGS[column.typecode])
            parts.append(_pack_bitmap(column.null_map()))
            data = column.data_array()
            if sys.byteorder != "little":  # pragma: no cover - exotic hosts
                data = data[:]
                data.byteswap()
            parts.append(data.tobytes())
        else:
            parts.append(_COL_GENERIC)
            parts.extend(pack_value(cell) for cell in column)
    return b"".join(parts)


def unpack_relation(data: bytes) -> "Any":
    """Decode a payload from :func:`pack_relation` into a Relation."""
    from repro.engine.schema import ColumnDef, Schema
    from repro.engine.table import Relation
    from repro.engine.types import DataType

    magic, offset = _take(data, 0, len(_RELATION_MAGIC))
    if magic != _RELATION_MAGIC:
        raise WireFormatError("Malformed state-relation payload (bad magic)")
    name, offset = _unpack(data, offset)
    schema_spec, offset = _unpack(data, offset)
    if not isinstance(name, str) or not isinstance(schema_spec, tuple):
        raise WireFormatError("Malformed state-relation payload")
    payload, offset = _take(data, offset, 4)
    (nrows,) = _LENGTH.unpack(payload)
    column_defs = []
    try:
        for column_name, type_value in schema_spec:
            column_defs.append(
                ColumnDef(name=column_name, data_type=DataType(type_value))
            )
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"Malformed relation schema: {error}")
    columns = []
    for _ in column_defs:
        tag, offset = _take(data, offset, 1)
        typecode = _COL_TYPECODES.get(tag)
        if typecode is not None:
            bitmap, offset = _take(data, offset, (nrows + 7) // 8)
            values = array(typecode)
            raw, offset = _take(data, offset, nrows * values.itemsize)
            values.frombytes(raw)
            if sys.byteorder != "little":  # pragma: no cover - exotic hosts
                values.byteswap()
            columns.append(
                TypedColumn(typecode, values, _unpack_bitmap(bitmap, nrows))
            )
        elif tag == _COL_GENERIC:
            cells = []
            for _ in range(nrows):
                cell, offset = _unpack(data, offset)
                cells.append(cell)
            columns.append(cells)
        else:
            raise WireFormatError(f"Unknown column backing tag: {tag!r}")
    if offset != len(data):
        raise WireFormatError(f"{len(data) - offset} trailing bytes after relation")
    return Relation.from_columns(
        Schema(column_defs), columns, name=name
    )


def pack_state_relation(relation: "Any") -> bytes:
    """Encode a relation bit-exactly (checkpoint-facing alias)."""
    return pack_relation(relation)


def unpack_state_relation(data: bytes) -> "Any":
    """Decode a payload from :func:`pack_state_relation` into a Relation."""
    return unpack_relation(data)


# ---------------------------------------------------------------------------
# observed state-size feedback for the adaptive partial-aggregation decision
# ---------------------------------------------------------------------------


class StateSizeFeedback:
    """Running average of observed packed partial-state cell sizes.

    Every executed leaf partial aggregation reports its state output's
    ``(rows, packed bytes, cells)``; the DAG builder's adaptive
    ``partial_aggregation_pays`` decision multiplies its estimated group
    count by this query's state width (keys + aggregate states) and
    :meth:`bytes_per_cell` to predict what the state shipment would cost
    before building the plan.  Normalizing per *cell* rather than per row
    keeps the average transferable across query shapes — a five-column
    STDDEV state must not inflate the estimate for a two-column COUNT
    state.  Before any observation the default reflects a typical packed
    state cell (a key scalar or an accumulator tuple).
    """

    #: Assumed packed bytes per state cell before any feedback arrives.
    #: Exact accumulator tuples (Shewchuk expansions, rational moments)
    #: average tens of bytes packed; observed fleet-wide averages sit
    #: around 60–90, so the cold-start guess leans high — underestimating
    #: state size is the costly direction (it picks partials on
    #: groups~rows chunks where the global merge wins).
    DEFAULT_BYTES_PER_CELL = 64.0

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows = 0
        self._cells = 0
        self._bytes = 0

    def record(self, rows: int, nbytes: int, cells: Optional[int] = None) -> None:
        """Fold one observed state relation into the running average."""
        if rows <= 0:
            return
        with self._lock:
            self._rows += rows
            self._cells += cells if cells and cells > 0 else rows
            self._bytes += nbytes

    def bytes_per_cell(self) -> float:
        with self._lock:
            if self._cells == 0:
                return self.DEFAULT_BYTES_PER_CELL
            return self._bytes / self._cells

    @property
    def observed_rows(self) -> int:
        with self._lock:
            return self._rows

    def reset(self) -> None:
        with self._lock:
            self._rows = 0
            self._cells = 0
            self._bytes = 0


#: Process-wide feedback singleton (thread-safe; workers all report here).
state_size_feedback = StateSizeFeedback()
