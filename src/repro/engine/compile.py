"""Expression compilation: lower AST expressions to Python closures.

The interpreted evaluator (:mod:`repro.engine.evaluator`) walks the AST for
every row: each evaluation pays for isinstance dispatch, operator-string
comparison, per-access ``str.lower`` on column names and per-call
``render_expression`` keying.  This module performs all of that work *once*
per query: :class:`ExpressionCompiler` lowers an expression tree to a closure
``fn(context) -> value`` with

* column keys pre-lowered (scope dicts are keyed lower-case already, so the
  closure is a plain dict probe plus parent-chain walk),
* operators dispatched at compile time to dedicated closures that replicate
  the interpreter's three-valued NULL logic exactly,
* scalar functions and CAST target types resolved at compile time,
* aggregate/window lookups keyed by a pre-rendered SQL string,
* LIKE patterns compiled to regexes ahead of time when literal, and
* provably uncorrelated subqueries executed once per query execution and
  cached (the hash semi-join fast path for ``IN (SELECT ...)``).

The closures evaluate against the same :class:`EvaluationContext` scope dicts
the interpreter uses, so both paths are interchangeable row for row — the
differential test harness relies on that.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.aggregates import is_known_aggregate
from repro.engine.errors import ExecutionError
from repro.engine.evaluator import EvaluationContext, _like_to_regex
from repro.engine.functions import SCALAR_FUNCTIONS, is_scalar_function
from repro.sql import ast
from repro.sql.render import render_expression

#: A compiled expression: evaluates one row given its evaluation context.
CompiledExpr = Callable[[EvaluationContext], Any]

#: [hits, misses] of the constant-subquery epoch caches, as plain ints —
#: the closures run per row, so no lock; advisory under concurrency.
_SUBQUERY_CACHE_STATS = [0, 0]

from repro.obs.metrics import registry as _obs_registry  # noqa: E402

_obs_registry.probe(
    "engine.subquery_cache",
    lambda: {
        "hits": _SUBQUERY_CACHE_STATS[0],
        "misses": _SUBQUERY_CACHE_STATS[1],
    },
)


class ExpressionCompiler:
    """Compile :mod:`repro.sql.ast` expressions into evaluation closures.

    Compiled closures are cached per AST node (identity-keyed, holding the
    node alive), so correlated subqueries re-executed for every outer row
    compile their expressions only once.

    Args:
        subquery_is_constant: Optional predicate deciding whether a subquery
            provably does not depend on the enclosing row.  Constant
            subqueries are executed once per :meth:`new_execution` epoch and
            their result reused for every row.
    """

    def __init__(
        self, subquery_is_constant: Optional[Callable[[ast.Query], bool]] = None
    ) -> None:
        self._subquery_is_constant = subquery_is_constant or (lambda query: False)
        self._cache: Dict[int, Tuple[ast.Expression, CompiledExpr]] = {}
        #: Epoch counter; cached subquery results are valid within one epoch.
        self.generation = 0

    def new_execution(self) -> None:
        """Start a new execution epoch, invalidating cached subquery results."""
        self.generation += 1

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    #: The closure cache is flushed wholesale past this size so a compiler
    #: serving many distinct ASTs cannot pin unbounded memory.
    _MAX_CACHE_ENTRIES = 4096

    def compile(self, expression: ast.Expression) -> CompiledExpr:
        """Return the compiled closure for ``expression`` (cached)."""
        key = id(expression)
        cached = self._cache.get(key)
        if cached is not None and cached[0] is expression:
            return cached[1]
        compiled = self._lower(expression)
        if len(self._cache) >= self._MAX_CACHE_ENTRIES:
            self._cache.clear()
        self._cache[key] = (expression, compiled)
        return compiled

    def compile_predicate(self, expression: Optional[ast.Expression]) -> Callable[[EvaluationContext], bool]:
        """Compile a boolean condition; NULL counts as not satisfied."""
        if expression is None:
            return lambda context: True
        compiled = self.compile(expression)
        return lambda context: bool(compiled(context))

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def _lower(self, expression: ast.Expression) -> CompiledExpr:
        if isinstance(expression, ast.Literal):
            value = expression.value
            return lambda context: value
        if isinstance(expression, ast.Column):
            return _lower_column(expression)
        if isinstance(expression, ast.Star):
            def star(context: EvaluationContext) -> Any:
                raise ExecutionError(
                    "'*' is only valid inside COUNT(*) or as a projection item"
                )

            return star
        if isinstance(expression, ast.UnaryOp):
            return self._lower_unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._lower_binary(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._lower_function(expression)
        if isinstance(expression, ast.CaseExpression):
            return self._lower_case(expression)
        if isinstance(expression, ast.InList):
            return self._lower_in_list(expression)
        if isinstance(expression, ast.Between):
            return self._lower_between(expression)
        if isinstance(expression, ast.Like):
            return self._lower_like(expression)
        if isinstance(expression, ast.IsNull):
            operand = self.compile(expression.expression)
            if expression.negated:
                return lambda context: operand(context) is not None
            return lambda context: operand(context) is None
        if isinstance(expression, ast.Cast):
            return self._lower_cast(expression)
        if isinstance(expression, ast.ScalarSubquery):
            return self._lower_scalar_subquery(expression)
        if isinstance(expression, ast.InSubquery):
            return self._lower_in_subquery(expression)
        if isinstance(expression, ast.Exists):
            return self._lower_exists(expression)

        def unsupported(context: EvaluationContext) -> Any:
            raise ExecutionError(
                f"Cannot evaluate expression of type {type(expression).__name__}"
            )

        return unsupported

    def _lower_unary(self, expression: ast.UnaryOp) -> CompiledExpr:
        operand = self.compile(expression.operand)
        operator = expression.operator.upper()
        if operator == "NOT":
            def negate(context: EvaluationContext) -> Any:
                value = operand(context)
                if value is None:
                    return None
                return not bool(value)

            return negate
        if operator == "-":
            def minus(context: EvaluationContext) -> Any:
                value = operand(context)
                return None if value is None else -value

            return minus

        def unknown(context: EvaluationContext) -> Any:
            raise ExecutionError(f"Unknown unary operator: {expression.operator}")

        return unknown

    def _lower_binary(self, expression: ast.BinaryOp) -> CompiledExpr:
        left = self.compile(expression.left)
        right = self.compile(expression.right)
        operator = expression.operator.upper()

        if operator == "AND":
            def logical_and(context: EvaluationContext) -> Any:
                lhs = left(context)
                if lhs is not None and not lhs:
                    return False
                rhs = right(context)
                if rhs is not None and not rhs:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return logical_and
        if operator == "OR":
            def logical_or(context: EvaluationContext) -> Any:
                lhs = left(context)
                if lhs:
                    return True
                rhs = right(context)
                if rhs:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return logical_or

        factory = _BINARY_OPERATORS.get(operator)
        if factory is not None:
            return factory(left, right)

        def unknown(context: EvaluationContext) -> Any:
            raise ExecutionError(f"Unknown operator: {expression.operator}")

        return unknown

    def _lower_function(self, call: ast.FunctionCall) -> CompiledExpr:
        name = call.name.upper()
        if call.window is not None:
            key = render_expression(call)

            def window_value(context: EvaluationContext) -> Any:
                aggregates = context.aggregates
                if key in aggregates:
                    return aggregates[key]
                raise ExecutionError(
                    f"Window function {name} was not pre-computed by the executor"
                )

            return window_value
        if is_known_aggregate(name) and not is_scalar_function(name):
            key = render_expression(call)

            def aggregate_value(context: EvaluationContext) -> Any:
                aggregates = context.aggregates
                if key in aggregates:
                    return aggregates[key]
                raise ExecutionError(
                    f"Aggregate function {name} used outside of an aggregation context"
                )

            return aggregate_value

        function = SCALAR_FUNCTIONS.get(name)
        if function is None:
            def unknown(context: EvaluationContext) -> Any:
                raise ExecutionError(f"Unknown scalar function: {name}")

            return unknown
        arguments = [self.compile(argument) for argument in call.arguments]
        if len(arguments) == 1:
            only = arguments[0]
            return lambda context: function(only(context))
        if len(arguments) == 2:
            first, second = arguments
            return lambda context: function(first(context), second(context))
        return lambda context: function(*[argument(context) for argument in arguments])

    def _lower_case(self, expression: ast.CaseExpression) -> CompiledExpr:
        branches = [
            (self.compile(branch.condition), self.compile(branch.result))
            for branch in expression.branches
        ]
        default = self.compile(expression.default) if expression.default is not None else None

        def case(context: EvaluationContext) -> Any:
            for condition, result in branches:
                if condition(context):
                    return result(context)
            if default is not None:
                return default(context)
            return None

        return case

    def _lower_in_list(self, expression: ast.InList) -> CompiledExpr:
        probe = self.compile(expression.expression)
        negated = expression.negated
        if all(isinstance(value, ast.Literal) for value in expression.values):
            constants = [
                value.value
                for value in expression.values
                if value.value is not None  # type: ignore[union-attr]
            ]

            def member_const(context: EvaluationContext) -> Any:
                value = probe(context)
                if value is None:
                    return None
                result = value in constants
                return (not result) if negated else result

            return member_const
        values = [self.compile(value) for value in expression.values]

        def member(context: EvaluationContext) -> Any:
            value = probe(context)
            if value is None:
                return None
            candidates = [fn(context) for fn in values]
            result = value in [candidate for candidate in candidates if candidate is not None]
            return (not result) if negated else result

        return member

    def _lower_between(self, expression: ast.Between) -> CompiledExpr:
        probe = self.compile(expression.expression)
        low = self.compile(expression.low)
        high = self.compile(expression.high)
        negated = expression.negated

        def between(context: EvaluationContext) -> Any:
            value = probe(context)
            low_value = low(context)
            high_value = high(context)
            if value is None or low_value is None or high_value is None:
                return None
            result = low_value <= value <= high_value
            return (not result) if negated else result

        return between

    def _lower_like(self, expression: ast.Like) -> CompiledExpr:
        probe = self.compile(expression.expression)
        negated = expression.negated
        pattern_node = expression.pattern
        # Standard SQL LIKE is case-sensitive; the explicit flag keeps this
        # path in lockstep with the interpreted evaluator's default.
        case_insensitive = False
        if isinstance(pattern_node, ast.Literal) and pattern_node.value is not None:
            regex = _like_to_regex(str(pattern_node.value), case_insensitive)

            def like_const(context: EvaluationContext) -> Any:
                value = probe(context)
                if value is None:
                    return None
                result = bool(regex.match(str(value)))
                return (not result) if negated else result

            return like_const
        pattern = self.compile(pattern_node)

        def like(context: EvaluationContext) -> Any:
            value = probe(context)
            pattern_value = pattern(context)
            if value is None or pattern_value is None:
                return None
            result = bool(
                _like_to_regex(str(pattern_value), case_insensitive).match(str(value))
            )
            return (not result) if negated else result

        return like

    def _lower_cast(self, expression: ast.Cast) -> CompiledExpr:
        from repro.engine.types import coerce, parse_type_name

        operand = self.compile(expression.expression)
        target = parse_type_name(expression.target_type)
        return lambda context: coerce(operand(context), target)

    # ------------------------------------------------------------------
    # subqueries
    # ------------------------------------------------------------------
    def _lower_scalar_subquery(self, expression: ast.ScalarSubquery) -> CompiledExpr:
        query = expression.query
        constant = self._subquery_is_constant(query)
        compiler = self
        cache: List[Any] = [None, None]  # [generation, value]

        def scalar(context: EvaluationContext) -> Any:
            if constant and cache[0] == compiler.generation:
                _SUBQUERY_CACHE_STATS[0] += 1
                return cache[1]
            if constant:
                _SUBQUERY_CACHE_STATS[1] += 1
            relation = _run_subquery(context, query)
            if len(relation) == 0:
                value = None
            else:
                if len(relation) > 1:
                    raise ExecutionError("Scalar subquery returned more than one row")
                if len(relation.schema) != 1:
                    raise ExecutionError("Scalar subquery must return exactly one column")
                value = relation[0][relation.schema.names[0]]
            if constant:
                cache[0] = compiler.generation
                cache[1] = value
            return value

        return scalar

    def _lower_in_subquery(self, expression: ast.InSubquery) -> CompiledExpr:
        probe = self.compile(expression.expression)
        negated = expression.negated
        query = expression.query
        constant = self._subquery_is_constant(query)
        compiler = self
        cache: List[Any] = [None, None]  # [generation, value set]

        def member(context: EvaluationContext) -> Any:
            value = probe(context)
            if value is None:
                return None
            if constant and cache[0] == compiler.generation:
                _SUBQUERY_CACHE_STATS[0] += 1
                values = cache[1]
            else:
                if constant:
                    _SUBQUERY_CACHE_STATS[1] += 1
                relation = _run_subquery(context, query)
                if len(relation.schema) != 1:
                    raise ExecutionError("IN subquery must return exactly one column")
                name = relation.schema.names[0]
                values = {row[name] for row in relation if row[name] is not None}
                if constant:
                    cache[0] = compiler.generation
                    cache[1] = values
            result = value in values
            return (not result) if negated else result

        return member

    def _lower_exists(self, expression: ast.Exists) -> CompiledExpr:
        query = expression.query
        negated = expression.negated
        constant = self._subquery_is_constant(query)
        compiler = self
        cache: List[Any] = [None, None]  # [generation, bool]

        def exists(context: EvaluationContext) -> Any:
            if constant and cache[0] == compiler.generation:
                _SUBQUERY_CACHE_STATS[0] += 1
                result = cache[1]
            else:
                if constant:
                    _SUBQUERY_CACHE_STATS[1] += 1
                result = len(_run_subquery(context, query)) > 0
                if constant:
                    cache[0] = compiler.generation
                    cache[1] = result
            return (not result) if negated else result

        return exists


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------


def _run_subquery(context: EvaluationContext, query: ast.Query) -> Any:
    if context.subquery_executor is None:
        raise ExecutionError("Subqueries require a query executor")
    return context.subquery_executor(query, context)


def _lower_column(column: ast.Column) -> CompiledExpr:
    name_key = column.name.lower()
    if column.table:
        qualified_key = f"{column.table.lower()}.{name_key}"
        error = f"Unknown column: {column.qualified_name}"

        def qualified_lookup(context: EvaluationContext) -> Any:
            current: Optional[EvaluationContext] = context
            while current is not None:
                scope = current.scope
                if qualified_key in scope:
                    return scope[qualified_key]
                current = current.parent
            current = context
            while current is not None:
                scope = current.scope
                if name_key in scope:
                    return scope[name_key]
                current = current.parent
            raise ExecutionError(error)

        return qualified_lookup
    error = f"Unknown column: {column.name}"

    def lookup(context: EvaluationContext) -> Any:
        current: Optional[EvaluationContext] = context
        while current is not None:
            scope = current.scope
            if name_key in scope:
                return scope[name_key]
            current = current.parent
        raise ExecutionError(error)

    return lookup


def _arith(op: Callable[[Any, Any], Any]) -> Callable[[CompiledExpr, CompiledExpr], CompiledExpr]:
    def factory(left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
        def run(context: EvaluationContext) -> Any:
            lhs = left(context)
            rhs = right(context)
            if lhs is None or rhs is None:
                return None
            return op(lhs, rhs)

        return run

    return factory


def _division(left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
    def run(context: EvaluationContext) -> Any:
        lhs = left(context)
        rhs = right(context)
        if lhs is None or rhs is None:
            return None
        if rhs == 0:
            return None
        return lhs / rhs

    return run


def _modulo(left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
    def run(context: EvaluationContext) -> Any:
        lhs = left(context)
        rhs = right(context)
        if lhs is None or rhs is None:
            return None
        if rhs == 0:
            return None
        return lhs % rhs

    return run


def _concat(left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
    def run(context: EvaluationContext) -> Any:
        lhs = left(context)
        rhs = right(context)
        if lhs is None or rhs is None:
            return None
        return str(lhs) + str(rhs)

    return run


def _equality(invert: bool) -> Callable[[CompiledExpr, CompiledExpr], CompiledExpr]:
    def factory(left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
        def run(context: EvaluationContext) -> Any:
            lhs = left(context)
            rhs = right(context)
            if lhs is None or rhs is None:
                return None
            return (lhs != rhs) if invert else (lhs == rhs)

        return run

    return factory


def _comparison(op: Callable[[Any, Any], bool]) -> Callable[[CompiledExpr, CompiledExpr], CompiledExpr]:
    def factory(left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
        def run(context: EvaluationContext) -> Any:
            lhs = left(context)
            rhs = right(context)
            if lhs is None or rhs is None:
                return None
            try:
                return op(lhs, rhs)
            except TypeError as exc:
                raise ExecutionError(
                    f"Cannot compare {type(lhs).__name__} and {type(rhs).__name__}"
                ) from exc

        return run

    return factory


_BINARY_OPERATORS: Dict[str, Callable[[CompiledExpr, CompiledExpr], CompiledExpr]] = {
    "+": _arith(lambda a, b: a + b),
    "-": _arith(lambda a, b: a - b),
    "*": _arith(lambda a, b: a * b),
    "/": _division,
    "%": _modulo,
    "||": _concat,
    "=": _equality(invert=False),
    "<>": _equality(invert=True),
    "!=": _equality(invert=True),
    "<": _comparison(lambda a, b: a < b),
    "<=": _comparison(lambda a, b: a <= b),
    ">": _comparison(lambda a, b: a > b),
    ">=": _comparison(lambda a, b: a >= b),
}
