"""Row-level expression evaluation.

The evaluator computes the value of a :mod:`repro.sql.ast` expression for one
row *scope*.  A scope is a plain dict mapping lower-cased column keys (both
``column`` and ``alias.column`` forms) to values.  Aggregate function values
are not computed here — the executor pre-computes them per group and passes
them in via :attr:`EvaluationContext.aggregates`, keyed by the rendered SQL of
the aggregate call.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.engine.errors import ExecutionError
from repro.engine.functions import call_scalar_function, is_scalar_function
from repro.engine.aggregates import is_known_aggregate
from repro.sql import ast
from repro.sql.render import render_expression


@dataclass
class EvaluationContext:
    """Everything needed to evaluate an expression for one row.

    Attributes:
        scope: Lower-cased column key → value for the current row.
        aggregates: Pre-computed aggregate/window values for the current row
            or group, keyed by ``render_expression(call)``.
        subquery_executor: Callback executing a ``SelectQuery`` and returning a
            :class:`~repro.engine.table.Relation`; required only when the
            expression contains subqueries.
        parent: Enclosing context for correlated subqueries.
    """

    scope: Dict[str, Any] = field(default_factory=dict)
    aggregates: Dict[str, Any] = field(default_factory=dict)
    subquery_executor: Optional[Callable[[ast.SelectQuery, "EvaluationContext"], Any]] = None
    parent: Optional["EvaluationContext"] = None

    def lookup(self, key: str) -> Any:
        """Resolve a column key, falling back to the parent context."""
        lowered = key.lower()
        if lowered in self.scope:
            return self.scope[lowered]
        if self.parent is not None:
            return self.parent.lookup(key)
        raise ExecutionError(f"Unknown column: {key}")

    def has(self, key: str) -> bool:
        """Return True when the key resolves in this or a parent scope."""
        lowered = key.lower()
        if lowered in self.scope:
            return True
        return self.parent.has(key) if self.parent is not None else False


def evaluate(expression: ast.Expression, context: EvaluationContext) -> Any:
    """Evaluate ``expression`` in ``context`` and return its value."""
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Column):
        return _evaluate_column(expression, context)
    if isinstance(expression, ast.Star):
        raise ExecutionError("'*' is only valid inside COUNT(*) or as a projection item")
    if isinstance(expression, ast.UnaryOp):
        return _evaluate_unary(expression, context)
    if isinstance(expression, ast.BinaryOp):
        return _evaluate_binary(expression, context)
    if isinstance(expression, ast.FunctionCall):
        return _evaluate_function(expression, context)
    if isinstance(expression, ast.CaseExpression):
        return _evaluate_case(expression, context)
    if isinstance(expression, ast.InList):
        return _evaluate_in_list(expression, context)
    if isinstance(expression, ast.Between):
        return _evaluate_between(expression, context)
    if isinstance(expression, ast.Like):
        return _evaluate_like(expression, context)
    if isinstance(expression, ast.IsNull):
        value = evaluate(expression.expression, context)
        return (value is not None) if expression.negated else (value is None)
    if isinstance(expression, ast.Cast):
        return _evaluate_cast(expression, context)
    if isinstance(expression, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return _evaluate_subquery_expression(expression, context)
    raise ExecutionError(f"Cannot evaluate expression of type {type(expression).__name__}")


def evaluate_predicate(expression: Optional[ast.Expression], context: EvaluationContext) -> bool:
    """Evaluate a boolean condition; NULL counts as not satisfied."""
    if expression is None:
        return True
    return bool(evaluate(expression, context))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _evaluate_column(column: ast.Column, context: EvaluationContext) -> Any:
    if column.table:
        qualified = f"{column.table}.{column.name}"
        if context.has(qualified):
            return context.lookup(qualified)
    if context.has(column.name):
        return context.lookup(column.name)
    if column.table:
        raise ExecutionError(f"Unknown column: {column.qualified_name}")
    raise ExecutionError(f"Unknown column: {column.name}")


def _evaluate_unary(expression: ast.UnaryOp, context: EvaluationContext) -> Any:
    operator = expression.operator.upper()
    value = evaluate(expression.operand, context)
    if operator == "NOT":
        if value is None:
            return None
        return not bool(value)
    if operator == "-":
        return None if value is None else -value
    raise ExecutionError(f"Unknown unary operator: {expression.operator}")


def _evaluate_binary(expression: ast.BinaryOp, context: EvaluationContext) -> Any:
    operator = expression.operator.upper()

    if operator == "AND":
        left = evaluate(expression.left, context)
        if left is not None and not left:
            return False
        right = evaluate(expression.right, context)
        if right is not None and not right:
            return False
        if left is None or right is None:
            return None
        return True
    if operator == "OR":
        left = evaluate(expression.left, context)
        if left:
            return True
        right = evaluate(expression.right, context)
        if right:
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate(expression.left, context)
    right = evaluate(expression.right, context)

    if operator in {"+", "-", "*", "/", "%"}:
        if left is None or right is None:
            return None
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            if right == 0:
                return None
            result = left / right
            return result
        if right == 0:
            return None
        return left % right
    if operator == "||":
        if left is None or right is None:
            return None
        return str(left) + str(right)

    if left is None or right is None:
        return None
    if operator == "=":
        return left == right
    if operator in {"<>", "!="}:
        return left != right
    try:
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"Cannot compare {type(left).__name__} and {type(right).__name__}"
        ) from exc
    raise ExecutionError(f"Unknown operator: {expression.operator}")


def _evaluate_function(call: ast.FunctionCall, context: EvaluationContext) -> Any:
    key = render_expression(call)
    if key in context.aggregates:
        return context.aggregates[key]
    name = call.name.upper()
    if call.window is not None:
        raise ExecutionError(
            f"Window function {name} was not pre-computed by the executor"
        )
    if is_known_aggregate(name) and not is_scalar_function(name):
        raise ExecutionError(
            f"Aggregate function {name} used outside of an aggregation context"
        )
    arguments = [evaluate(argument, context) for argument in call.arguments]
    return call_scalar_function(name, arguments)


def _evaluate_case(expression: ast.CaseExpression, context: EvaluationContext) -> Any:
    for branch in expression.branches:
        if evaluate_predicate(branch.condition, context):
            return evaluate(branch.result, context)
    if expression.default is not None:
        return evaluate(expression.default, context)
    return None


def _evaluate_in_list(expression: ast.InList, context: EvaluationContext) -> Any:
    value = evaluate(expression.expression, context)
    if value is None:
        return None
    values = [evaluate(item, context) for item in expression.values]
    result = value in [v for v in values if v is not None]
    return (not result) if expression.negated else result


def _evaluate_between(expression: ast.Between, context: EvaluationContext) -> Any:
    value = evaluate(expression.expression, context)
    low = evaluate(expression.low, context)
    high = evaluate(expression.high, context)
    if value is None or low is None or high is None:
        return None
    result = low <= value <= high
    return (not result) if expression.negated else result


#: Compiled LIKE patterns, keyed by ``(pattern, case_insensitive)``.
#: Patterns come from a small, query-authored vocabulary, so the memo is
#: unbounded.  The lock covers insertions only: concurrent scheduler workers
#: may compile the same pattern twice on a racing miss, but the cache dict
#: itself can never be observed mid-update.
_LIKE_REGEX_CACHE: Dict[Tuple[str, bool], re.Pattern] = {}
_LIKE_REGEX_LOCK = threading.Lock()

#: [hits, misses] as plain ints — this sits on the per-row interpreted LIKE
#: path, so it must not take a lock; advisory under concurrency.
_LIKE_CACHE_STATS = [0, 0]

from repro.obs.metrics import registry as _obs_registry  # noqa: E402

_obs_registry.probe(
    "engine.like_cache",
    lambda: {"hits": _LIKE_CACHE_STATS[0], "misses": _LIKE_CACHE_STATS[1]},
)


def _like_to_regex(pattern: str, case_insensitive: bool = False) -> re.Pattern:
    """Compile a SQL LIKE pattern.

    Standard ``LIKE`` is case-sensitive; the flag exists so a future
    ``ILIKE`` shares this memo.  Both the interpreted evaluator and the
    expression compiler go through this one function, so the two execution
    paths can never disagree on matching semantics.
    """
    key = (pattern, case_insensitive)
    cached = _LIKE_REGEX_CACHE.get(key)
    if cached is not None:
        _LIKE_CACHE_STATS[0] += 1
        return cached
    _LIKE_CACHE_STATS[1] += 1
    escaped = re.escape(pattern)
    # ``re.escape`` leaves % and _ untouched on recent Python versions but
    # escaped them historically; handle both spellings.
    escaped = escaped.replace(r"\%", ".*").replace("%", ".*")
    escaped = escaped.replace(r"\_", ".").replace("_", ".")
    compiled = re.compile(f"^{escaped}$", re.IGNORECASE if case_insensitive else 0)
    with _LIKE_REGEX_LOCK:
        return _LIKE_REGEX_CACHE.setdefault(key, compiled)


def _evaluate_like(expression: ast.Like, context: EvaluationContext) -> Any:
    value = evaluate(expression.expression, context)
    pattern = evaluate(expression.pattern, context)
    if value is None or pattern is None:
        return None
    result = bool(_like_to_regex(str(pattern)).match(str(value)))
    return (not result) if expression.negated else result


def _evaluate_cast(expression: ast.Cast, context: EvaluationContext) -> Any:
    from repro.engine.types import coerce, parse_type_name

    value = evaluate(expression.expression, context)
    return coerce(value, parse_type_name(expression.target_type))


def _evaluate_subquery_expression(expression: ast.Expression, context: EvaluationContext) -> Any:
    if context.subquery_executor is None:
        raise ExecutionError("Subqueries require a query executor")

    if isinstance(expression, ast.ScalarSubquery):
        relation = context.subquery_executor(expression.query, context)
        if len(relation) == 0:
            return None
        if len(relation) > 1:
            raise ExecutionError("Scalar subquery returned more than one row")
        row = relation[0]
        if len(relation.schema) != 1:
            raise ExecutionError("Scalar subquery must return exactly one column")
        return row[relation.schema.names[0]]

    if isinstance(expression, ast.InSubquery):
        value = evaluate(expression.expression, context)
        if value is None:
            return None
        relation = context.subquery_executor(expression.query, context)
        if len(relation.schema) != 1:
            raise ExecutionError("IN subquery must return exactly one column")
        name = relation.schema.names[0]
        values = {row[name] for row in relation if row[name] is not None}
        result = value in values
        return (not result) if expression.negated else result

    if isinstance(expression, ast.Exists):
        relation = context.subquery_executor(expression.query, context)
        result = len(relation) > 0
        return (not result) if expression.negated else result

    raise ExecutionError(f"Unsupported subquery expression: {type(expression).__name__}")
