"""Scalar function registry for the expression evaluator."""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Sequence

from repro.engine.errors import ExecutionError


def _require(args: Sequence[Any], count: int, name: str) -> None:
    if len(args) != count:
        raise ExecutionError(f"{name} expects {count} argument(s), got {len(args)}")


def _null_if_any_null(function: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(argument is None for argument in args):
            return None
        return function(*args)

    return wrapper


def _coalesce(*args: Any) -> Any:
    for argument in args:
        if argument is not None:
            return argument
    return None


def _nullif(*args: Any) -> Any:
    _require(args, 2, "NULLIF")
    return None if args[0] == args[1] else args[0]


def _round(*args: Any) -> Any:
    if args[0] is None:
        return None
    digits = int(args[1]) if len(args) > 1 and args[1] is not None else 0
    return round(float(args[0]), digits)


def _power(*args: Any) -> Any:
    _require(args, 2, "POWER")
    return float(args[0]) ** float(args[1])


def _mod(*args: Any) -> Any:
    _require(args, 2, "MOD")
    return args[0] % args[1]


def _substr(*args: Any) -> Any:
    text = str(args[0])
    start = int(args[1]) - 1
    if len(args) > 2:
        return text[start : start + int(args[2])]
    return text[start:]


def _greatest(*args: Any) -> Any:
    values = [a for a in args if a is not None]
    return max(values) if values else None


def _least(*args: Any) -> Any:
    values = [a for a in args if a is not None]
    return min(values) if values else None


def _width_bucket(*args: Any) -> Any:
    """``WIDTH_BUCKET(value, low, high, buckets)`` as in SQL:2003.

    Used by the anonymization examples to coarsen coordinates into grid cells.
    """
    _require(args, 4, "WIDTH_BUCKET")
    value, low, high, buckets = (float(args[0]), float(args[1]), float(args[2]), int(args[3]))
    if value < low:
        return 0
    if value >= high:
        return buckets + 1
    return int((value - low) / (high - low) * buckets) + 1


#: Registry of scalar SQL functions.  Keys are upper-case function names.
SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "ABS": _null_if_any_null(lambda x: abs(x)),
    "CEIL": _null_if_any_null(lambda x: math.ceil(x)),
    "CEILING": _null_if_any_null(lambda x: math.ceil(x)),
    "FLOOR": _null_if_any_null(lambda x: math.floor(x)),
    "ROUND": _round,
    "SQRT": _null_if_any_null(lambda x: math.sqrt(x)),
    "EXP": _null_if_any_null(lambda x: math.exp(x)),
    "LN": _null_if_any_null(lambda x: math.log(x)),
    "LOG": _null_if_any_null(lambda x: math.log10(x)),
    "POWER": _null_if_any_null(_power),
    "MOD": _null_if_any_null(_mod),
    "SIGN": _null_if_any_null(lambda x: (x > 0) - (x < 0)),
    "UPPER": _null_if_any_null(lambda x: str(x).upper()),
    "LOWER": _null_if_any_null(lambda x: str(x).lower()),
    "LENGTH": _null_if_any_null(lambda x: len(str(x))),
    "TRIM": _null_if_any_null(lambda x: str(x).strip()),
    "SUBSTR": _null_if_any_null(_substr),
    "SUBSTRING": _null_if_any_null(_substr),
    "CONCAT": lambda *args: "".join("" if a is None else str(a) for a in args),
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "GREATEST": _greatest,
    "LEAST": _least,
    "WIDTH_BUCKET": _null_if_any_null(_width_bucket),
}


def call_scalar_function(name: str, args: Sequence[Any]) -> Any:
    """Invoke the scalar function ``name`` with the evaluated arguments."""
    function = SCALAR_FUNCTIONS.get(name.upper())
    if function is None:
        raise ExecutionError(f"Unknown scalar function: {name}")
    return function(*args)


def is_scalar_function(name: str) -> bool:
    """Return True when ``name`` is a registered scalar function."""
    return name.upper() in SCALAR_FUNCTIONS
