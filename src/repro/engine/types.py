"""Column data types and coercion rules."""

from __future__ import annotations

import enum
from datetime import datetime
from typing import Any


class DataType(enum.Enum):
    """The small set of column types needed for sensor data."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"

    @property
    def is_numeric(self) -> bool:
        """Return ``True`` for INTEGER and FLOAT."""
        return self in (DataType.INTEGER, DataType.FLOAT)


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    Booleans are checked before integers because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, datetime):
        return DataType.TIMESTAMP
    return DataType.TEXT


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the type that can represent values of both input types."""
    if left is right:
        return left
    numeric = {DataType.INTEGER, DataType.FLOAT}
    if left in numeric and right in numeric:
        return DataType.FLOAT
    return DataType.TEXT


def coerce(value: Any, target: DataType) -> Any:
    """Coerce ``value`` to ``target``; ``None`` always stays ``None``."""
    if value is None:
        return None
    if target is DataType.INTEGER:
        return int(value)
    if target is DataType.FLOAT:
        return float(value)
    if target is DataType.BOOLEAN:
        if isinstance(value, str):
            return value.strip().lower() in {"true", "t", "1", "yes"}
        return bool(value)
    if target is DataType.TEXT:
        return str(value)
    if target is DataType.TIMESTAMP:
        if isinstance(value, datetime):
            return value
        if isinstance(value, (int, float)):
            return datetime.fromtimestamp(value)
        return datetime.fromisoformat(str(value))
    raise ValueError(f"Unknown target type: {target}")


def parse_type_name(name: str) -> DataType:
    """Map a SQL type name (``INT``, ``REAL``, ``VARCHAR``...) to a DataType."""
    normalized = name.strip().upper()
    if normalized in {"INT", "INTEGER", "BIGINT", "SMALLINT"}:
        return DataType.INTEGER
    if normalized in {"FLOAT", "REAL", "DOUBLE", "NUMERIC", "DECIMAL"}:
        return DataType.FLOAT
    if normalized in {"BOOL", "BOOLEAN"}:
        return DataType.BOOLEAN
    if normalized in {"TIMESTAMP", "DATETIME", "DATE", "TIME"}:
        return DataType.TIMESTAMP
    return DataType.TEXT
