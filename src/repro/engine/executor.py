"""Query executor: evaluates a parsed query against a catalog of relations.

The executor intentionally favours clarity over speed — relations are small
in-memory sensor tables, joins are nested loops, grouping is a dict of lists.
That is sufficient for the workloads of the paper (thousands to a few hundred
thousand sensor rows per experiment) while keeping the semantics auditable,
which matters because the privacy claims of the rewriter are verified by
executing original and rewritten queries and comparing results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.aggregates import compute_aggregate
from repro.engine.errors import ExecutionError
from repro.engine.evaluator import EvaluationContext, evaluate, evaluate_predicate
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import infer_type
from repro.engine.window import compute_window_values
from repro.sql import ast
from repro.sql.render import render_expression
from repro.sql.visitor import collect_function_calls

Scope = Dict[str, Any]


def _shallow_function_calls(node: ast.Node) -> List[ast.FunctionCall]:
    """Function calls in ``node`` that do not sit inside a nested subquery.

    Aggregates/windows belonging to a scalar/EXISTS/IN subquery are evaluated
    by that subquery's own executor pass, not by the enclosing query.
    """
    calls: List[ast.FunctionCall] = []
    stack: List[ast.Node] = [node]
    while stack:
        current = stack.pop()
        if current is None or isinstance(current, ast.Query):
            continue
        if isinstance(current, ast.FunctionCall):
            calls.append(current)
        stack.extend(child for child in current.children() if child is not None)
    return calls


class QueryExecutor:
    """Execute :class:`~repro.sql.ast.Query` nodes against named relations."""

    def __init__(self, catalog: Mapping[str, Relation]) -> None:
        self._catalog = {name.lower(): relation for name, relation in catalog.items()}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: ast.Query) -> Relation:
        """Execute ``query`` and return the result relation."""
        return self._execute_query(query, parent=None)

    def lookup_table(self, name: str) -> Relation:
        """Return the catalog relation registered under ``name``."""
        relation = self._catalog.get(name.lower())
        if relation is None:
            raise ExecutionError(f"Unknown table: {name}")
        return relation

    # ------------------------------------------------------------------
    # query dispatch
    # ------------------------------------------------------------------
    def _execute_query(self, query: ast.Query, parent: Optional[EvaluationContext]) -> Relation:
        if isinstance(query, ast.SetOperation):
            return self._execute_set_operation(query, parent)
        if isinstance(query, ast.SelectQuery):
            return self._execute_select(query, parent)
        raise ExecutionError(f"Cannot execute query of type {type(query).__name__}")

    def _execute_set_operation(
        self, query: ast.SetOperation, parent: Optional[EvaluationContext]
    ) -> Relation:
        left = self._execute_query(query.left, parent)
        right = self._execute_query(query.right, parent)
        if len(left.schema) != len(right.schema):
            raise ExecutionError("Set operation operands have different arity")
        operator = query.operator.upper()
        left_rows = [tuple(row[name] for name in left.schema.names) for row in left]
        right_rows = [tuple(row[name] for name in right.schema.names) for row in right]

        if operator == "UNION":
            combined = left_rows + right_rows
            result_rows = combined if query.all else _unique(combined)
        elif operator == "INTERSECT":
            right_set = set(map(_freeze_tuple, right_rows))
            result_rows = [row for row in left_rows if _freeze_tuple(row) in right_set]
            if not query.all:
                result_rows = _unique(result_rows)
        elif operator == "EXCEPT":
            right_set = set(map(_freeze_tuple, right_rows))
            result_rows = [row for row in left_rows if _freeze_tuple(row) not in right_set]
            if not query.all:
                result_rows = _unique(result_rows)
        else:
            raise ExecutionError(f"Unknown set operator: {query.operator}")

        rows = [dict(zip(left.schema.names, row)) for row in result_rows]
        return Relation(schema=left.schema, rows=rows, name="")

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------
    def _execute_select(
        self, query: ast.SelectQuery, parent: Optional[EvaluationContext]
    ) -> Relation:
        scopes, source_columns = self._evaluate_from(query.from_clause, parent)

        # WHERE
        if query.where is not None:
            scopes = [
                scope
                for scope in scopes
                if evaluate_predicate(query.where, self._context(scope, parent))
            ]

        has_group_by = bool(query.group_by)
        has_aggregates = self._select_has_aggregates(query)

        if has_group_by or has_aggregates:
            output_rows, output_names = self._execute_grouped(query, scopes, parent)
        else:
            output_rows, output_names = self._execute_flat(query, scopes, source_columns, parent)

        # DISTINCT
        if query.distinct:
            output_rows = _distinct_rows(output_rows, output_names)

        # ORDER BY (may reference output aliases or source columns)
        if query.order_by:
            output_rows = self._apply_order_by(query, output_rows, scopes, parent, has_group_by or has_aggregates)

        # LIMIT / OFFSET
        if query.offset is not None:
            output_rows = output_rows[query.offset :]
        if query.limit is not None:
            output_rows = output_rows[: query.limit]

        schema = _build_schema(output_names, output_rows)
        return Relation(schema=schema, rows=output_rows, name="")

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _evaluate_from(
        self, relation: Optional[ast.Relation], parent: Optional[EvaluationContext]
    ) -> Tuple[List[Scope], List[str]]:
        """Return per-row scopes and the ordered unqualified column names."""
        if relation is None:
            return [{}], []
        if isinstance(relation, ast.TableRef):
            table = self.lookup_table(relation.name)
            qualifier = relation.effective_name
            scopes = [_scoped_row(row, table.schema.names, qualifier) for row in table]
            return scopes, list(table.schema.names)
        if isinstance(relation, ast.SubqueryRef):
            result = self._execute_query(relation.query, parent)
            qualifier = relation.alias or ""
            scopes = [_scoped_row(row, result.schema.names, qualifier) for row in result]
            return scopes, list(result.schema.names)
        if isinstance(relation, ast.Join):
            return self._evaluate_join(relation, parent)
        raise ExecutionError(f"Cannot evaluate FROM item of type {type(relation).__name__}")

    def _evaluate_join(
        self, join: ast.Join, parent: Optional[EvaluationContext]
    ) -> Tuple[List[Scope], List[str]]:
        left_scopes, left_columns = self._evaluate_from(join.left, parent)
        right_scopes, right_columns = self._evaluate_from(join.right, parent)
        join_type = join.join_type.upper()
        columns = left_columns + [c for c in right_columns if c not in left_columns]

        condition = join.condition
        if join.using:
            condition = None  # handled explicitly below

        def matches(left: Scope, right: Scope) -> bool:
            if join.using:
                return all(
                    left.get(name.lower()) == right.get(name.lower()) for name in join.using
                )
            if condition is None:
                return True
            merged = {**left, **right}
            return evaluate_predicate(condition, self._context(merged, parent))

        combined: List[Scope] = []
        matched_right: set[int] = set()
        for left_scope in left_scopes:
            matched = False
            for right_index, right_scope in enumerate(right_scopes):
                if matches(left_scope, right_scope):
                    combined.append({**left_scope, **right_scope})
                    matched = True
                    matched_right.add(right_index)
            if not matched and join_type in {"LEFT", "FULL"}:
                null_right = {key: None for key in (right_scopes[0] if right_scopes else {})}
                combined.append({**left_scope, **_null_scope(right_columns, right_scopes)})
        if join_type in {"RIGHT", "FULL"}:
            for right_index, right_scope in enumerate(right_scopes):
                if right_index not in matched_right:
                    combined.append({**_null_scope(left_columns, left_scopes), **right_scope})
        return combined, columns

    # ------------------------------------------------------------------
    # projection without grouping
    # ------------------------------------------------------------------
    def _execute_flat(
        self,
        query: ast.SelectQuery,
        scopes: List[Scope],
        source_columns: List[str],
        parent: Optional[EvaluationContext],
    ) -> Tuple[List[Dict[str, Any]], List[str]]:
        items = self._expand_star_items(query.items, source_columns)
        window_calls = [
            call
            for item in items
            for call in _shallow_function_calls(item.expression)
            if call.window is not None
        ]
        window_values: Dict[str, List[Any]] = {}
        if window_calls:
            window_values = compute_window_values(window_calls, scopes, parent)

        output_names = self._output_names(items)
        output_rows: List[Dict[str, Any]] = []
        for index, scope in enumerate(scopes):
            aggregates = {key: values[index] for key, values in window_values.items()}
            context = self._context(scope, parent, aggregates)
            row = {}
            for item, name in zip(items, output_names):
                row[name] = evaluate(item.expression, context)
            output_rows.append(row)
        return output_rows, output_names

    # ------------------------------------------------------------------
    # grouped projection
    # ------------------------------------------------------------------
    def _execute_grouped(
        self,
        query: ast.SelectQuery,
        scopes: List[Scope],
        parent: Optional[EvaluationContext],
    ) -> Tuple[List[Dict[str, Any]], List[str]]:
        items = query.items
        if any(isinstance(item.expression, ast.Star) for item in items):
            raise ExecutionError("SELECT * cannot be combined with GROUP BY / aggregates")

        groups: Dict[Tuple[Any, ...], List[Scope]] = {}
        order: List[Tuple[Any, ...]] = []
        for scope in scopes:
            context = self._context(scope, parent)
            key = tuple(
                _freeze(evaluate(expression, context)) for expression in query.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(scope)

        # A query with aggregates but no GROUP BY forms one global group, even
        # when the input is empty (COUNT(*) over an empty table is 0).
        if not query.group_by and not groups:
            groups[()] = []
            order.append(())

        aggregate_calls = self._collect_aggregate_calls(query)
        output_names = self._output_names(items)
        output_rows: List[Dict[str, Any]] = []

        for key in order:
            group_scopes = groups[key]
            aggregates = self._compute_group_aggregates(aggregate_calls, group_scopes, parent)
            representative = group_scopes[0] if group_scopes else {}
            context = self._context(representative, parent, aggregates)

            if query.having is not None and not evaluate_predicate(query.having, context):
                continue

            row = {}
            for item, name in zip(items, output_names):
                row[name] = evaluate(item.expression, context)
            output_rows.append(row)
        return output_rows, output_names

    def _collect_aggregate_calls(self, query: ast.SelectQuery) -> List[ast.FunctionCall]:
        calls: List[ast.FunctionCall] = []
        sources: List[ast.Node] = [item.expression for item in query.items]
        if query.having is not None:
            sources.append(query.having)
        for item in query.order_by:
            sources.append(item.expression)
        for source in sources:
            for call in _shallow_function_calls(source):
                if call.window is None and ast.is_aggregate_function(call.name):
                    calls.append(call)
        return calls

    def _compute_group_aggregates(
        self,
        calls: Sequence[ast.FunctionCall],
        group_scopes: List[Scope],
        parent: Optional[EvaluationContext],
    ) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        for call in calls:
            key = render_expression(call)
            if key in results:
                continue
            is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
            if is_star:
                argument_columns = [[1] * len(group_scopes)]
            else:
                argument_columns = []
                for argument in call.arguments:
                    column_values = [
                        evaluate(argument, self._context(scope, parent))
                        for scope in group_scopes
                    ]
                    argument_columns.append(column_values)
                if not argument_columns:
                    argument_columns = [[1] * len(group_scopes)]
            results[key] = compute_aggregate(
                call.name, argument_columns, is_star=is_star, distinct=call.distinct
            )
        return results

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _context(
        self,
        scope: Scope,
        parent: Optional[EvaluationContext],
        aggregates: Optional[Dict[str, Any]] = None,
    ) -> EvaluationContext:
        return EvaluationContext(
            scope=scope,
            aggregates=aggregates or {},
            subquery_executor=self._execute_subquery,
            parent=parent,
        )

    def _execute_subquery(
        self, query: ast.SelectQuery, context: EvaluationContext
    ) -> Relation:
        return self._execute_query(query, parent=context)

    def _select_has_aggregates(self, query: ast.SelectQuery) -> bool:
        sources: List[ast.Node] = [item.expression for item in query.items]
        if query.having is not None:
            sources.append(query.having)
        for source in sources:
            for call in _shallow_function_calls(source):
                if call.window is None and ast.is_aggregate_function(call.name):
                    return True
        return False

    def _expand_star_items(
        self, items: Sequence[ast.SelectItem], source_columns: List[str]
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                if item.expression.table:
                    qualifier = item.expression.table
                    expanded.extend(
                        ast.SelectItem(expression=ast.Column(name=name, table=qualifier))
                        for name in source_columns
                    )
                else:
                    expanded.extend(
                        ast.SelectItem(expression=ast.Column(name=name))
                        for name in source_columns
                    )
            else:
                expanded.append(item)
        return expanded

    def _output_names(self, items: Sequence[ast.SelectItem]) -> List[str]:
        names: List[str] = []
        used: set[str] = set()
        for index, item in enumerate(items):
            name = item.output_name or render_expression(item.expression)
            base = name
            suffix = 1
            while name.lower() in used:
                suffix += 1
                name = f"{base}_{suffix}"
            used.add(name.lower())
            names.append(name)
        return names

    def _apply_order_by(
        self,
        query: ast.SelectQuery,
        output_rows: List[Dict[str, Any]],
        scopes: List[Scope],
        parent: Optional[EvaluationContext],
        grouped: bool,
    ) -> List[Dict[str, Any]]:
        # After grouping the source scopes no longer align with the output
        # rows, so ORDER BY expressions are evaluated against the output row
        # only.  For flat queries the source scope is merged in as fallback.
        def row_scope(index: int, row: Dict[str, Any]) -> Scope:
            scope = {key.lower(): value for key, value in row.items()}
            if not grouped and index < len(scopes):
                merged = dict(scopes[index])
                merged.update(scope)
                return merged
            return scope

        def sort_key(pair: Tuple[int, Dict[str, Any]]) -> Tuple:
            index, row = pair
            context = self._context(row_scope(index, row), parent)
            keys = []
            for item in query.order_by:
                try:
                    value = evaluate(item.expression, context)
                except ExecutionError:
                    value = None
                keys.append(_OrderKey(value, item.ascending))
            return tuple(keys)

        ordered = sorted(enumerate(output_rows), key=sort_key)
        return [row for _, row in ordered]


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------


class _OrderKey:
    """Comparable wrapper handling None values and descending order."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_OrderKey") -> bool:
        left, right = self.value, other.value
        if not self.ascending:
            left, right = right, left
        if left is None:
            return right is not None
        if right is None:
            return False
        try:
            return left < right
        except TypeError:
            return str(left) < str(right)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


def _scoped_row(row: Mapping[str, Any], column_names: Sequence[str], qualifier: str) -> Scope:
    scope: Scope = {}
    for name in column_names:
        value = row.get(name)
        scope[name.lower()] = value
        if qualifier:
            scope[f"{qualifier.lower()}.{name.lower()}"] = value
    return scope


def _null_scope(columns: Sequence[str], scopes: List[Scope]) -> Scope:
    template = scopes[0] if scopes else {name.lower(): None for name in columns}
    return {key: None for key in template}


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _freeze_tuple(row: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return tuple(_freeze(value) for value in row)


def _unique(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    seen: set = set()
    result = []
    for row in rows:
        key = _freeze_tuple(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _distinct_rows(rows: List[Dict[str, Any]], names: List[str]) -> List[Dict[str, Any]]:
    seen: set = set()
    result = []
    for row in rows:
        key = tuple(_freeze(row.get(name)) for name in names)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _build_schema(names: List[str], rows: List[Dict[str, Any]]) -> Schema:
    columns = []
    for name in names:
        data_type = None
        for row in rows:
            value = row.get(name)
            if value is not None:
                data_type = infer_type(value)
                break
        columns.append(ColumnDef(name=name, data_type=data_type or infer_type(0.0)))
    return Schema(columns)
