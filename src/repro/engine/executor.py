"""Query executor: evaluates a parsed query against a catalog of relations.

The executor has two execution paths over the same AST and the same scope
dicts:

* **Compiled (default).** Expressions are lowered once per query to Python
  closures (:mod:`repro.engine.compile`): column keys are pre-lowered,
  operators and scalar functions are resolved at compile time, and provably
  uncorrelated subqueries execute once per query.  Equi-joins run as hash
  joins and uncorrelated ``IN (SELECT ...)`` conjuncts as hash semi-joins
  (:mod:`repro.engine.join`); GROUP BY is a single pass over the input that
  feeds incremental aggregate accumulators
  (:func:`repro.engine.aggregates.make_accumulator`).
* **Interpreted (reference oracle).** The original per-row ``evaluate()``
  tree walk with nested-loop joins and per-group aggregate recomputation.
  It intentionally favours clarity over speed and is kept as the auditable
  reference — the privacy claims of the rewriter are verified by executing
  original and rewritten queries and comparing results, and the differential
  test harness asserts that the compiled path returns relations identical to
  this oracle over the whole query corpus.

Select the path per executor (``QueryExecutor(catalog, use_compiled=...)``)
or process-wide via :func:`set_default_execution_mode` /
:func:`execution_mode`; benchmarks use the latter to time both paths in the
same run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.engine.aggregates import (
    compute_aggregate,
    is_decomposable_aggregate,
    make_accumulator,
)
from repro.engine.compile import CompiledExpr, ExpressionCompiler
from repro.engine.errors import ExecutionError
from repro.engine.evaluator import EvaluationContext, evaluate, evaluate_predicate
from repro.engine.join import (
    UnhashableJoinKey,
    extract_equi_keys,
    hash_join,
    hash_semi_join,
)
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import infer_type
from repro.engine.stats import optimizer_enabled, optimizer_stats
from repro.engine.vectorized import (
    _OrderKey,
    build_schema as _build_schema,
    distinct_rows as _distinct_rows,
    freeze_value as _freeze,
    try_execute_partial,
    try_execute_select,
    vectorized_enabled,
)
from repro.engine.window import compute_window_values
from repro.sql import ast
from repro.sql.render import render_expression

Scope = Dict[str, Any]

_EMPTY_AGGREGATES: Dict[str, Any] = {}
_STAR_ROW = (1,)

#: [SELECT executions, partial-aggregation executions] — plain ints on the
#: per-query path; read via pull-based probes so fast-path hit *rates*
#: (vectorized hits / executions) can be derived from metric snapshots.
_exec_counts = [0, 0]

from repro.obs.metrics import registry as _obs_registry  # noqa: E402

_obs_registry.probe("engine.executor.selects", lambda: _exec_counts[0])
_obs_registry.probe("engine.executor.partial_aggregations", lambda: _exec_counts[1])

_MODES = ("compiled", "interpreted")
_default_mode = "compiled"

#: Per-thread mode override; lets concurrent scheduler workers and sessions
#: each pin an execution path without racing on the process-wide default.
_thread_mode = threading.local()


def set_default_execution_mode(mode: str) -> None:
    """Set the process-wide default path for new :class:`QueryExecutor`\\ s."""
    global _default_mode
    if mode not in _MODES:
        raise ValueError(f"Unknown execution mode: {mode!r} (expected one of {_MODES})")
    _default_mode = mode


def default_execution_mode() -> str:
    """The calling thread's execution mode (override, else process default)."""
    return getattr(_thread_mode, "mode", None) or _default_mode


@contextmanager
def execution_mode(mode: str) -> Iterator[None]:
    """Temporarily switch the calling thread's execution mode.

    The override is thread-local: the benchmark harness flips modes in its
    own thread while scheduler workers (which enter this context manager per
    task) stay unaffected by each other.
    """
    if mode not in _MODES:
        raise ValueError(f"Unknown execution mode: {mode!r} (expected one of {_MODES})")
    previous = getattr(_thread_mode, "mode", None)
    _thread_mode.mode = mode
    try:
        yield
    finally:
        _thread_mode.mode = previous


def _shallow_function_calls(node: ast.Node) -> List[ast.FunctionCall]:
    """Function calls in ``node`` that do not sit inside a nested subquery.

    Aggregates/windows belonging to a scalar/EXISTS/IN subquery are evaluated
    by that subquery's own executor pass, not by the enclosing query.
    """
    calls: List[ast.FunctionCall] = []
    stack: List[ast.Node] = [node]
    while stack:
        current = stack.pop()
        if current is None or isinstance(current, ast.Query):
            continue
        if isinstance(current, ast.FunctionCall):
            calls.append(current)
        stack.extend(child for child in current.children() if child is not None)
    return calls


class _AggregateSpec:
    """One distinct aggregate call of a grouped query (compiled path)."""

    __slots__ = ("key", "name", "is_star", "distinct", "arg_fns", "arg_count")

    def __init__(
        self,
        key: str,
        name: str,
        is_star: bool,
        distinct: bool,
        arg_fns: Optional[List[CompiledExpr]],
    ) -> None:
        self.key = key
        self.name = name
        self.is_star = is_star
        self.distinct = distinct
        self.arg_fns = arg_fns
        self.arg_count = len(arg_fns) if arg_fns else 1

    def make(self) -> Any:
        return make_accumulator(
            self.name,
            is_star=self.is_star,
            distinct=self.distinct,
            arg_count=self.arg_count,
        )


class _FlatPlan:
    """Compile-once artefacts for a flat (non-grouped) SELECT."""

    __slots__ = ("query", "items", "output_names", "window_calls", "item_fns", "columns_only")

    def __init__(self, query, items, output_names, window_calls, item_fns, columns_only) -> None:
        self.query = query
        self.items = items
        self.output_names = output_names
        self.window_calls = window_calls
        self.item_fns = item_fns
        #: ``[(output_name, Column)]`` when every item is a plain column
        #: reference and no window is involved — enables direct key copies.
        self.columns_only = columns_only


class _GroupPlan:
    """Compile-once artefacts for a grouped SELECT."""

    __slots__ = (
        "query",
        "output_names",
        "key_fns",
        "key_columns",
        "specs",
        "having_fn",
        "item_fns",
    )

    def __init__(
        self, query, output_names, key_fns, key_columns, specs, having_fn, item_fns
    ) -> None:
        self.query = query
        self.output_names = output_names
        self.key_fns = key_fns
        #: GROUP BY expressions as plain Columns (None when any is complex).
        self.key_columns = key_columns
        self.specs = specs
        self.having_fn = having_fn
        self.item_fns = item_fns


class _PartialSpec:
    """One decomposable aggregate call of a partially-aggregated query."""

    __slots__ = ("key", "name", "is_star", "distinct", "arg_eval")

    def __init__(
        self,
        key: str,
        name: str,
        is_star: bool,
        distinct: bool,
        arg_eval: Optional[Callable[[EvaluationContext], Any]],
    ) -> None:
        self.key = key
        self.name = name
        self.is_star = is_star
        self.distinct = distinct
        #: Evaluates the single argument for one row; ``None`` feeds the
        #: star row (``COUNT(*)`` / argument-free calls).
        self.arg_eval = arg_eval

    def make(self) -> Any:
        return make_accumulator(
            self.name, is_star=self.is_star, distinct=self.distinct, arg_count=1
        )


class _PartialPlan:
    """Compile-once artefacts for the partial-aggregation protocol.

    The same plan drives all three phases of a distributed GROUP BY: the
    *partial* phase (leaf chunks -> mergeable state rows), the *combine*
    phase (state rows -> fewer state rows, one per group) and the
    *finalize* phase (state rows -> the query's actual output).  State
    relations carry the group-key columns under their original names plus
    one opaque state column per distinct aggregate call.
    """

    __slots__ = ("query", "key_names", "state_names", "specs", "key_evals")

    def __init__(self, query, key_names, state_names, specs, key_evals) -> None:
        self.query = query
        #: Group-key column names, in GROUP BY order (original case).
        self.key_names = key_names
        #: State column names (``__agg0``, ``__agg1``, ...).
        self.state_names = state_names
        self.specs = specs
        #: Evaluates each group-key column for one row scope.
        self.key_evals = key_evals


class _WherePlan:
    """WHERE conjuncts split into ordered semi-join and predicate segments.

    Segment order follows the original conjunct order so the compiled path
    evaluates (and raises from) predicates exactly where the oracle's
    short-circuiting AND would.
    """

    __slots__ = ("where", "segments")

    def __init__(self, where, segments) -> None:
        self.where = where
        #: ``("semi", InSubquery)`` or ``("pred", Expression)`` entries.
        self.segments = segments


class QueryExecutor:
    """Execute :class:`~repro.sql.ast.Query` nodes against named relations."""

    def __init__(
        self, catalog: Mapping[str, Relation], use_compiled: Optional[bool] = None
    ) -> None:
        self._catalog = {name.lower(): relation for name, relation in catalog.items()}
        if use_compiled is None:
            use_compiled = default_execution_mode() == "compiled"
        self._use_compiled = bool(use_compiled)
        self._compiler: Optional[ExpressionCompiler] = (
            ExpressionCompiler(self._subquery_is_constant) if self._use_compiled else None
        )
        # Plan memos keyed by id(node); each entry keeps the node alive so the
        # id stays valid.  Queries re-executed per outer row (correlated
        # subqueries) hit these instead of re-deriving plans.
        self._flat_plans: Dict[int, _FlatPlan] = {}
        self._group_plans: Dict[int, _GroupPlan] = {}
        self._where_plans: Dict[int, _WherePlan] = {}
        self._partial_plans: Dict[int, _PartialPlan] = {}
        self._qualified_memo: Dict[int, Tuple[ast.Node, bool]] = {}
        # Vectorized scan plans (repro.engine.vectorized); entries cache the
        # "ineligible" verdict too, so bailing queries plan only once.
        self._vector_plans: Dict[int, Tuple[ast.Node, Any]] = {}
        self._vector_partial_plans: Dict[int, Tuple[ast.Node, Any]] = {}

    #: Plan memos are flushed wholesale past this size so a long-lived
    #: executor serving many distinct queries cannot grow without bound.
    _MAX_PLAN_ENTRIES = 512

    def _store_plan(self, memo: Dict[int, Any], key: int, plan: Any) -> None:
        if len(memo) >= self._MAX_PLAN_ENTRIES:
            memo.clear()
        memo[key] = plan

    def replace_relation(self, name: str, relation: Relation) -> None:
        """Swap a catalog entry whose column names are unchanged.

        Compiled plans only capture column *names* (star expansion, fast
        scope keys, subquery-constancy decisions), so a same-shape swap keeps
        every cached plan valid — the pipeline registers each fragment result
        under a stable name and schema on every run.
        """
        self._catalog[name.lower()] = relation

    @property
    def use_compiled(self) -> bool:
        """True when this executor runs the compiled path."""
        return self._use_compiled

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: ast.Query) -> Relation:
        """Execute ``query`` and return the result relation."""
        if self._compiler is not None:
            self._compiler.new_execution()
        return self._execute_query(query, parent=None)

    def lookup_table(self, name: str) -> Relation:
        """Return the catalog relation registered under ``name``."""
        relation = self._catalog.get(name.lower())
        if relation is None:
            raise ExecutionError(f"Unknown table: {name}")
        return relation

    # ------------------------------------------------------------------
    # query dispatch
    # ------------------------------------------------------------------
    def _execute_query(self, query: ast.Query, parent: Optional[EvaluationContext]) -> Relation:
        if isinstance(query, ast.SetOperation):
            return self._execute_set_operation(query, parent)
        if isinstance(query, ast.SelectQuery):
            return self._execute_select(query, parent)
        raise ExecutionError(f"Cannot execute query of type {type(query).__name__}")

    def _execute_set_operation(
        self, query: ast.SetOperation, parent: Optional[EvaluationContext]
    ) -> Relation:
        left = self._execute_query(query.left, parent)
        right = self._execute_query(query.right, parent)
        if len(left.schema) != len(right.schema):
            raise ExecutionError("Set operation operands have different arity")
        operator = query.operator.upper()
        left_rows = [tuple(row[name] for name in left.schema.names) for row in left]
        right_rows = [tuple(row[name] for name in right.schema.names) for row in right]

        if operator == "UNION":
            combined = left_rows + right_rows
            result_rows = combined if query.all else _unique(combined)
        elif operator == "INTERSECT":
            right_set = set(map(_freeze_tuple, right_rows))
            result_rows = [row for row in left_rows if _freeze_tuple(row) in right_set]
            if not query.all:
                result_rows = _unique(result_rows)
        elif operator == "EXCEPT":
            right_set = set(map(_freeze_tuple, right_rows))
            result_rows = [row for row in left_rows if _freeze_tuple(row) not in right_set]
            if not query.all:
                result_rows = _unique(result_rows)
        else:
            raise ExecutionError(f"Unknown set operator: {query.operator}")

        rows = [dict(zip(left.schema.names, row)) for row in result_rows]
        return Relation(schema=left.schema, rows=rows, name="")

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------
    def _execute_select(
        self, query: ast.SelectQuery, parent: Optional[EvaluationContext]
    ) -> Relation:
        # Columnar fast path: plain projections, simple predicates and
        # aggregate scans over a single catalog table evaluate directly on
        # the column arrays — no row scopes at all.  Ineligible shapes
        # return None and fall through to the row-at-a-time path below.
        _exec_counts[0] += 1
        if self._use_compiled and vectorized_enabled():
            vectorized = try_execute_select(self, query, parent)
            if vectorized is not None:
                return vectorized

        # Scopes only need alias-qualified keys when something in the query
        # subtree (including correlated subqueries) uses the qualified form.
        needs_qualified = not self._use_compiled or self._needs_qualified_scopes(query)
        scopes, source_columns = self._evaluate_from(
            query.from_clause, parent, needs_qualified
        )

        # WHERE
        if query.where is not None:
            if self._use_compiled:
                scopes = self._filter_where_compiled(query, scopes, parent)
            else:
                scopes = [
                    scope
                    for scope in scopes
                    if evaluate_predicate(query.where, self._context(scope, parent))
                ]

        has_group_by = bool(query.group_by)
        has_aggregates = self._select_has_aggregates(query)

        if has_group_by or has_aggregates:
            if self._use_compiled:
                output_rows, output_names = self._execute_grouped_compiled(query, scopes, parent)
            else:
                output_rows, output_names = self._execute_grouped(query, scopes, parent)
        else:
            if self._use_compiled:
                output_rows, output_names = self._execute_flat_compiled(
                    query, scopes, source_columns, parent
                )
            else:
                output_rows, output_names = self._execute_flat(query, scopes, source_columns, parent)

        # DISTINCT
        if query.distinct:
            output_rows = _distinct_rows(output_rows, output_names)

        # ORDER BY (may reference output aliases or source columns)
        if query.order_by:
            output_rows = self._apply_order_by(query, output_rows, scopes, parent, has_group_by or has_aggregates)

        # LIMIT / OFFSET
        if query.offset is not None:
            output_rows = output_rows[query.offset :]
        if query.limit is not None:
            output_rows = output_rows[: query.limit]

        schema = _build_schema(output_names, output_rows)
        return Relation(schema=schema, rows=output_rows, name="")

    # ------------------------------------------------------------------
    # WHERE (compiled)
    # ------------------------------------------------------------------
    def _where_plan(self, query: ast.SelectQuery) -> _WherePlan:
        where = query.where
        plan = self._where_plans.get(id(where))
        if plan is not None and plan.where is where:
            return plan
        segments: List[Tuple[str, ast.Expression]] = []
        run: List[ast.Expression] = []
        any_semi = False
        for term in ast.conjunction_terms(where):
            if isinstance(term, ast.InSubquery) and self._subquery_is_constant(term.query):
                if run:
                    segments.append(("pred", ast.conjunction(*run)))
                    run = []
                segments.append(("semi", term))
                any_semi = True
            else:
                run.append(term)
        if not any_semi:
            segments = [("pred", where)]  # keep the original node so compile caching hits
        elif run:
            segments.append(("pred", ast.conjunction(*run)))
        plan = _WherePlan(where, segments)
        self._store_plan(self._where_plans, id(where), plan)
        return plan

    def _filter_where_compiled(
        self,
        query: ast.SelectQuery,
        scopes: List[Scope],
        parent: Optional[EvaluationContext],
    ) -> List[Scope]:
        if not scopes:
            return scopes
        plan = self._where_plan(query)
        compiler = self._compiler
        assert compiler is not None
        context = self._fresh_context(parent)

        for kind, term in plan.segments:
            if kind == "semi":
                probe_fn = compiler.compile(term.expression)

                def probe(scope: Scope, _fn: CompiledExpr = probe_fn) -> Any:
                    context.scope = scope
                    return _fn(context)

                def key_source(_query: ast.Query = term.query) -> set:
                    relation = self._execute_query(_query, parent=context)
                    if len(relation.schema) != 1:
                        raise ExecutionError("IN subquery must return exactly one column")
                    name = relation.schema.names[0]
                    return {row[name] for row in relation if row[name] is not None}

                scopes = hash_semi_join(scopes, probe, key_source, negated=term.negated)
            else:
                predicate = compiler.compile_predicate(term)
                kept: List[Scope] = []
                for scope in scopes:
                    context.scope = scope
                    if predicate(context):
                        kept.append(scope)
                scopes = kept
            if not scopes:
                return scopes
        return scopes

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _needs_qualified_scopes(self, query: ast.SelectQuery) -> bool:
        """True when the query subtree references any ``alias.column`` form."""
        memo = self._qualified_memo.get(id(query))
        if memo is not None and memo[0] is query:
            return memo[1]
        needed = False
        stack: List[ast.Node] = [query]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if isinstance(node, (ast.Column, ast.Star)) and node.table:
                needed = True
                break
            stack.extend(child for child in node.children() if child is not None)
        self._store_plan(self._qualified_memo, id(query), (query, needed))
        return needed

    def _evaluate_from(
        self,
        relation: Optional[ast.Relation],
        parent: Optional[EvaluationContext],
        needs_qualified: bool = True,
    ) -> Tuple[List[Scope], List[str]]:
        """Return per-row scopes and the ordered unqualified column names."""
        scopes, columns, _ = self._evaluate_from_sources(relation, parent, needs_qualified)
        return scopes, columns

    def _evaluate_from_sources(
        self,
        relation: Optional[ast.Relation],
        parent: Optional[EvaluationContext],
        needs_qualified: bool = True,
    ) -> Tuple[List[Scope], List[str], Optional[Relation]]:
        """Like :meth:`_evaluate_from`, plus the backing columnar relation.

        The backing is the source :class:`Relation` when the FROM item is a
        single catalog table or derived table (one scope per row, in row
        order) — the hash-join fast path builds its key arrays from the
        backing's columns instead of probing every scope dict.  Join trees
        return ``None``.
        """
        if relation is None:
            return [{}], [], None
        if isinstance(relation, ast.TableRef):
            table = self.lookup_table(relation.name)
            scopes = _relation_scopes(
                table,
                relation.effective_name if needs_qualified else "",
                allow_reuse=self._use_compiled,
            )
            return scopes, list(table.schema.names), table
        if isinstance(relation, ast.SubqueryRef):
            result = self._execute_query(relation.query, parent)
            scopes = _relation_scopes(
                result,
                (relation.alias or "") if needs_qualified else "",
                allow_reuse=self._use_compiled,
            )
            return scopes, list(result.schema.names), result
        if isinstance(relation, ast.Join):
            scopes, columns = self._evaluate_join(relation, parent, needs_qualified)
            return scopes, columns, None
        raise ExecutionError(f"Cannot evaluate FROM item of type {type(relation).__name__}")

    def _evaluate_join(
        self, join: ast.Join, parent: Optional[EvaluationContext], needs_qualified: bool = True
    ) -> Tuple[List[Scope], List[str]]:
        left_scopes, left_columns, left_backing = self._evaluate_from_sources(
            join.left, parent, needs_qualified
        )
        right_scopes, right_columns, right_backing = self._evaluate_from_sources(
            join.right, parent, needs_qualified
        )
        join_type = join.join_type.upper()
        columns = left_columns + [c for c in right_columns if c not in left_columns]

        if self._use_compiled:
            combined = self._join_compiled(
                join, join_type, left_scopes, right_scopes, left_columns, right_columns, parent,
                left_backing, right_backing,
            )
            return combined, columns

        condition = join.condition
        if join.using:
            condition = None  # handled explicitly below

        def combine(left: Scope, right: Scope) -> Optional[Scope]:
            if join.using:
                if not all(
                    left.get(name.lower()) == right.get(name.lower()) for name in join.using
                ):
                    return None
                return {**left, **right}
            if condition is None:
                return {**left, **right}
            merged = {**left, **right}
            if evaluate_predicate(condition, self._context(merged, parent)):
                return merged
            return None

        combined = self._nested_loop_join(
            join_type, left_scopes, right_scopes, left_columns, right_columns, combine
        )
        return combined, columns

    @staticmethod
    def _nested_loop_join(
        join_type: str,
        left_scopes: List[Scope],
        right_scopes: List[Scope],
        left_columns: List[str],
        right_columns: List[str],
        combine: Callable[[Scope, Scope], Optional[Scope]],
    ) -> List[Scope]:
        """Shared nested-loop scaffold; ``combine`` merges matching pairs.

        Both execution paths and all outer-join padding flow through this one
        loop, so LEFT/RIGHT/FULL bookkeeping exists exactly once (hash joins
        replicate the same output order in :func:`repro.engine.join.hash_join`).
        """
        combined: List[Scope] = []
        matched_right: set[int] = set()
        for left_scope in left_scopes:
            matched = False
            for right_index, right_scope in enumerate(right_scopes):
                merged = combine(left_scope, right_scope)
                if merged is None:
                    continue
                combined.append(merged)
                matched = True
                matched_right.add(right_index)
            if not matched and join_type in {"LEFT", "FULL"}:
                combined.append({**left_scope, **_null_scope(right_columns, right_scopes)})
        if join_type in {"RIGHT", "FULL"}:
            for right_index, right_scope in enumerate(right_scopes):
                if right_index not in matched_right:
                    combined.append({**_null_scope(left_columns, left_scopes), **right_scope})
        return combined

    # ------------------------------------------------------------------
    # joins (compiled)
    # ------------------------------------------------------------------
    def _join_compiled(
        self,
        join: ast.Join,
        join_type: str,
        left_scopes: List[Scope],
        right_scopes: List[Scope],
        left_columns: List[str],
        right_columns: List[str],
        parent: Optional[EvaluationContext],
        left_backing: Optional[Relation] = None,
        right_backing: Optional[Relation] = None,
    ) -> List[Scope]:
        if left_scopes and right_scopes and join_type in {"INNER", "LEFT", "RIGHT", "FULL"}:
            if optimizer_enabled() and len(left_scopes) * len(right_scopes) <= 64:
                # Tiny inputs: hash-table setup costs more than the O(n*m)
                # scan.  Output-identical — the nested loop is the oracle
                # order the hash join replicates.
                optimizer_stats.nested_loop_joins += 1
                return self._nested_loop_join_compiled(
                    join, join_type, left_scopes, right_scopes,
                    left_columns, right_columns, parent,
                )
            try:
                combined = self._try_hash_join(
                    join, join_type, left_scopes, right_scopes, left_columns, right_columns,
                    parent, left_backing, right_backing,
                )
                if combined is not None:
                    return combined
            except UnhashableJoinKey:
                pass
        return self._nested_loop_join_compiled(
            join, join_type, left_scopes, right_scopes, left_columns, right_columns, parent
        )

    @staticmethod
    def _backed_key_arrays(
        backing: Optional[Relation],
        scopes: List[Scope],
        exprs: Sequence[ast.Expression],
        keep_nulls: bool,
    ) -> Optional[List[Optional[Tuple[Any, ...]]]]:
        """Per-row join key tuples built straight from the backing columns.

        Possible when the join side is a single table/derived relation (one
        scope per row) and every key expression is a plain column of it —
        then the hash table is built from the column arrays, with no
        per-scope closure calls.  ``keep_nulls`` selects USING semantics
        (``None == None`` matches) over ON semantics (NULL keys match
        nothing, signalled as a ``None`` key).
        """
        if backing is None or len(backing) != len(scopes):
            return None
        arrays = []
        for expression in exprs:
            if not isinstance(expression, ast.Column):
                return None
            array = backing.column_array(expression.name)
            if array is None:
                return None
            arrays.append(array)
        if len(arrays) == 1:
            array = arrays[0]
            if keep_nulls:
                return [(value,) for value in array]
            return [None if value is None else (value,) for value in array]
        if keep_nulls:
            return list(zip(*arrays))
        return [
            None if any(value is None for value in values) else values
            for values in zip(*arrays)
        ]

    def _try_hash_join(
        self,
        join: ast.Join,
        join_type: str,
        left_scopes: List[Scope],
        right_scopes: List[Scope],
        left_columns: List[str],
        right_columns: List[str],
        parent: Optional[EvaluationContext],
        left_backing: Optional[Relation] = None,
        right_backing: Optional[Relation] = None,
    ) -> Optional[List[Scope]]:
        compiler = self._compiler
        assert compiler is not None
        residual_fn: Optional[Callable[[Scope], bool]] = None
        left_key: Optional[Callable[[Scope], Optional[Tuple[Any, ...]]]] = None
        right_key: Optional[Callable[[Scope], Optional[Tuple[Any, ...]]]] = None

        if join.using:
            using = [name.lower() for name in join.using]
            using_columns = [ast.Column(name=name) for name in using]
            # USING compares with ``==`` where None matches None, so keys keep
            # their None values instead of signalling "no match".
            left_keys = self._backed_key_arrays(
                left_backing, left_scopes, using_columns, keep_nulls=True
            )
            right_keys = self._backed_key_arrays(
                right_backing, right_scopes, using_columns, keep_nulls=True
            )
            if left_keys is None or right_keys is None:
                def using_key(scope: Scope) -> Tuple[Any, ...]:
                    return tuple(scope.get(key) for key in using)

                left_key = right_key = using_key
                left_keys = right_keys = None
        else:
            if join.condition is None:
                return None
            plan = extract_equi_keys(
                join.condition, set(left_scopes[0]), set(right_scopes[0])
            )
            if plan is None:
                return None
            left_keys = self._backed_key_arrays(
                left_backing, left_scopes, plan.left_exprs, keep_nulls=False
            )
            right_keys = self._backed_key_arrays(
                right_backing, right_scopes, plan.right_exprs, keep_nulls=False
            )

            def make_key(
                fns: List[CompiledExpr], context: EvaluationContext
            ) -> Callable[[Scope], Optional[Tuple[Any, ...]]]:
                def key(scope: Scope) -> Optional[Tuple[Any, ...]]:
                    context.scope = scope
                    values = []
                    for fn in fns:
                        value = fn(context)
                        if value is None:
                            return None  # NULL keys never equi-match under ON
                        values.append(value)
                    return tuple(values)

                return key

            if left_keys is None:
                left_fns = [compiler.compile(expression) for expression in plan.left_exprs]
                left_key = make_key(left_fns, self._fresh_context(parent))
            if right_keys is None:
                right_fns = [compiler.compile(expression) for expression in plan.right_exprs]
                right_key = make_key(right_fns, self._fresh_context(parent))
            if plan.residual is not None:
                residual_pred = compiler.compile_predicate(plan.residual)
                residual_context = self._fresh_context(parent)

                def residual_fn(merged: Scope) -> bool:
                    residual_context.scope = merged
                    return residual_pred(residual_context)

        build_side = "right"
        if optimizer_enabled() and len(left_scopes) < len(right_scopes):
            # Build the hash table over the smaller side; purely physical,
            # the emitted scopes and their order are identical either way.
            build_side = "left"
            optimizer_stats.build_side_flips += 1
        return hash_join(
            left_scopes,
            right_scopes,
            left_key,
            right_key,
            join_type=join_type,
            residual=residual_fn,
            left_null=_null_scope(left_columns, left_scopes),
            right_null=_null_scope(right_columns, right_scopes),
            left_keys=left_keys,
            right_keys=right_keys,
            build_side=build_side,
        )

    def _nested_loop_join_compiled(
        self,
        join: ast.Join,
        join_type: str,
        left_scopes: List[Scope],
        right_scopes: List[Scope],
        left_columns: List[str],
        right_columns: List[str],
        parent: Optional[EvaluationContext],
    ) -> List[Scope]:
        compiler = self._compiler
        assert compiler is not None
        using = [name.lower() for name in join.using] if join.using else None
        condition = None if using else join.condition
        predicate = compiler.compile_predicate(condition) if condition is not None else None
        context = self._fresh_context(parent)

        def combine(left: Scope, right: Scope) -> Optional[Scope]:
            if using is not None:
                if not all(left.get(key) == right.get(key) for key in using):
                    return None
                return {**left, **right}
            merged = {**left, **right}
            if predicate is not None:
                context.scope = merged
                if not predicate(context):
                    return None
            return merged

        return self._nested_loop_join(
            join_type, left_scopes, right_scopes, left_columns, right_columns, combine
        )

    # ------------------------------------------------------------------
    # projection without grouping
    # ------------------------------------------------------------------
    def _execute_flat(
        self,
        query: ast.SelectQuery,
        scopes: List[Scope],
        source_columns: List[str],
        parent: Optional[EvaluationContext],
    ) -> Tuple[List[Dict[str, Any]], List[str]]:
        items = self._expand_star_items(query.items, source_columns)
        window_calls = [
            call
            for item in items
            for call in _shallow_function_calls(item.expression)
            if call.window is not None
        ]
        window_values: Dict[str, List[Any]] = {}
        if window_calls:
            window_values = compute_window_values(window_calls, scopes, parent)

        output_names = self._output_names(items)
        output_rows: List[Dict[str, Any]] = []
        for index, scope in enumerate(scopes):
            aggregates = {key: values[index] for key, values in window_values.items()}
            context = self._context(scope, parent, aggregates)
            row = {}
            for item, name in zip(items, output_names):
                row[name] = evaluate(item.expression, context)
            output_rows.append(row)
        return output_rows, output_names

    def _flat_plan(self, query: ast.SelectQuery, source_columns: List[str]) -> _FlatPlan:
        plan = self._flat_plans.get(id(query))
        if plan is not None and plan.query is query:
            return plan
        compiler = self._compiler
        assert compiler is not None
        items = self._expand_star_items(query.items, source_columns)
        window_calls = [
            call
            for item in items
            for call in _shallow_function_calls(item.expression)
            if call.window is not None
        ]
        output_names = self._output_names(items)
        item_fns = [compiler.compile(item.expression) for item in items]
        columns_only = None
        if not window_calls and all(
            isinstance(item.expression, ast.Column) for item in items
        ):
            columns_only = [
                (name, item.expression) for name, item in zip(output_names, items)
            ]
        plan = _FlatPlan(query, items, output_names, window_calls, item_fns, columns_only)
        self._store_plan(self._flat_plans, id(query), plan)
        return plan

    @staticmethod
    def _resolve_fast_keys(
        columns_only: List[Tuple[str, ast.Column]],
        scope: Scope,
        parent: Optional[EvaluationContext],
    ) -> Optional[List[Tuple[str, str]]]:
        """Map column-only projections to direct scope keys, if unambiguous.

        All scopes of one FROM evaluation share a key set, so probing the
        first scope decides for all rows.  Columns that would resolve through
        a parent context (or not at all) return None — the closure path owns
        those.
        """
        keys: List[Tuple[str, str]] = []
        for name, column in columns_only:
            low = column.name.lower()
            if column.table:
                qualified = f"{column.table.lower()}.{low}"
                if qualified in scope:
                    keys.append((name, qualified))
                    continue
                if parent is not None:
                    return None  # the parent chain may own the qualified key
            if low in scope:
                keys.append((name, low))
            else:
                return None
        return keys

    def _execute_flat_compiled(
        self,
        query: ast.SelectQuery,
        scopes: List[Scope],
        source_columns: List[str],
        parent: Optional[EvaluationContext],
    ) -> Tuple[List[Dict[str, Any]], List[str]]:
        plan = self._flat_plan(query, source_columns)
        window_values: Dict[str, List[Any]] = {}
        if plan.window_calls:
            window_values = compute_window_values(
                plan.window_calls, scopes, parent, compiler=self._compiler
            )

        output_names = plan.output_names
        if plan.columns_only is not None and scopes:
            keys = self._resolve_fast_keys(plan.columns_only, scopes[0], parent)
            if keys is not None:
                return [
                    {name: scope[key] for name, key in keys} for scope in scopes
                ], output_names

        item_fns = plan.item_fns
        context = self._fresh_context(parent)
        output_rows: List[Dict[str, Any]] = []
        if window_values:
            for index, scope in enumerate(scopes):
                context.scope = scope
                context.aggregates = {
                    key: values[index] for key, values in window_values.items()
                }
                output_rows.append(
                    {name: fn(context) for name, fn in zip(output_names, item_fns)}
                )
        else:
            for scope in scopes:
                context.scope = scope
                output_rows.append(
                    {name: fn(context) for name, fn in zip(output_names, item_fns)}
                )
        return output_rows, output_names

    # ------------------------------------------------------------------
    # grouped projection
    # ------------------------------------------------------------------
    def _execute_grouped(
        self,
        query: ast.SelectQuery,
        scopes: List[Scope],
        parent: Optional[EvaluationContext],
    ) -> Tuple[List[Dict[str, Any]], List[str]]:
        items = query.items
        if any(isinstance(item.expression, ast.Star) for item in items):
            raise ExecutionError("SELECT * cannot be combined with GROUP BY / aggregates")

        groups: Dict[Tuple[Any, ...], List[Scope]] = {}
        order: List[Tuple[Any, ...]] = []
        for scope in scopes:
            context = self._context(scope, parent)
            key = tuple(
                _freeze(evaluate(expression, context)) for expression in query.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(scope)

        # A query with aggregates but no GROUP BY forms one global group, even
        # when the input is empty (COUNT(*) over an empty table is 0).
        if not query.group_by and not groups:
            groups[()] = []
            order.append(())

        aggregate_calls = self._collect_aggregate_calls(query)
        output_names = self._output_names(items)
        output_rows: List[Dict[str, Any]] = []

        for key in order:
            group_scopes = groups[key]
            aggregates = self._compute_group_aggregates(aggregate_calls, group_scopes, parent)
            representative = group_scopes[0] if group_scopes else {}
            context = self._context(representative, parent, aggregates)

            if query.having is not None and not evaluate_predicate(query.having, context):
                continue

            row = {}
            for item, name in zip(items, output_names):
                row[name] = evaluate(item.expression, context)
            output_rows.append(row)
        return output_rows, output_names

    def _group_plan(self, query: ast.SelectQuery) -> _GroupPlan:
        plan = self._group_plans.get(id(query))
        if plan is not None and plan.query is query:
            return plan
        compiler = self._compiler
        assert compiler is not None
        items = query.items
        if any(isinstance(item.expression, ast.Star) for item in items):
            raise ExecutionError("SELECT * cannot be combined with GROUP BY / aggregates")
        key_fns = [compiler.compile(expression) for expression in query.group_by]
        specs: List[_AggregateSpec] = []
        seen: set[str] = set()
        for call in self._collect_aggregate_calls(query):
            key = render_expression(call)
            if key in seen:
                continue
            seen.add(key)
            is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
            if is_star or not call.arguments:
                arg_fns = None
            else:
                arg_fns = [compiler.compile(argument) for argument in call.arguments]
            specs.append(_AggregateSpec(key, call.name, is_star, call.distinct, arg_fns))
        having_fn = (
            compiler.compile_predicate(query.having) if query.having is not None else None
        )
        item_fns = [compiler.compile(item.expression) for item in items]
        key_columns = None
        if query.group_by and all(
            isinstance(expression, ast.Column) for expression in query.group_by
        ):
            key_columns = [("", expression) for expression in query.group_by]
        plan = _GroupPlan(
            query, self._output_names(items), key_fns, key_columns, specs, having_fn, item_fns
        )
        self._store_plan(self._group_plans, id(query), plan)
        return plan

    def _execute_grouped_compiled(
        self,
        query: ast.SelectQuery,
        scopes: List[Scope],
        parent: Optional[EvaluationContext],
    ) -> Tuple[List[Dict[str, Any]], List[str]]:
        plan = self._group_plan(query)
        specs = plan.specs
        key_fns = plan.key_fns
        context = self._fresh_context(parent)

        # Plain-column GROUP BY keys can skip expression evaluation entirely.
        fast_keys: Optional[List[str]] = None
        if plan.key_columns is not None and scopes:
            resolved = self._resolve_fast_keys(plan.key_columns, scopes[0], parent)
            if resolved is not None:
                fast_keys = [key for _, key in resolved]

        # Single pass: group keys and aggregate accumulators in one scan.
        groups: Dict[Tuple[Any, ...], Tuple[Scope, List[Any]]] = {}
        order: List[Tuple[Any, ...]] = []
        for scope in scopes:
            context.scope = scope
            context.aggregates = _EMPTY_AGGREGATES
            if fast_keys is not None:
                key = tuple(scope[k] for k in fast_keys)
                try:
                    group = groups.get(key)
                except TypeError:
                    # Unhashable key values: fall back to the frozen form the
                    # oracle always uses (identical on hashable values).
                    key = tuple(_freeze(value) for value in key)
                    group = groups.get(key)
            else:
                key = tuple(_freeze(fn(context)) for fn in key_fns)
                group = groups.get(key)
            if group is None:
                group = (scope, [spec.make() for spec in specs])
                groups[key] = group
                order.append(key)
            accumulators = group[1]
            for spec, accumulator in zip(specs, accumulators):
                arg_fns = spec.arg_fns
                if arg_fns is None:
                    accumulator.add(_STAR_ROW)
                elif len(arg_fns) == 1:
                    accumulator.add((arg_fns[0](context),))
                else:
                    accumulator.add(tuple(fn(context) for fn in arg_fns))

        if not query.group_by and not groups:
            groups[()] = ({}, [spec.make() for spec in specs])
            order.append(())

        output_names = plan.output_names
        item_fns = plan.item_fns
        output_rows: List[Dict[str, Any]] = []
        for key in order:
            representative, accumulators = groups[key]
            context.scope = representative
            context.aggregates = {
                spec.key: accumulator.result()
                for spec, accumulator in zip(specs, accumulators)
            }
            if plan.having_fn is not None and not plan.having_fn(context):
                continue
            output_rows.append(
                {name: fn(context) for name, fn in zip(output_names, item_fns)}
            )
        return output_rows, output_names

    def _collect_aggregate_calls(self, query: ast.SelectQuery) -> List[ast.FunctionCall]:
        calls: List[ast.FunctionCall] = []
        sources: List[ast.Node] = [item.expression for item in query.items]
        if query.having is not None:
            sources.append(query.having)
        for item in query.order_by:
            sources.append(item.expression)
        for source in sources:
            for call in _shallow_function_calls(source):
                if call.window is None and ast.is_aggregate_function(call.name):
                    calls.append(call)
        return calls

    def _compute_group_aggregates(
        self,
        calls: Sequence[ast.FunctionCall],
        group_scopes: List[Scope],
        parent: Optional[EvaluationContext],
    ) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        for call in calls:
            key = render_expression(call)
            if key in results:
                continue
            is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
            if is_star:
                argument_columns = [[1] * len(group_scopes)]
            else:
                argument_columns = []
                for argument in call.arguments:
                    column_values = [
                        evaluate(argument, self._context(scope, parent))
                        for scope in group_scopes
                    ]
                    argument_columns.append(column_values)
                if not argument_columns:
                    argument_columns = [[1] * len(group_scopes)]
            results[key] = compute_aggregate(
                call.name, argument_columns, is_star=is_star, distinct=call.distinct
            )
        return results

    # ------------------------------------------------------------------
    # partial aggregation (the distributed GROUP BY protocol)
    # ------------------------------------------------------------------
    def _expr_eval(self, expression: ast.Expression) -> Callable[[EvaluationContext], Any]:
        """A per-row evaluator for ``expression``, honouring the engine mode."""
        if self._compiler is not None:
            return self._compiler.compile(expression)
        return lambda context, _expr=expression: evaluate(_expr, context)

    def _partial_plan(self, query: ast.SelectQuery) -> _PartialPlan:
        plan = self._partial_plans.get(id(query))
        if plan is not None and plan.query is query:
            return plan
        if query.distinct or query.limit is not None or query.offset is not None:
            raise ExecutionError(
                "Partial aggregation does not support DISTINCT/LIMIT/OFFSET"
            )
        key_names: List[str] = []
        key_evals: List[Callable[[EvaluationContext], Any]] = []
        for expression in query.group_by:
            if not isinstance(expression, ast.Column):
                raise ExecutionError(
                    "Partial aggregation requires plain-column GROUP BY keys"
                )
            if expression.name.lower().startswith("__agg"):
                # Reserved for the state columns of the partial relation.
                raise ExecutionError(
                    f"Partial aggregation cannot group by reserved column "
                    f"{expression.name}"
                )
            key_names.append(expression.name)
            key_evals.append(self._expr_eval(expression))
        if len({name.lower() for name in key_names}) != len(key_names):
            raise ExecutionError("Partial aggregation requires distinct GROUP BY keys")
        specs: List[_PartialSpec] = []
        seen: set[str] = set()
        for call in self._collect_aggregate_calls(query):
            key = render_expression(call)
            if key in seen:
                continue
            seen.add(key)
            is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
            if not is_decomposable_aggregate(
                call.name,
                is_star=is_star,
                distinct=call.distinct,
                arg_count=len(call.arguments) or 1,
            ):
                raise ExecutionError(f"Aggregate {call.name} is not decomposable")
            arg_eval = (
                None
                if is_star or not call.arguments
                else self._expr_eval(call.arguments[0])
            )
            specs.append(_PartialSpec(key, call.name, is_star, call.distinct, arg_eval))
        state_names = [f"__agg{index}" for index in range(len(specs))]
        plan = _PartialPlan(query, key_names, state_names, specs, key_evals)
        self._store_plan(self._partial_plans, id(query), plan)
        return plan

    def execute_partial_aggregation(self, query: ast.SelectQuery) -> Relation:
        """Run ``query``'s FROM/WHERE, then group into mergeable state rows.

        Emits one row per group in first-occurrence order: the group-key
        columns under their original names plus one ``partial()`` state per
        distinct aggregate call.  HAVING, select items and ORDER BY are
        deferred to :meth:`finalize_partial_aggregation` — they must see
        fully merged groups.  A query without GROUP BY always emits exactly
        one (global) group row, even over an empty input, mirroring the
        one-row output the full execution produces.
        """
        if self._compiler is not None:
            self._compiler.new_execution()
        plan = self._partial_plan(query)
        _exec_counts[1] += 1
        if self._use_compiled and vectorized_enabled():
            vectorized = try_execute_partial(self, query)
            if vectorized is not None:
                return vectorized
        needs_qualified = not self._use_compiled or self._needs_qualified_scopes(query)
        scopes, _ = self._evaluate_from(query.from_clause, None, needs_qualified)
        if query.where is not None:
            if self._use_compiled:
                scopes = self._filter_where_compiled(query, scopes, None)
            else:
                scopes = [
                    scope
                    for scope in scopes
                    if evaluate_predicate(query.where, self._context(scope, None))
                ]
        context = self._fresh_context(None)
        groups: Dict[Tuple[Any, ...], List[Any]] = {}
        order: List[Tuple[Any, ...]] = []
        specs = plan.specs
        for scope in scopes:
            context.scope = scope
            key = tuple(_freeze(fn(context)) for fn in plan.key_evals)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [spec.make() for spec in specs]
                groups[key] = accumulators
                order.append(key)
            for spec, accumulator in zip(specs, accumulators):
                if spec.arg_eval is None:
                    accumulator.add(_STAR_ROW)
                else:
                    accumulator.add((spec.arg_eval(context),))
        if not query.group_by and not groups:
            groups[()] = [spec.make() for spec in specs]
            order.append(())
        return self._partial_state_relation(plan, groups, order)

    def _merge_partial_groups(
        self, plan: _PartialPlan, relation: Relation
    ) -> Tuple[Dict[Tuple[Any, ...], List[Any]], List[Tuple[Any, ...]]]:
        """Group state rows by key (first-occurrence order), merging states.

        Input rows are concatenated partials in partition order, and every
        chunk holds rows the original relation ordered before later chunks'
        rows, so first-occurrence order here equals the group order a
        single pass over the whole input would produce.
        """
        groups: Dict[Tuple[Any, ...], List[Any]] = {}
        order: List[Tuple[Any, ...]] = []
        specs = plan.specs
        for row in relation.rows:
            key = tuple(row[name] for name in plan.key_names)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [spec.make() for spec in specs]
                groups[key] = accumulators
                order.append(key)
            for spec, accumulator, state_name in zip(
                specs, accumulators, plan.state_names
            ):
                accumulator.merge(row[state_name])
        if not plan.query.group_by and not groups:
            groups[()] = [spec.make() for spec in specs]
            order.append(())
        return groups, order

    def _partial_state_relation(
        self,
        plan: _PartialPlan,
        groups: Dict[Tuple[Any, ...], List[Any]],
        order: List[Tuple[Any, ...]],
    ) -> Relation:
        rows: List[Dict[str, Any]] = []
        for key in order:
            row = dict(zip(plan.key_names, key))
            for state_name, accumulator in zip(plan.state_names, groups[key]):
                row[state_name] = accumulator.partial()
            rows.append(row)
        schema = _build_schema(plan.key_names + plan.state_names, rows)
        return Relation(schema=schema, rows=rows, name="")

    def combine_partial_aggregation(
        self, query: ast.SelectQuery, relation: Relation
    ) -> Relation:
        """Merge a relation of partial-state rows into one row per group."""
        plan = self._partial_plan(query)
        groups, order = self._merge_partial_groups(plan, relation)
        return self._partial_state_relation(plan, groups, order)

    def finalize_partial_aggregation(
        self, query: ast.SelectQuery, relation: Relation
    ) -> Relation:
        """Merge partial-state rows and produce ``query``'s actual output.

        Applies HAVING, the select items and ORDER BY over the finalized
        aggregate values — exactly the tail of the grouped execution path,
        so the result is identical to running ``query`` over the
        concatenated raw input.
        """
        if self._compiler is not None:
            self._compiler.new_execution()
        plan = self._partial_plan(query)
        groups, order = self._merge_partial_groups(plan, relation)
        specs = plan.specs
        lowered_keys = [name.lower() for name in plan.key_names]
        context = self._fresh_context(None)
        output_rows: List[Dict[str, Any]] = []
        if self._use_compiled:
            group_plan = self._group_plan(query)
            output_names = group_plan.output_names
            for key in order:
                context.scope = dict(zip(lowered_keys, key))
                context.aggregates = {
                    spec.key: accumulator.finalize()
                    for spec, accumulator in zip(specs, groups[key])
                }
                if group_plan.having_fn is not None and not group_plan.having_fn(context):
                    continue
                output_rows.append(
                    {
                        name: fn(context)
                        for name, fn in zip(output_names, group_plan.item_fns)
                    }
                )
        else:
            output_names = self._output_names(query.items)
            for key in order:
                scope = dict(zip(lowered_keys, key))
                aggregates = {
                    spec.key: accumulator.finalize()
                    for spec, accumulator in zip(specs, groups[key])
                }
                row_context = self._context(scope, None, aggregates)
                if query.having is not None and not evaluate_predicate(
                    query.having, row_context
                ):
                    continue
                output_rows.append(
                    {
                        name: evaluate(item.expression, row_context)
                        for item, name in zip(query.items, output_names)
                    }
                )
        if query.order_by:
            output_rows = self._apply_order_by(query, output_rows, [], None, True)
        schema = _build_schema(output_names, output_rows)
        return Relation(schema=schema, rows=output_rows, name="")

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _context(
        self,
        scope: Scope,
        parent: Optional[EvaluationContext],
        aggregates: Optional[Dict[str, Any]] = None,
    ) -> EvaluationContext:
        return EvaluationContext(
            scope=scope,
            aggregates=aggregates or {},
            subquery_executor=self._execute_subquery,
            parent=parent,
        )

    def _fresh_context(self, parent: Optional[EvaluationContext]) -> EvaluationContext:
        """A reusable context for the compiled path (``scope`` is swapped per row)."""
        return EvaluationContext(
            scope={},
            aggregates=_EMPTY_AGGREGATES,
            subquery_executor=self._execute_subquery,
            parent=parent,
        )

    def _execute_subquery(
        self, query: ast.SelectQuery, context: EvaluationContext
    ) -> Relation:
        return self._execute_query(query, parent=context)

    def _subquery_is_constant(self, query: ast.Query) -> bool:
        """True when ``query`` provably does not reference enclosing rows.

        Conservative, but not limited to single-table FROM clauses: the FROM
        tree may be a catalog table, a join tree of catalog tables, or a
        derived table ``(SELECT ...) alias`` that is itself provably
        constant.  Every column reference of the query (including join ON
        conditions) must resolve against the columns those sources expose,
        and qualified references must use a source's effective name.
        Anything else — including columns the catalog does not know — is
        treated as potentially correlated and evaluated per row.
        """
        if not isinstance(query, ast.SelectQuery):
            return False
        sources = self._constant_from_sources(query.from_clause)
        if sources is None:
            return False
        visible, qualifiers, join_conditions = sources
        stack: List[ast.Node] = [
            child for child in query.children() if child is not query.from_clause
        ]
        # Join conditions live inside the FROM subtree but reference columns
        # like any predicate, so they re-enter the reference walk here.
        stack.extend(join_conditions)
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if isinstance(node, ast.Query):
                return False
            if isinstance(node, ast.Column):
                if node.table is not None and node.table.lower() not in qualifiers:
                    return False
                if node.name.lower() not in visible:
                    return False
            stack.extend(child for child in node.children() if child is not None)
        return True

    def _constant_from_sources(
        self, from_clause: Optional[ast.Node]
    ) -> Optional[Tuple[set, set, List[ast.Expression]]]:
        """Resolve a FROM tree into provably constant sources.

        Returns ``(visible column names, valid qualifiers, join conditions)``
        in lower case, or ``None`` when any source cannot be proven
        row-independent (unknown table, set operation, derived table whose
        shape cannot be determined).
        """
        if from_clause is None:
            return set(), set(), []
        if isinstance(from_clause, ast.TableRef):
            relation = self._catalog.get(from_clause.name.lower())
            if relation is None:
                return None
            visible = {name.lower() for name in relation.schema.names}
            return visible, {from_clause.effective_name.lower()}, []
        if isinstance(from_clause, ast.Join):
            left = self._constant_from_sources(from_clause.left)
            right = self._constant_from_sources(from_clause.right)
            if left is None or right is None:
                return None
            conditions = left[2] + right[2]
            if from_clause.condition is not None:
                conditions = conditions + [from_clause.condition]
            return left[0] | right[0], left[1] | right[1], conditions
        if isinstance(from_clause, ast.SubqueryRef):
            if not self._subquery_is_constant(from_clause.query):
                return None
            columns = self._subquery_output_columns(from_clause.query)
            if columns is None:
                return None
            qualifiers = (
                {from_clause.alias.lower()} if from_clause.alias else set()
            )
            return {column.lower() for column in columns}, qualifiers, []
        return None

    def _subquery_output_columns(self, query: ast.Query) -> Optional[List[str]]:
        """Output column names of ``query`` when statically determinable."""
        if isinstance(query, ast.SetOperation):
            return self._subquery_output_columns(query.left)
        if not isinstance(query, ast.SelectQuery):
            return None
        columns: List[str] = []
        for item in query.items:
            if isinstance(item.expression, ast.Star):
                if not isinstance(query.from_clause, ast.TableRef):
                    return None
                relation = self._catalog.get(query.from_clause.name.lower())
                if relation is None:
                    return None
                columns.extend(relation.schema.names)
                continue
            name = item.output_name
            if name is None:
                # Unnamed computed items get renderer-derived names; stay
                # conservative rather than guessing them.
                return None
            columns.append(name)
        return columns

    def _select_has_aggregates(self, query: ast.SelectQuery) -> bool:
        sources: List[ast.Node] = [item.expression for item in query.items]
        if query.having is not None:
            sources.append(query.having)
        for source in sources:
            for call in _shallow_function_calls(source):
                if call.window is None and ast.is_aggregate_function(call.name):
                    return True
        return False

    def _expand_star_items(
        self, items: Sequence[ast.SelectItem], source_columns: List[str]
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                if item.expression.table:
                    qualifier = item.expression.table
                    expanded.extend(
                        ast.SelectItem(expression=ast.Column(name=name, table=qualifier))
                        for name in source_columns
                    )
                else:
                    expanded.extend(
                        ast.SelectItem(expression=ast.Column(name=name))
                        for name in source_columns
                    )
            else:
                expanded.append(item)
        return expanded

    def _output_names(self, items: Sequence[ast.SelectItem]) -> List[str]:
        names: List[str] = []
        used: set[str] = set()
        for index, item in enumerate(items):
            name = item.output_name or render_expression(item.expression)
            base = name
            suffix = 1
            while name.lower() in used:
                suffix += 1
                name = f"{base}_{suffix}"
            used.add(name.lower())
            names.append(name)
        return names

    def _apply_order_by(
        self,
        query: ast.SelectQuery,
        output_rows: List[Dict[str, Any]],
        scopes: List[Scope],
        parent: Optional[EvaluationContext],
        grouped: bool,
    ) -> List[Dict[str, Any]]:
        # After grouping the source scopes no longer align with the output
        # rows, so ORDER BY expressions are evaluated against the output row
        # only.  For flat queries the source scope is merged in as fallback.
        def row_scope(index: int, row: Dict[str, Any]) -> Scope:
            scope = {key.lower(): value for key, value in row.items()}
            if not grouped and index < len(scopes):
                merged = dict(scopes[index])
                merged.update(scope)
                return merged
            return scope

        if self._use_compiled:
            compiler = self._compiler
            assert compiler is not None
            order_fns = [compiler.compile(item.expression) for item in query.order_by]
            context = self._fresh_context(parent)

            def sort_key_compiled(pair: Tuple[int, Dict[str, Any]]) -> Tuple:
                index, row = pair
                context.scope = row_scope(index, row)
                keys = []
                for fn, item in zip(order_fns, query.order_by):
                    try:
                        value = fn(context)
                    except ExecutionError:
                        value = None
                    keys.append(_OrderKey(value, item.ascending))
                return tuple(keys)

            ordered = sorted(enumerate(output_rows), key=sort_key_compiled)
            return [row for _, row in ordered]

        def sort_key(pair: Tuple[int, Dict[str, Any]]) -> Tuple:
            index, row = pair
            context = self._context(row_scope(index, row), parent)
            keys = []
            for item in query.order_by:
                try:
                    value = evaluate(item.expression, context)
                except ExecutionError:
                    value = None
                keys.append(_OrderKey(value, item.ascending))
            return tuple(keys)

        ordered = sorted(enumerate(output_rows), key=sort_key)
        return [row for _, row in ordered]


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------


# _OrderKey lives in repro.engine.vectorized (imported above) so the
# columnar ORDER BY fast path and the row-at-a-time sort share one
# comparator and can never drift apart.


def _relation_scopes(relation: Relation, qualifier: str, allow_reuse: bool) -> List[Scope]:
    """Per-row scope dicts built straight from a relation's column arrays.

    Keys are lowered once per relation, and rows materialize via C-level
    ``zip`` over the columns.  With ``allow_reuse`` (compiled path) the
    unqualified scopes come from :meth:`Relation.scope_rows`, which caches
    them on the relation until it mutates — scopes are read-only throughout
    the executor, so repeated executions over the same table pay zero scope
    construction.  The interpreted oracle always builds fresh dicts.
    """
    names = relation.schema.names
    if not names:
        return [{} for _ in range(len(relation))]
    lowered = [name.lower() for name in names]
    if qualifier:
        prefix = qualifier.lower()
        keys = lowered + [f"{prefix}.{low}" for low in lowered]
        return [dict(zip(keys, values + values)) for values in zip(*relation.columns())]
    if allow_reuse:
        return relation.scope_rows()
    return [dict(zip(lowered, values)) for values in zip(*relation.columns())]


def _null_scope(columns: Sequence[str], scopes: List[Scope]) -> Scope:
    template = scopes[0] if scopes else {name.lower(): None for name in columns}
    return {key: None for key in template}


def _freeze_tuple(row: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return tuple(_freeze(value) for value in row)


def _unique(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    seen: set = set()
    result = []
    for row in rows:
        key = _freeze_tuple(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


# _build_schema / _distinct_rows / _freeze live in repro.engine.vectorized
# (imported above) so the columnar fast paths and the row-at-a-time tail
# share one implementation and can never drift apart.
