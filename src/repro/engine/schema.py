"""Relation schemas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.engine.errors import SchemaError
from repro.engine.types import DataType, infer_type


@dataclass(frozen=True)
class ColumnDef:
    """A single column of a relation schema."""

    name: str
    data_type: DataType = DataType.FLOAT
    nullable: bool = True
    description: str = ""
    #: Marks columns that identify a person directly (name, tag id, ...).
    identifying: bool = False
    #: Marks columns that are quasi-identifiers in the anonymization sense.
    quasi_identifier: bool = False
    #: Marks sensitive columns whose values need protection (health, position).
    sensitive: bool = False


@dataclass
class Schema:
    """An ordered collection of :class:`ColumnDef`.

    Column lookup is case-insensitive; the original spelling is preserved for
    output.
    """

    columns: List[ColumnDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(f"Duplicate column name: {column.name}")
            seen.add(lowered)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_names(cls, names: Sequence[str], data_type: DataType = DataType.FLOAT) -> "Schema":
        """Build a schema where every column has the same type."""
        return cls([ColumnDef(name=name, data_type=data_type) for name in names])

    @classmethod
    def infer(cls, rows: Iterable[Mapping[str, Any]], names: Optional[Sequence[str]] = None) -> "Schema":
        """Infer a schema from sample rows.

        The first non-null value of each column decides its type; columns with
        only nulls default to FLOAT.
        """
        rows = list(rows)
        if names is None:
            names = []
            for row in rows:
                for key in row:
                    if key not in names:
                        names.append(key)
        columns = []
        for name in names:
            data_type = DataType.FLOAT
            for row in rows:
                value = row.get(name)
                if value is not None:
                    data_type = infer_type(value)
                    break
            columns.append(ColumnDef(name=name, data_type=data_type))
        return cls(columns)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return any(column.name.lower() == name.lower() for column in self.columns)

    def column(self, name: str) -> ColumnDef:
        """Return the column definition with the given name (case-insensitive)."""
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise SchemaError(f"Unknown column: {name}")

    def index_of(self, name: str) -> int:
        """Return the position of the column with the given name."""
        for index, column in enumerate(self.columns):
            if column.name.lower() == name.lower():
                return index
        raise SchemaError(f"Unknown column: {name}")

    # ------------------------------------------------------------------
    # derived schemas
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``names`` (keeping their order)."""
        return Schema([self.column(name) for name in names])

    def without(self, names: Sequence[str]) -> "Schema":
        """Return a schema excluding ``names``."""
        excluded = {name.lower() for name in names}
        return Schema([column for column in self.columns if column.name.lower() not in excluded])

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a schema with columns renamed according to ``mapping``."""
        lowered = {key.lower(): value for key, value in mapping.items()}
        columns = []
        for column in self.columns:
            new_name = lowered.get(column.name.lower(), column.name)
            columns.append(
                ColumnDef(
                    name=new_name,
                    data_type=column.data_type,
                    nullable=column.nullable,
                    description=column.description,
                    identifying=column.identifying,
                    quasi_identifier=column.quasi_identifier,
                    sensitive=column.sensitive,
                )
            )
        return Schema(columns)

    def merge(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used for joins); duplicate names collide."""
        return Schema(list(self.columns) + list(other.columns))

    def classification(self) -> Dict[str, List[str]]:
        """Group column names by privacy classification (used by anonymizers)."""
        return {
            "identifying": [c.name for c in self.columns if c.identifying],
            "quasi_identifiers": [c.name for c in self.columns if c.quasi_identifier],
            "sensitive": [c.name for c in self.columns if c.sensitive],
            "other": [
                c.name
                for c in self.columns
                if not (c.identifying or c.quasi_identifier or c.sensitive)
            ],
        }
