"""Vectorized scan/aggregate fast paths over columnar relations.

The compiled executor's default path still walks one row scope at a time:
every scanned row costs a scope dict, a closure call per expression and a
tuple per aggregate feed.  For the most common fragment shapes — a plain
projection, a conjunction of simple comparisons, a GROUP BY over plain
columns — none of that is necessary once relations are columnar
(:mod:`repro.engine.table`): the answer is a column slice away.

This module plans and executes those shapes directly over the column
arrays:

* **Flat projection** (``SELECT a, b FROM t [WHERE ...] [LIMIT/OFFSET]``
  with plain-column items): output columns are sliced/gathered straight
  from the input arrays into :meth:`Relation.from_columns` — no row scope,
  no output dict, no per-row anything.
* **Simple predicates** (``col <op> literal``, ``col <op> col``,
  ``col IS [NOT] NULL``, ``col [NOT] BETWEEN lit AND lit``,
  ``col [NOT] LIKE 'pat'``, ``col [NOT] IN (literals)`` joined by ``AND``)
  filter an index selection per conjunct with exact three-valued NULL
  semantics and the same error behaviour as the compiled closures.
* **Aggregate scans** (GROUP BY over plain columns, aggregate arguments
  that are plain columns or ``*``): rows are partitioned into per-group
  index lists in one pass, then every accumulator consumes its argument
  column slice in bulk (:meth:`add_many`).  HAVING, select items and
  ORDER BY reuse the executor's compiled group plan, so results are
  byte-identical to the row-at-a-time path.
* **Partial aggregation scans** — the distributed GROUP BY leaf phase —
  use the same machinery and emit mergeable state relations.

Anything outside these shapes (joins, subqueries, window functions,
qualified references, expression keys...) bails to the executor's
row-at-a-time path by returning ``None`` from the planner; the interpreted
oracle never takes these paths at all, which is what the differential
suite leans on.

**Error identity.**  The vectorized scan evaluates conjunct-major and
group-major, so when row-level evaluation fails (incomparable types in a
predicate, a NaN/Inf reaching an exact accumulator) the *first* failure it
hits may differ from the row-major order of the compiled closures.  Both
scans evaluate exactly the same (row, expression) pairs, so an error on
one path implies an error on the other — the fast path therefore abandons
the scan on any such error and lets the row path re-raise its own
row-major error, keeping error identity byte-for-byte.
"""

from __future__ import annotations

import operator
import threading
from contextlib import contextmanager
from enum import Enum
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.engine.columns import INT64, TypedColumn, take_column
from repro.engine.errors import ExecutionError
from repro.engine.evaluator import _like_to_regex
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import DataType, infer_type
from repro.sql import ast
from repro.sql.render import render_expression

# ---------------------------------------------------------------------------
# toggle (mirrors executor.execution_mode): process default + thread override
# ---------------------------------------------------------------------------

_default_enabled = True
_thread_state = threading.local()


def set_default_vectorized(enabled: bool) -> None:
    """Set the process-wide default for the vectorized fast paths."""
    global _default_enabled
    _default_enabled = bool(enabled)


def vectorized_enabled() -> bool:
    """The calling thread's setting (override, else process default)."""
    override = getattr(_thread_state, "enabled", None)
    return _default_enabled if override is None else override


@contextmanager
def vectorized_scans(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable the vectorized paths on this thread.

    The columnar benchmark flips this off to time the row-at-a-time
    compiled path as the pre-columnar baseline.
    """
    previous = getattr(_thread_state, "enabled", None)
    _thread_state.enabled = bool(enabled)
    try:
        yield
    finally:
        _thread_state.enabled = previous


class BailReason(str, Enum):
    """Why a query fell back to the row-at-a-time path.

    Plan-time reasons are recorded on *every* bailing call (cache hits
    included), so the counters measure fallback executions, not distinct
    queries; runtime reasons (``COLUMN_DRIFT``, ``SCAN_ABANDONED``) fire
    when an eligible plan could not finish over the column arrays.
    """

    NOT_SELECT = "not_select"
    COMPOUND_SOURCE = "compound_source"  # join / subquery / derived table
    QUALIFIED_SCOPES = "qualified_scopes"
    UNKNOWN_TABLE = "unknown_table"
    COMPLEX_PREDICATE = "complex_predicate"
    STAR_IN_GROUP_BY = "star_in_group_by"
    EXPRESSION_GROUP_KEY = "expression_group_key"
    AGGREGATE_ARGS = "aggregate_args"
    DISTINCT_OR_ORDER_BY = "distinct_or_order_by"
    EXPRESSION_ITEM = "expression_item"
    COLUMN_DRIFT = "column_drift"
    SCAN_ABANDONED = "scan_abandoned"
    #: A consumed column is declared int/float but its backing degraded to
    #: a generic Python list, forcing the boxed per-cell path through an
    #: otherwise vectorized scan.  Unlike the other reasons this does not
    #: mean the scan fell back to the row path — it measures lost typed
    #: throughput (surfaced in the profile report's scan-path section).
    UNTYPED_BACKING = "untyped_backing"


class ScanStats:
    """Counters of fast-path hits and bail reasons (advisory; plain-int
    increments so the per-query hot path stays lock-free)."""

    __slots__ = ("flat", "grouped", "partial", "typed", "bails")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.flat = 0
        self.grouped = 0
        self.partial = 0
        #: Completed scans that consumed at least one typed-backed column.
        self.typed = 0
        self.bails: Dict[str, int] = {}

    def bail(self, reason: "BailReason") -> None:
        key = reason.value
        self.bails[key] = self.bails.get(key, 0) + 1

    @property
    def total(self) -> int:
        return self.flat + self.grouped + self.partial

    @property
    def fallbacks(self) -> int:
        return sum(self.bails.values())


stats = ScanStats()


# ---------------------------------------------------------------------------
# shared helpers (the executor imports these — keep them executor-free)
# ---------------------------------------------------------------------------


def freeze_value(value: Any) -> Any:
    """Hashable stand-in for group/distinct keys (identity on scalars)."""
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def distinct_rows(rows: List[Dict[str, Any]], names: List[str]) -> List[Dict[str, Any]]:
    """Order-preserving duplicate removal over output dict rows."""
    seen: set = set()
    result = []
    for row in rows:
        key = tuple(freeze_value(row.get(name)) for name in names)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _first_non_null_type(values) -> Any:
    """The shared inference rule: first non-null value decides, else FLOAT."""
    if isinstance(values, TypedColumn):
        # The backing decides in O(1): typed columns hold exactly ints or
        # floats (never bools), matching what per-value inference returns.
        if values.null_count == len(values):
            return infer_type(0.0)
        return DataType.INTEGER if values.typecode == INT64 else DataType.FLOAT
    for value in values:
        if value is not None:
            return infer_type(value)
    return infer_type(0.0)


def build_schema(names: List[str], rows: List[Dict[str, Any]]) -> Schema:
    """Schema inferred from output rows: first non-null value per column."""
    return Schema(
        [
            ColumnDef(
                name=name,
                data_type=_first_non_null_type(row.get(name) for row in rows),
            )
            for name in names
        ]
    )


def build_schema_from_columns(names: List[str], columns: Sequence[List[Any]]) -> Schema:
    """Columnar twin of :func:`build_schema` (same inference core)."""
    return Schema(
        [
            ColumnDef(name=name, data_type=_first_non_null_type(column))
            for name, column in zip(names, columns)
        ]
    )


# ---------------------------------------------------------------------------
# simple predicates
# ---------------------------------------------------------------------------

_EQ_OPS = {"=": False, "<>": True, "!=": True}
_ORDER_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Selection state threaded through the conjunct filters: the surviving
#: indices (not yet definitely false) and the subset that saw a NULL
#: conjunct.  NULL rows keep evaluating later conjuncts — exactly like the
#: compiled AND closure, which only short-circuits on a definite false —
#: but are excluded from the final selection.
Selection = Tuple[List[int], Set[int]]


class _AlwaysNullPred:
    """A conjunct that is NULL for every row (e.g. ``x < NULL``)."""

    __slots__ = ()
    columns: Tuple[str, ...] = ()

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        nulls.update(sel)
        return sel


class _IsNullPred:
    __slots__ = ("column", "negated")

    def __init__(self, column: str, negated: bool) -> None:
        self.column = column
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        if isinstance(array, TypedColumn):
            isnull = array.null_map()
            if self.negated:
                return [i for i in sel if not isnull[i]]
            return [i for i in sel if isnull[i]]
        if self.negated:
            return [i for i in sel if array[i] is not None]
        return [i for i in sel if array[i] is None]


class _ComparePred:
    """``col <op> literal`` (or ``literal <op> col`` when ``swapped``)."""

    __slots__ = ("column", "op", "value", "invert", "order_op", "swapped")

    def __init__(self, column: str, op: str, value: Any, swapped: bool) -> None:
        self.column = column
        self.op = op
        self.value = value
        self.invert = _EQ_OPS.get(op)
        self.order_op = _ORDER_OPS.get(op)
        self.swapped = swapped

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        const = self.value
        out: List[int] = []
        add_null = nulls.add
        if isinstance(array, TypedColumn):
            # Typed backing: read the unboxed buffer directly and test NULL
            # through the byte map — no per-cell boxing or None sentinel.
            isnull = array.null_map()
            data = array.data_array()
            if self.invert is not None:
                wanted = not self.invert
                for i in sel:
                    if isnull[i]:
                        out.append(i)
                        add_null(i)
                    elif (data[i] == const) is wanted:
                        out.append(i)
                return out
            op = self.order_op
            if self.swapped:
                for i in sel:
                    if isnull[i]:
                        out.append(i)
                        add_null(i)
                    elif op(const, data[i]):
                        out.append(i)
            else:
                for i in sel:
                    if isnull[i]:
                        out.append(i)
                        add_null(i)
                    elif op(data[i], const):
                        out.append(i)
            return out
        if self.invert is not None:  # = / <> / != : never raises
            wanted = not self.invert
            for i in sel:
                value = array[i]
                if value is None:
                    out.append(i)
                    add_null(i)
                elif (value == const) is wanted:
                    out.append(i)
            return out
        # Ordering comparisons may raise TypeError on incomparable values;
        # the caller abandons the scan then (see "Error identity" above).
        op = self.order_op
        if self.swapped:
            for i in sel:
                value = array[i]
                if value is None:
                    out.append(i)
                    add_null(i)
                elif op(const, value):
                    out.append(i)
        else:
            for i in sel:
                value = array[i]
                if value is None:
                    out.append(i)
                    add_null(i)
                elif op(value, const):
                    out.append(i)
        return out


class _ColumnComparePred:
    """``col <op> col`` between two columns of the scanned relation."""

    __slots__ = ("left", "right", "op", "invert", "order_op")

    def __init__(self, left: str, right: str, op: str) -> None:
        self.left = left
        self.right = right
        self.op = op
        self.invert = _EQ_OPS.get(op)
        self.order_op = _ORDER_OPS.get(op)

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.left, self.right)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        left = relation.column_array(self.left)
        right = relation.column_array(self.right)
        out: List[int] = []
        add_null = nulls.add
        if self.invert is not None:
            wanted = not self.invert
            for i in sel:
                lhs, rhs = left[i], right[i]
                if lhs is None or rhs is None:
                    out.append(i)
                    add_null(i)
                elif (lhs == rhs) is wanted:
                    out.append(i)
            return out
        op = self.order_op
        for i in sel:
            lhs, rhs = left[i], right[i]
            if lhs is None or rhs is None:
                out.append(i)
                add_null(i)
            elif op(lhs, rhs):
                out.append(i)
        return out


class _BetweenPred:
    """``col [NOT] BETWEEN literal AND literal``.

    Type errors from the chained comparison propagate to the caller, which
    abandons the scan so the row path re-raises in its own order.
    """

    __slots__ = ("column", "low", "high", "negated")

    def __init__(self, column: str, low: Any, high: Any, negated: bool) -> None:
        self.column = column
        self.low = low
        self.high = high
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        low, high = self.low, self.high
        negated = self.negated
        out: List[int] = []
        add_null = nulls.add
        for i in sel:
            value = array[i]
            if value is None:
                out.append(i)
                add_null(i)
                continue
            result = low <= value <= high
            if (not result) if negated else result:
                out.append(i)
        return out


class _LikePred:
    """``col [NOT] LIKE 'pattern'`` with a literal pattern."""

    __slots__ = ("column", "regex", "negated")

    def __init__(self, column: str, pattern: str, negated: bool) -> None:
        self.column = column
        self.regex = _like_to_regex(pattern)
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        match = self.regex.match
        negated = self.negated
        out: List[int] = []
        add_null = nulls.add
        for i in sel:
            value = array[i]
            if value is None:
                out.append(i)
                add_null(i)
                continue
            result = bool(match(str(value)))
            if (not result) if negated else result:
                out.append(i)
        return out


class _InListPred:
    """``col [NOT] IN (literal, ...)`` — NULL members are dropped up front."""

    __slots__ = ("column", "constants", "negated")

    def __init__(self, column: str, constants: List[Any], negated: bool) -> None:
        self.column = column
        self.constants = constants
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        constants = self.constants
        negated = self.negated
        out: List[int] = []
        add_null = nulls.add
        for i in sel:
            value = array[i]
            if value is None:
                out.append(i)
                add_null(i)
            elif (value not in constants) if negated else (value in constants):
                out.append(i)
        return out


def _plain_column(node: ast.Node) -> Optional[str]:
    """The lower-cased name of an unqualified plain column reference."""
    if isinstance(node, ast.Column) and not node.table:
        return node.name.lower()
    return None


def _simple_predicate(term: ast.Expression):
    """Compile one WHERE conjunct to a filter, or None when not simple."""
    if isinstance(term, ast.BinaryOp):
        op = term.operator.upper()
        if op not in _EQ_OPS and op not in _ORDER_OPS:
            return None
        left_col = _plain_column(term.left)
        right_col = _plain_column(term.right)
        if left_col is not None and right_col is not None:
            return _ColumnComparePred(left_col, right_col, op)
        if left_col is not None and isinstance(term.right, ast.Literal):
            if term.right.value is None:
                return _AlwaysNullPred()
            return _ComparePred(left_col, op, term.right.value, swapped=False)
        if right_col is not None and isinstance(term.left, ast.Literal):
            if term.left.value is None:
                return _AlwaysNullPred()
            return _ComparePred(right_col, op, term.left.value, swapped=True)
        return None
    if isinstance(term, ast.IsNull):
        column = _plain_column(term.expression)
        if column is None:
            return None
        return _IsNullPred(column, term.negated)
    if isinstance(term, ast.Between):
        column = _plain_column(term.expression)
        if column is None:
            return None
        if not isinstance(term.low, ast.Literal) or not isinstance(term.high, ast.Literal):
            return None
        if term.low.value is None or term.high.value is None:
            return _AlwaysNullPred()
        return _BetweenPred(column, term.low.value, term.high.value, term.negated)
    if isinstance(term, ast.Like):
        column = _plain_column(term.expression)
        if column is None or not isinstance(term.pattern, ast.Literal):
            return None
        if term.pattern.value is None:
            return _AlwaysNullPred()
        return _LikePred(column, str(term.pattern.value), term.negated)
    if isinstance(term, ast.InList):
        column = _plain_column(term.expression)
        if column is None:
            return None
        if not all(isinstance(value, ast.Literal) for value in term.values):
            return None
        constants = [value.value for value in term.values if value.value is not None]
        return _InListPred(column, constants, term.negated)
    return None


def _apply_predicates(
    predicates: Sequence[Any], relation: Relation
) -> Optional[List[int]]:
    """Filter row indices through the conjuncts; None means "all rows"."""
    if not predicates:
        return None
    sel = list(range(len(relation)))
    nulls: Set[int] = set()
    for predicate in predicates:
        sel = predicate.apply(relation, sel, nulls)
        if not sel:
            return []
    if nulls:
        return [i for i in sel if i not in nulls]
    return sel


# ---------------------------------------------------------------------------
# scan plans
# ---------------------------------------------------------------------------


class _VectorAggSpec:
    """One distinct aggregate call, with column-resolved arguments."""

    __slots__ = ("key", "make", "arg_columns")

    def __init__(self, key: str, make: Callable[[], Any], arg_columns: Optional[List[str]]) -> None:
        self.key = key
        #: Accumulator factory (shared with the executor's group plan).
        self.make = make
        #: Lower-cased argument column names; None feeds the star row.
        self.arg_columns = arg_columns


class FlatScanPlan:
    """``SELECT <plain columns> FROM <table> [WHERE simple] [LIMIT/OFFSET]``."""

    __slots__ = ("query", "table_name", "predicates", "out_names", "out_columns", "required")

    def __init__(self, query, table_name, predicates, out_names, out_columns) -> None:
        self.query = query
        self.table_name = table_name
        self.predicates = predicates
        self.out_names = out_names
        self.out_columns = out_columns
        self.required = set(out_columns)
        for predicate in predicates:
            self.required.update(predicate.columns)


class GroupedScanPlan:
    """A GROUP BY / aggregate scan over plain key and argument columns."""

    __slots__ = ("query", "table_name", "predicates", "key_columns", "specs", "required")

    def __init__(self, query, table_name, predicates, key_columns, specs) -> None:
        self.query = query
        self.table_name = table_name
        self.predicates = predicates
        self.key_columns = key_columns
        self.specs = specs
        self.required = set(key_columns)
        for predicate in predicates:
            self.required.update(predicate.columns)
        for spec in specs:
            if spec.arg_columns:
                self.required.update(spec.arg_columns)


def _resolve_vector_specs(
    calls: Sequence[ast.FunctionCall],
    source_specs: Sequence[Any],
    table_columns: Set[str],
    allow_multi_arg: bool,
) -> Optional[List[_VectorAggSpec]]:
    """Pair the executor plan's aggregate specs with argument columns.

    ``calls`` dedup in first-occurrence render order — the same order the
    executor's own plans use, so the pairing is positional in spirit but
    matched by rendered key for safety.  Returns None when any argument is
    not a plain column of the scanned table (the row path owns those).
    """
    specs: List[_VectorAggSpec] = []
    seen: Set[str] = set()
    for call in calls:
        key = render_expression(call)
        if key in seen:
            continue
        seen.add(key)
        is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
        if is_star or not call.arguments:
            arg_columns: Optional[List[str]] = None
        else:
            if len(call.arguments) != 1 and not allow_multi_arg:
                return None
            arg_columns = []
            for argument in call.arguments:
                column = _plain_column(argument)
                if column is None or column not in table_columns:
                    return None
                arg_columns.append(column)
        spec = next((s for s in source_specs if s.key == key), None)
        if spec is None:  # pragma: no cover - same dedup, same order
            return None
        specs.append(_VectorAggSpec(key, spec.make, arg_columns))
    if len(specs) != len(source_specs):
        return None  # pragma: no cover - defensive
    return specs


def _plan_predicates(query: ast.SelectQuery) -> Optional[List[Any]]:
    predicates: List[Any] = []
    if query.where is not None:
        for term in ast.conjunction_terms(query.where):
            predicate = _simple_predicate(term)
            if predicate is None:
                return None
            predicates.append(predicate)
    return predicates


def plan_select(executor, query: ast.Query):
    """Build (and cache) a scan plan for ``query``, or None when ineligible.

    Bail reasons are recorded on every bailing call — cached verdicts
    included — so :data:`stats` counts fallback executions.
    """
    memo = executor._vector_plans
    cached = memo.get(id(query))
    if cached is not None and cached[0] is query:
        plan, reason = cached[1], cached[2]
    else:
        plan, reason = _plan_select_uncached(executor, query)
        executor._store_plan(memo, id(query), (query, plan, reason))
    if plan is None:
        stats.bail(reason)
    return plan


def _plan_select_uncached(executor, query: ast.Query):
    if not isinstance(query, ast.SelectQuery):
        return None, BailReason.NOT_SELECT
    if not isinstance(query.from_clause, ast.TableRef):
        return None, BailReason.COMPOUND_SOURCE
    if executor._needs_qualified_scopes(query):
        return None, BailReason.QUALIFIED_SCOPES
    try:
        table = executor.lookup_table(query.from_clause.name)
    except ExecutionError:
        # The row path raises the same "Unknown table".
        return None, BailReason.UNKNOWN_TABLE
    table_columns = {name.lower() for name in table.schema.names}
    predicates = _plan_predicates(query)
    if predicates is None:
        return None, BailReason.COMPLEX_PREDICATE
    table_name = query.from_clause.name

    if query.group_by or executor._select_has_aggregates(query):
        if any(isinstance(item.expression, ast.Star) for item in query.items):
            # The row path raises the star/GROUP BY error.
            return None, BailReason.STAR_IN_GROUP_BY
        key_columns: List[str] = []
        for expression in query.group_by:
            column = _plain_column(expression)
            if column is None or column not in table_columns:
                return None, BailReason.EXPRESSION_GROUP_KEY
            key_columns.append(column)
        group_plan = executor._group_plan(query)
        specs = _resolve_vector_specs(
            executor._collect_aggregate_calls(query),
            group_plan.specs,
            table_columns,
            allow_multi_arg=True,
        )
        if specs is None:
            return None, BailReason.AGGREGATE_ARGS
        return GroupedScanPlan(query, table_name, predicates, key_columns, specs), None

    # Flat projection: plain columns only, no DISTINCT/ORDER BY (the row
    # path owns reordering and dedup of full-width outputs).
    if query.distinct or query.order_by:
        return None, BailReason.DISTINCT_OR_ORDER_BY
    items = executor._expand_star_items(query.items, list(table.schema.names))
    out_columns: List[str] = []
    for item in items:
        column = _plain_column(item.expression)
        if column is None or column not in table_columns:
            return None, BailReason.EXPRESSION_ITEM
        out_columns.append(column)
    out_names = executor._output_names(items)
    plan = FlatScanPlan(query, query.from_clause.name, predicates, out_names, out_columns)
    return plan, None


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


#: Row-level evaluation errors that abandon the vectorized scan so the row
#: path can re-raise its own row-major error (see "Error identity" above).
_SCAN_ABANDON_ERRORS = (TypeError, ValueError, OverflowError)

#: Schema types whose columns are expected to carry a typed backing.
_TYPEABLE = (DataType.INTEGER, DataType.FLOAT)


def _note_backing(relation: Relation, names) -> None:
    """Account a completed scan's column backings.

    Bumps ``stats.typed`` when the scan consumed a typed-backed column and
    records :attr:`BailReason.UNTYPED_BACKING` when a consumed column is
    declared int/float but its backing degraded to a generic list.
    """
    if not names or not len(relation):
        return
    touched_typed = False
    degraded = False
    lowered = {name.lower() for name in names}
    for column_def, column in zip(relation.schema.columns, relation.columns()):
        if column_def.name.lower() not in lowered:
            continue
        if isinstance(column, TypedColumn):
            touched_typed = True
        elif column_def.data_type in _TYPEABLE:
            degraded = True
    if touched_typed:
        stats.typed += 1
    if degraded:
        stats.bail(BailReason.UNTYPED_BACKING)


def try_execute_select(executor, query: ast.Query, parent) -> Optional[Relation]:
    """Execute ``query`` over column arrays, or None to use the row path."""
    plan = plan_select(executor, query)
    if plan is None:
        return None
    relation = executor.lookup_table(plan.table_name)
    if any(relation.column_array(name) is None for name in plan.required):
        stats.bail(BailReason.COLUMN_DRIFT)
        return None  # catalog shape drifted from the planned columns
    try:
        sel = _apply_predicates(plan.predicates, relation)
    except _SCAN_ABANDON_ERRORS:
        stats.bail(BailReason.SCAN_ABANDONED)
        return None
    if isinstance(plan, FlatScanPlan):
        result = _execute_flat(plan, relation, sel)
    else:
        result = _execute_grouped(executor, plan, relation, parent, sel)
        if result is None:
            stats.bail(BailReason.SCAN_ABANDONED)
    if result is not None:
        _note_backing(relation, plan.required)
    return result


def _execute_flat(
    plan: FlatScanPlan, relation: Relation, sel: Optional[List[int]]
) -> Relation:
    query = plan.query
    offset = query.offset
    limit = query.limit

    columns: List[List[Any]] = []
    if sel is None:
        start = offset or 0
        stop = None if limit is None else start + limit
        for name in plan.out_columns:
            columns.append(relation.column_array(name)[start:stop])
    else:
        if offset is not None:
            sel = sel[offset:]
        if limit is not None:
            sel = sel[:limit]
        for name in plan.out_columns:
            # Typed backings gather into typed columns (and slices above
            # stay typed), so projections preserve unboxed storage.
            columns.append(take_column(relation.column_array(name), sel))

    stats.flat += 1
    schema = build_schema_from_columns(plan.out_names, columns)
    return Relation.from_columns(schema, columns, name="")


def _group_indices(
    relation: Relation,
    key_columns: Sequence[str],
    sel: Optional[List[int]],
) -> Tuple[Dict[Tuple[Any, ...], List[int]], List[Tuple[Any, ...]], Dict[Tuple[Any, ...], int]]:
    """Partition row indices by group key, in first-occurrence order.

    Raw key values are used while hashable, falling back to the frozen form
    on a TypeError — exactly the compiled fast-key behaviour, so group
    identity and order match the row path bit for bit.
    """
    groups: Dict[Tuple[Any, ...], List[int]] = {}
    order: List[Tuple[Any, ...]] = []
    first_index: Dict[Tuple[Any, ...], int] = {}
    arrays = [relation.column_array(name) for name in key_columns]
    indices = range(len(relation)) if sel is None else sel
    if len(arrays) == 1:
        array = arrays[0]
        for i in indices:
            key = (array[i],)
            try:
                bucket = groups.get(key)
            except TypeError:
                key = (freeze_value(key[0]),)
                bucket = groups.get(key)
            if bucket is None:
                groups[key] = [i]
                order.append(key)
                first_index[key] = i
            else:
                bucket.append(i)
    else:
        for i in indices:
            key = tuple(array[i] for array in arrays)
            try:
                bucket = groups.get(key)
            except TypeError:
                key = tuple(freeze_value(value) for value in key)
                bucket = groups.get(key)
            if bucket is None:
                groups[key] = [i]
                order.append(key)
                first_index[key] = i
            else:
                bucket.append(i)
    return groups, order, first_index


def _feed_accumulators(
    relation: Relation,
    specs: Sequence[_VectorAggSpec],
    indices: List[int],
    whole_relation: bool,
) -> List[Any]:
    """Instantiate and bulk-feed one accumulator per spec from column slices."""
    accumulators = []
    for spec in specs:
        accumulator = spec.make()
        arg_columns = spec.arg_columns
        if arg_columns is None:
            # Star and zero-argument calls: the row path feeds ``(1,)`` per
            # row.  ``add_many_star`` is the bulk shortcut where it exists
            # (COUNT(*), buffered aggregates); zero-arg calls of the other
            # aggregates (``COUNT()``, ``SUM()``... — the parser accepts
            # them) resolve to incremental accumulators without it, which
            # consume the equivalent ones column.
            add_star = getattr(accumulator, "add_many_star", None)
            if add_star is not None:
                add_star(len(indices))
            else:
                accumulator.add_many([1] * len(indices))
        elif len(arg_columns) == 1:
            array = relation.column_array(arg_columns[0])
            if whole_relation:
                accumulator.add_many(array)
            else:
                # Typed backings gather through the unboxed buffer so
                # add_many sees a typed column (see aggregates.add_many).
                accumulator.add_many(take_column(array, indices))
        else:
            arrays = [relation.column_array(name) for name in arg_columns]
            for i in indices:
                accumulator.add(tuple(array[i] for array in arrays))
        accumulators.append(accumulator)
    return accumulators


def _execute_grouped(
    executor, plan: GroupedScanPlan, relation: Relation, parent, sel: Optional[List[int]]
) -> Optional[Relation]:
    query = plan.query
    group_plan = executor._group_plan(query)
    specs = plan.specs

    lowered_names = [name.lower() for name in relation.schema.names]
    arrays = relation.columns()

    if plan.key_columns:
        groups, order, first_index = _group_indices(relation, plan.key_columns, sel)
    else:
        indices = list(range(len(relation))) if sel is None else sel
        if indices:
            groups = {(): indices}
            order = [()]
            first_index = {(): indices[0]}
        else:
            groups, order, first_index = {}, [], {}

    if not query.group_by and not groups:
        groups[()] = []
        order.append(())

    # Feed every group before emitting anything — the row path's scan phase
    # completes before its emit phase, and keeping the phases separate here
    # means an accumulator conversion error (exact SUM/STDDEV meeting a
    # non-numeric or non-finite value) abandons the scan before any item
    # evaluation, so the row path re-raises its own row-major error.
    whole = sel is None and len(order) == 1 and plan.key_columns == []
    accumulators_by_key: Dict[Tuple[Any, ...], List[Any]] = {}
    try:
        for key in order:
            accumulators_by_key[key] = _feed_accumulators(
                relation, specs, groups[key], whole
            )
    except _SCAN_ABANDON_ERRORS:
        return None

    context = executor._fresh_context(parent)
    output_names = group_plan.output_names
    item_fns = group_plan.item_fns
    having_fn = group_plan.having_fn
    output_rows: List[Dict[str, Any]] = []
    for key in order:
        indices = groups[key]
        accumulators = accumulators_by_key[key]
        if indices:
            first = first_index.get(key, indices[0])
            representative = {
                name: array[first] for name, array in zip(lowered_names, arrays)
            }
        else:
            representative = {}
        context.scope = representative
        context.aggregates = {
            spec.key: accumulator.result()
            for spec, accumulator in zip(specs, accumulators)
        }
        if having_fn is not None and not having_fn(context):
            continue
        output_rows.append({name: fn(context) for name, fn in zip(output_names, item_fns)})

    stats.grouped += 1

    # The standard SELECT tail, identical to the row path.
    if query.distinct:
        output_rows = distinct_rows(output_rows, output_names)
    if query.order_by:
        output_rows = executor._apply_order_by(query, output_rows, [], parent, True)
    if query.offset is not None:
        output_rows = output_rows[query.offset :]
    if query.limit is not None:
        output_rows = output_rows[: query.limit]
    schema = build_schema(output_names, output_rows)
    return Relation(schema=schema, rows=output_rows, name="")


# ---------------------------------------------------------------------------
# partial aggregation (distributed GROUP BY leaf scans)
# ---------------------------------------------------------------------------


class PartialScanPlan(GroupedScanPlan):
    """A leaf-phase partial aggregation — same shape as a grouped scan,
    but executed through the partial-state protocol (mergeable states out,
    no HAVING/items/ORDER BY)."""

    __slots__ = ()


def plan_partial(executor, query: ast.SelectQuery):
    """Build (and cache) a partial-aggregation scan plan, or None."""
    memo = executor._vector_partial_plans
    cached = memo.get(id(query))
    if cached is not None and cached[0] is query:
        plan, reason = cached[1], cached[2]
    else:
        plan, reason = _plan_partial_uncached(executor, query)
        executor._store_plan(memo, id(query), (query, plan, reason))
    if plan is None:
        stats.bail(reason)
    return plan


def _plan_partial_uncached(executor, query: ast.SelectQuery):
    if not isinstance(query.from_clause, ast.TableRef):
        return None, BailReason.COMPOUND_SOURCE
    if executor._needs_qualified_scopes(query):
        return None, BailReason.QUALIFIED_SCOPES
    try:
        table = executor.lookup_table(query.from_clause.name)
    except ExecutionError:
        return None, BailReason.UNKNOWN_TABLE
    table_columns = {name.lower() for name in table.schema.names}
    predicates = _plan_predicates(query)
    if predicates is None:
        return None, BailReason.COMPLEX_PREDICATE
    partial_plan = executor._partial_plan(query)
    key_columns = [name.lower() for name in partial_plan.key_names]
    if any(name not in table_columns for name in key_columns):
        return None, BailReason.EXPRESSION_GROUP_KEY
    specs = _resolve_vector_specs(
        executor._collect_aggregate_calls(query),
        partial_plan.specs,
        table_columns,
        allow_multi_arg=False,  # decomposable aggregates are single-argument
    )
    if specs is None:
        return None, BailReason.AGGREGATE_ARGS
    plan = PartialScanPlan(query, query.from_clause.name, predicates, key_columns, specs)
    return plan, None


def try_execute_partial(executor, query: ast.SelectQuery) -> Optional[Relation]:
    """Vectorized leaf partial aggregation, or None to use the row path."""
    plan = plan_partial(executor, query)
    if plan is None:
        return None
    relation = executor.lookup_table(plan.table_name)
    if any(relation.column_array(name) is None for name in plan.required):
        stats.bail(BailReason.COLUMN_DRIFT)
        return None
    partial_plan = executor._partial_plan(query)
    try:
        sel = _apply_predicates(plan.predicates, relation)
    except _SCAN_ABANDON_ERRORS:
        stats.bail(BailReason.SCAN_ABANDONED)
        return None

    if plan.key_columns:
        # The row path freezes every key value unconditionally; raw
        # hashable values are their own frozen form, so only the unhashable
        # fallback (already frozen) differs — nothing further to do.
        groups_indices, order, _ = _group_indices(relation, plan.key_columns, sel)
    else:
        indices = list(range(len(relation))) if sel is None else sel
        if indices:
            groups_indices = {(): indices}
            order = [()]
        else:
            groups_indices, order = {}, []

    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    whole = sel is None and len(order) == 1 and plan.key_columns == []
    try:
        for key in order:
            groups[key] = _feed_accumulators(
                relation, plan.specs, groups_indices[key], whole
            )
    except _SCAN_ABANDON_ERRORS:
        stats.bail(BailReason.SCAN_ABANDONED)
        return None
    if not query.group_by and not groups:
        groups[()] = [spec.make() for spec in plan.specs]
        order.append(())
    stats.partial += 1
    _note_backing(relation, plan.required)
    return executor._partial_state_relation(partial_plan, groups, order)


# ---------------------------------------------------------------------------
# metrics probes: pull-based, so the scan counters stay plain integers
# ---------------------------------------------------------------------------

from repro.obs.metrics import registry as _registry  # noqa: E402

_registry.probe("engine.vectorized.flat", lambda: stats.flat)
_registry.probe("engine.vectorized.grouped", lambda: stats.grouped)
_registry.probe("engine.vectorized.partial", lambda: stats.partial)
_registry.probe("engine.vectorized.typed", lambda: stats.typed)
_registry.probe("engine.vectorized.bails", lambda: dict(stats.bails))
