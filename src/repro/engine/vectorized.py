"""Vectorized scan/aggregate fast paths over columnar relations.

The compiled executor's default path still walks one row scope at a time:
every scanned row costs a scope dict, a closure call per expression and a
tuple per aggregate feed.  For the most common fragment shapes — a plain
projection, a conjunction of simple comparisons, a GROUP BY over plain
columns — none of that is necessary once relations are columnar
(:mod:`repro.engine.table`): the answer is a column slice away.

This module plans and executes those shapes directly over the column
arrays:

* **Flat projection** (``SELECT a, b FROM t [WHERE ...] [LIMIT/OFFSET]``
  with plain-column items): output columns are sliced/gathered straight
  from the input arrays into :meth:`Relation.from_columns` — no row scope,
  no output dict, no per-row anything.
* **Simple predicates** (``col <op> literal``, ``col <op> col``,
  ``col IS [NOT] NULL``, ``col [NOT] BETWEEN lit AND lit``,
  ``col [NOT] LIKE 'pat'``, ``col [NOT] IN (literals)`` joined by ``AND``)
  filter an index selection per conjunct with exact three-valued NULL
  semantics and the same error behaviour as the compiled closures.
* **Aggregate scans** (GROUP BY over plain columns, aggregate arguments
  that are plain columns or ``*``): rows are partitioned into per-group
  index lists in one pass, then every accumulator consumes its argument
  column slice in bulk (:meth:`add_many`).  HAVING, select items and
  ORDER BY reuse the executor's compiled group plan, so results are
  byte-identical to the row-at-a-time path.
* **Partial aggregation scans** — the distributed GROUP BY leaf phase —
  use the same machinery and emit mergeable state relations.

Anything outside these shapes (joins, subqueries, window functions,
qualified references, expression keys...) bails to the executor's
row-at-a-time path by returning ``None`` from the planner; the interpreted
oracle never takes these paths at all, which is what the differential
suite leans on.

**Error identity.**  The vectorized scan evaluates conjunct-major and
group-major, so when row-level evaluation fails (incomparable types in a
predicate, a NaN/Inf reaching an exact accumulator) the *first* failure it
hits may differ from the row-major order of the compiled closures.  Both
scans evaluate exactly the same (row, expression) pairs, so an error on
one path implies an error on the other — the fast path therefore abandons
the scan on any such error and lets the row path re-raise its own
row-major error, keeping error identity byte-for-byte.
"""

from __future__ import annotations

import operator
import threading
from contextlib import contextmanager
from enum import Enum
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.engine.columns import BOOL, INT64, TypedColumn, take_column
from repro.engine.errors import ExecutionError
from repro.engine.evaluator import _like_to_regex
from repro.engine.schema import ColumnDef, Schema
from repro.engine.stats import TableStats, optimizer_enabled, optimizer_stats
from repro.engine.table import Relation
from repro.engine.types import DataType, infer_type
from repro.sql import ast
from repro.sql.render import render_expression

# ---------------------------------------------------------------------------
# toggle (mirrors executor.execution_mode): process default + thread override
# ---------------------------------------------------------------------------

_default_enabled = True
_thread_state = threading.local()


def set_default_vectorized(enabled: bool) -> None:
    """Set the process-wide default for the vectorized fast paths."""
    global _default_enabled
    _default_enabled = bool(enabled)


def vectorized_enabled() -> bool:
    """The calling thread's setting (override, else process default)."""
    override = getattr(_thread_state, "enabled", None)
    return _default_enabled if override is None else override


@contextmanager
def vectorized_scans(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable the vectorized paths on this thread.

    The columnar benchmark flips this off to time the row-at-a-time
    compiled path as the pre-columnar baseline.
    """
    previous = getattr(_thread_state, "enabled", None)
    _thread_state.enabled = bool(enabled)
    try:
        yield
    finally:
        _thread_state.enabled = previous


class BailReason(str, Enum):
    """Why a query fell back to the row-at-a-time path.

    Plan-time reasons are recorded on *every* bailing call (cache hits
    included), so the counters measure fallback executions, not distinct
    queries; runtime reasons (``COLUMN_DRIFT``, ``SCAN_ABANDONED``) fire
    when an eligible plan could not finish over the column arrays.
    """

    NOT_SELECT = "not_select"
    COMPOUND_SOURCE = "compound_source"  # join / subquery / derived table
    QUALIFIED_SCOPES = "qualified_scopes"
    UNKNOWN_TABLE = "unknown_table"
    COMPLEX_PREDICATE = "complex_predicate"
    STAR_IN_GROUP_BY = "star_in_group_by"
    EXPRESSION_GROUP_KEY = "expression_group_key"
    AGGREGATE_ARGS = "aggregate_args"
    DISTINCT_OR_ORDER_BY = "distinct_or_order_by"
    EXPRESSION_ITEM = "expression_item"
    COLUMN_DRIFT = "column_drift"
    SCAN_ABANDONED = "scan_abandoned"
    #: A consumed column is declared int/float but its backing degraded to
    #: a generic Python list, forcing the boxed per-cell path through an
    #: otherwise vectorized scan.  Unlike the other reasons this does not
    #: mean the scan fell back to the row path — it measures lost typed
    #: throughput (surfaced in the profile report's scan-path section).
    UNTYPED_BACKING = "untyped_backing"


class ScanStats:
    """Counters of fast-path hits and bail reasons (advisory; plain-int
    increments so the per-query hot path stays lock-free)."""

    __slots__ = ("flat", "grouped", "partial", "typed", "bails")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.flat = 0
        self.grouped = 0
        self.partial = 0
        #: Completed scans that consumed at least one typed-backed column.
        self.typed = 0
        self.bails: Dict[str, int] = {}

    def bail(self, reason: "BailReason") -> None:
        key = reason.value
        self.bails[key] = self.bails.get(key, 0) + 1

    @property
    def total(self) -> int:
        return self.flat + self.grouped + self.partial

    @property
    def fallbacks(self) -> int:
        return sum(self.bails.values())


stats = ScanStats()


# ---------------------------------------------------------------------------
# shared helpers (the executor imports these — keep them executor-free)
# ---------------------------------------------------------------------------


def freeze_value(value: Any) -> Any:
    """Hashable stand-in for group/distinct keys (identity on scalars)."""
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def distinct_rows(rows: List[Dict[str, Any]], names: List[str]) -> List[Dict[str, Any]]:
    """Order-preserving duplicate removal over output dict rows."""
    seen: set = set()
    result = []
    for row in rows:
        key = tuple(freeze_value(row.get(name)) for name in names)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _first_non_null_type(values) -> Any:
    """The shared inference rule: first non-null value decides, else FLOAT."""
    if isinstance(values, TypedColumn):
        # The backing decides in O(1): typed columns hold exactly ints,
        # floats or bools, matching what per-value inference returns.
        if values.null_count == len(values):
            return infer_type(0.0)
        if values.typecode == INT64:
            return DataType.INTEGER
        if values.typecode == BOOL:
            return DataType.BOOLEAN
        return DataType.FLOAT
    for value in values:
        if value is not None:
            return infer_type(value)
    return infer_type(0.0)


def build_schema(names: List[str], rows: List[Dict[str, Any]]) -> Schema:
    """Schema inferred from output rows: first non-null value per column."""
    return Schema(
        [
            ColumnDef(
                name=name,
                data_type=_first_non_null_type(row.get(name) for row in rows),
            )
            for name in names
        ]
    )


def build_schema_from_columns(names: List[str], columns: Sequence[List[Any]]) -> Schema:
    """Columnar twin of :func:`build_schema` (same inference core)."""
    return Schema(
        [
            ColumnDef(name=name, data_type=_first_non_null_type(column))
            for name, column in zip(names, columns)
        ]
    )


# ---------------------------------------------------------------------------
# simple predicates
# ---------------------------------------------------------------------------

_EQ_OPS = {"=": False, "<>": True, "!=": True}
_ORDER_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Selection state threaded through the conjunct filters: the surviving
#: indices (not yet definitely false) and the subset that saw a NULL
#: conjunct.  NULL rows keep evaluating later conjuncts — exactly like the
#: compiled AND closure, which only short-circuits on a definite false —
#: but are excluded from the final selection.
Selection = Tuple[List[int], Set[int]]


class _AlwaysNullPred:
    """A conjunct that is NULL for every row (e.g. ``x < NULL``)."""

    __slots__ = ()
    columns: Tuple[str, ...] = ()
    #: Relative per-row evaluation cost, the tiebreaker when two conjuncts
    #: estimate equally selective (cheapest-most-selective first).
    cost = 0.1

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        nulls.update(sel)
        return sel


class _IsNullPred:
    __slots__ = ("column", "negated")
    cost = 0.5

    def __init__(self, column: str, negated: bool) -> None:
        self.column = column
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        if isinstance(array, TypedColumn):
            isnull = array.null_map()
            if self.negated:
                return [i for i in sel if not isnull[i]]
            return [i for i in sel if isnull[i]]
        if self.negated:
            return [i for i in sel if array[i] is not None]
        return [i for i in sel if array[i] is None]


class _ComparePred:
    """``col <op> literal`` (or ``literal <op> col`` when ``swapped``)."""

    __slots__ = ("column", "op", "value", "invert", "order_op", "swapped")
    cost = 1.0

    def __init__(self, column: str, op: str, value: Any, swapped: bool) -> None:
        self.column = column
        self.op = op
        self.value = value
        self.invert = _EQ_OPS.get(op)
        self.order_op = _ORDER_OPS.get(op)
        self.swapped = swapped

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        const = self.value
        out: List[int] = []
        add_null = nulls.add
        if isinstance(array, TypedColumn):
            # Typed backing: read the unboxed buffer directly and test NULL
            # through the byte map — no per-cell boxing or None sentinel.
            isnull = array.null_map()
            data = array.data_array()
            if self.invert is not None:
                wanted = not self.invert
                for i in sel:
                    if isnull[i]:
                        out.append(i)
                        add_null(i)
                    elif (data[i] == const) is wanted:
                        out.append(i)
                return out
            op = self.order_op
            if self.swapped:
                for i in sel:
                    if isnull[i]:
                        out.append(i)
                        add_null(i)
                    elif op(const, data[i]):
                        out.append(i)
            else:
                for i in sel:
                    if isnull[i]:
                        out.append(i)
                        add_null(i)
                    elif op(data[i], const):
                        out.append(i)
            return out
        if self.invert is not None:  # = / <> / != : never raises
            wanted = not self.invert
            for i in sel:
                value = array[i]
                if value is None:
                    out.append(i)
                    add_null(i)
                elif (value == const) is wanted:
                    out.append(i)
            return out
        # Ordering comparisons may raise TypeError on incomparable values;
        # the caller abandons the scan then (see "Error identity" above).
        op = self.order_op
        if self.swapped:
            for i in sel:
                value = array[i]
                if value is None:
                    out.append(i)
                    add_null(i)
                elif op(const, value):
                    out.append(i)
        else:
            for i in sel:
                value = array[i]
                if value is None:
                    out.append(i)
                    add_null(i)
                elif op(value, const):
                    out.append(i)
        return out


class _ColumnComparePred:
    """``col <op> col`` between two columns of the scanned relation."""

    __slots__ = ("left", "right", "op", "invert", "order_op")
    cost = 1.2

    def __init__(self, left: str, right: str, op: str) -> None:
        self.left = left
        self.right = right
        self.op = op
        self.invert = _EQ_OPS.get(op)
        self.order_op = _ORDER_OPS.get(op)

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.left, self.right)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        left = relation.column_array(self.left)
        right = relation.column_array(self.right)
        out: List[int] = []
        add_null = nulls.add
        if self.invert is not None:
            wanted = not self.invert
            for i in sel:
                lhs, rhs = left[i], right[i]
                if lhs is None or rhs is None:
                    out.append(i)
                    add_null(i)
                elif (lhs == rhs) is wanted:
                    out.append(i)
            return out
        op = self.order_op
        for i in sel:
            lhs, rhs = left[i], right[i]
            if lhs is None or rhs is None:
                out.append(i)
                add_null(i)
            elif op(lhs, rhs):
                out.append(i)
        return out


class _BetweenPred:
    """``col [NOT] BETWEEN literal AND literal``.

    Type errors from the chained comparison propagate to the caller, which
    abandons the scan so the row path re-raises in its own order.
    """

    __slots__ = ("column", "low", "high", "negated")
    cost = 1.5

    def __init__(self, column: str, low: Any, high: Any, negated: bool) -> None:
        self.column = column
        self.low = low
        self.high = high
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        low, high = self.low, self.high
        negated = self.negated
        out: List[int] = []
        add_null = nulls.add
        for i in sel:
            value = array[i]
            if value is None:
                out.append(i)
                add_null(i)
                continue
            result = low <= value <= high
            if (not result) if negated else result:
                out.append(i)
        return out


class _LikePred:
    """``col [NOT] LIKE 'pattern'`` with a literal pattern."""

    __slots__ = ("column", "regex", "negated")
    cost = 4.0

    def __init__(self, column: str, pattern: str, negated: bool) -> None:
        self.column = column
        self.regex = _like_to_regex(pattern)
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        match = self.regex.match
        negated = self.negated
        out: List[int] = []
        add_null = nulls.add
        for i in sel:
            value = array[i]
            if value is None:
                out.append(i)
                add_null(i)
                continue
            result = bool(match(str(value)))
            if (not result) if negated else result:
                out.append(i)
        return out


class _InListPred:
    """``col [NOT] IN (literal, ...)`` — NULL members are dropped up front."""

    __slots__ = ("column", "constants", "negated")
    cost = 1.5

    def __init__(self, column: str, constants: List[Any], negated: bool) -> None:
        self.column = column
        self.constants = constants
        self.negated = negated

    @property
    def columns(self) -> Tuple[str, ...]:
        return (self.column,)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        array = relation.column_array(self.column)
        constants = self.constants
        negated = self.negated
        out: List[int] = []
        add_null = nulls.add
        for i in sel:
            value = array[i]
            if value is None:
                out.append(i)
                add_null(i)
            elif (value not in constants) if negated else (value in constants):
                out.append(i)
        return out


class _OrPred:
    """An OR of conjunct lists, each disjunct built from simple predicates.

    Each disjunct runs its conjuncts over the incoming selection — a
    superset of what the short-circuiting compiled OR would touch, which
    the "Error identity" contract explicitly permits — and the results
    combine with SQL three-valued OR: a row true in any disjunct passes as
    true (even if NULL in another), a row with no true and at least one
    NULL disjunct carries NULL, anything else is dropped as false.
    """

    __slots__ = ("disjuncts", "columns")
    cost = 4.0

    def __init__(self, disjuncts: List[List[Any]]) -> None:
        self.disjuncts = disjuncts
        columns: List[str] = []
        for conjuncts in disjuncts:
            for predicate in conjuncts:
                columns.extend(predicate.columns)
        self.columns = tuple(columns)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        optimizer_stats.or_scans += 1
        true_rows: Set[int] = set()
        null_rows: Set[int] = set()
        for conjuncts in self.disjuncts:
            local_sel = sel
            local_nulls: Set[int] = set()
            for predicate in conjuncts:
                local_sel = predicate.apply(relation, local_sel, local_nulls)
                if not local_sel:
                    break
            for i in local_sel:
                if i in local_nulls:
                    null_rows.add(i)
                else:
                    true_rows.add(i)
        out: List[int] = []
        add_null = nulls.add
        for i in sel:
            if i in true_rows:
                out.append(i)
            elif i in null_rows:
                out.append(i)
                add_null(i)
        return out


class _ExprComparePred:
    """``<arithmetic expr> <op> <arithmetic expr>`` over columns/literals.

    Both sides are compiled by :func:`_compile_value` to ``(cols, i)``
    closures mirroring the compiled operator semantics exactly (NULL
    propagation, division/modulo by zero yielding NULL).  Ordering
    comparisons on incomparable values raise TypeError, which abandons the
    scan so the row path re-raises its own ``Cannot compare`` error.
    """

    __slots__ = ("left", "right", "invert", "order_op", "columns")
    cost = 3.0

    def __init__(self, left_fn, right_fn, op: str, columns: List[str]) -> None:
        self.left = left_fn
        self.right = right_fn
        self.invert = _EQ_OPS.get(op)
        self.order_op = _ORDER_OPS.get(op)
        self.columns = tuple(columns)

    def apply(self, relation: Relation, sel: List[int], nulls: Set[int]) -> List[int]:
        optimizer_stats.expr_compare_scans += 1
        cols = [relation.column_array(name) for name in self.columns]
        left = self.left
        right = self.right
        out: List[int] = []
        add_null = nulls.add
        if self.invert is not None:
            wanted = not self.invert
            for i in sel:
                lhs = left(cols, i)
                rhs = right(cols, i)
                if lhs is None or rhs is None:
                    out.append(i)
                    add_null(i)
                elif (lhs == rhs) is wanted:
                    out.append(i)
            return out
        op = self.order_op
        for i in sel:
            lhs = left(cols, i)
            rhs = right(cols, i)
            if lhs is None or rhs is None:
                out.append(i)
                add_null(i)
            elif op(lhs, rhs):
                out.append(i)
        return out


def _plain_column(node: ast.Node) -> Optional[str]:
    """The lower-cased name of an unqualified plain column reference."""
    if isinstance(node, ast.Column) and not node.table:
        return node.name.lower()
    return None


_ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})


def _has_arithmetic(node: ast.Expression) -> bool:
    """Does either comparison side start with arithmetic (or negation)?"""
    if isinstance(node, ast.BinaryOp) and node.operator in _ARITH_OPS:
        return True
    return isinstance(node, ast.UnaryOp) and node.operator == "-"


def _compile_value(node: ast.Expression, columns: List[str]):
    """Compile an arithmetic operand tree to a ``(cols, i) -> value`` closure.

    ``columns`` is the predicate's shared column registry: every plain
    column reference resolves to a stable position in it, and ``cols`` at
    apply time is the matching list of live column arrays.  Returns None
    for shapes outside the vocabulary (qualified columns, function calls,
    subqueries...).  Semantics mirror the compiled closures bit for bit:
    NULL operands propagate, ``/`` and ``%`` by zero yield NULL, every
    other arithmetic error propagates (and abandons the scan).
    """
    if isinstance(node, ast.Literal):
        const = node.value
        return lambda cols, i: const
    name = _plain_column(node)
    if name is not None:
        if name in columns:
            position = columns.index(name)
        else:
            position = len(columns)
            columns.append(name)
        return lambda cols, i: cols[position][i]
    if isinstance(node, ast.UnaryOp) and node.operator == "-":
        inner = _compile_value(node.operand, columns)
        if inner is None:
            return None

        def negate(cols, i):
            value = inner(cols, i)
            return None if value is None else -value

        return negate
    if isinstance(node, ast.BinaryOp) and node.operator in _ARITH_OPS:
        left = _compile_value(node.left, columns)
        if left is None:
            return None
        right = _compile_value(node.right, columns)
        if right is None:
            return None
        op = node.operator
        if op in ("/", "%"):
            binop = operator.truediv if op == "/" else operator.mod

            def guarded(cols, i):
                lhs = left(cols, i)
                rhs = right(cols, i)
                if lhs is None or rhs is None or rhs == 0:
                    return None
                return binop(lhs, rhs)

            return guarded
        binop = {"+": operator.add, "-": operator.sub, "*": operator.mul}[op]

        def arith(cols, i):
            lhs = left(cols, i)
            rhs = right(cols, i)
            if lhs is None or rhs is None:
                return None
            return binop(lhs, rhs)

        return arith
    return None


def _disjunction_terms(expression: ast.Expression) -> List[ast.Expression]:
    """Split a boolean expression into its top-level OR-ed branches."""
    if isinstance(expression, ast.BinaryOp) and expression.operator.upper() == "OR":
        return _disjunction_terms(expression.left) + _disjunction_terms(
            expression.right
        )
    return [expression]


def _or_predicate(term: ast.BinaryOp):
    """Compile an OR tree to :class:`_OrPred`, or None when any leaf is
    outside the simple-predicate vocabulary."""
    disjuncts: List[List[Any]] = []
    for branch in _disjunction_terms(term):
        conjuncts: List[Any] = []
        for sub in ast.conjunction_terms(branch):
            predicate = _simple_predicate(sub)
            if predicate is None:
                return None
            conjuncts.append(predicate)
        disjuncts.append(conjuncts)
    return _OrPred(disjuncts)


def _simple_predicate(term: ast.Expression):
    """Compile one WHERE conjunct to a filter, or None when not simple.

    The base vocabulary (comparisons, IS NULL, BETWEEN, LIKE, IN) is always
    available; OR-of-conjuncts and arithmetic-on-column comparisons are
    optimizer-era widenings, gated on the toggle so the ablation arm keeps
    today's syntactic bail behaviour (plan memos key on the toggle).
    """
    if isinstance(term, ast.BinaryOp):
        op = term.operator.upper()
        if op == "OR":
            if not optimizer_enabled():
                return None
            return _or_predicate(term)
        if op not in _EQ_OPS and op not in _ORDER_OPS:
            return None
        left_col = _plain_column(term.left)
        right_col = _plain_column(term.right)
        if left_col is not None and right_col is not None:
            return _ColumnComparePred(left_col, right_col, op)
        if left_col is not None and isinstance(term.right, ast.Literal):
            if term.right.value is None:
                return _AlwaysNullPred()
            return _ComparePred(left_col, op, term.right.value, swapped=False)
        if right_col is not None and isinstance(term.left, ast.Literal):
            if term.left.value is None:
                return _AlwaysNullPred()
            return _ComparePred(right_col, op, term.left.value, swapped=True)
        if optimizer_enabled() and (
            _has_arithmetic(term.left) or _has_arithmetic(term.right)
        ):
            columns: List[str] = []
            left_fn = _compile_value(term.left, columns)
            if left_fn is not None:
                right_fn = _compile_value(term.right, columns)
                if right_fn is not None:
                    return _ExprComparePred(left_fn, right_fn, op, columns)
        return None
    if isinstance(term, ast.IsNull):
        column = _plain_column(term.expression)
        if column is None:
            return None
        return _IsNullPred(column, term.negated)
    if isinstance(term, ast.Between):
        column = _plain_column(term.expression)
        if column is None:
            return None
        if not isinstance(term.low, ast.Literal) or not isinstance(term.high, ast.Literal):
            return None
        if term.low.value is None or term.high.value is None:
            return _AlwaysNullPred()
        return _BetweenPred(column, term.low.value, term.high.value, term.negated)
    if isinstance(term, ast.Like):
        column = _plain_column(term.expression)
        if column is None or not isinstance(term.pattern, ast.Literal):
            return None
        if term.pattern.value is None:
            return _AlwaysNullPred()
        return _LikePred(column, str(term.pattern.value), term.negated)
    if isinstance(term, ast.InList):
        column = _plain_column(term.expression)
        if column is None:
            return None
        if not all(isinstance(value, ast.Literal) for value in term.values):
            return None
        constants = [value.value for value in term.values if value.value is not None]
        return _InListPred(column, constants, term.negated)
    return None


#: Below this row count conjunct reordering is not worth the estimation
#: work — either order finishes in microseconds.
_MIN_REORDER_ROWS = 64

#: ``literal <op> column`` reads as ``column <swapped op> literal``.
_SWAPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _stats_for(table_stats: Optional[TableStats], name: str):
    return None if table_stats is None else table_stats.column(name)


def predicate_selectivity(predicate: Any, table_stats: Optional[TableStats]) -> float:
    """Estimated fraction of rows one conjunct passes (NULLs never pass).

    Backed by the column summaries when available, falling back to the
    classic textbook guesses (1/3 for ranges, 1/10 for equality, 1/4 for
    LIKE) when the column is unknown or stats are absent.
    """
    return min(1.0, max(0.0, _estimate_selectivity(predicate, table_stats)))


def _estimate_selectivity(predicate: Any, table_stats: Optional[TableStats]) -> float:
    if isinstance(predicate, _AlwaysNullPred):
        return 0.0
    if isinstance(predicate, _IsNullPred):
        column = _stats_for(table_stats, predicate.column)
        if column is None or column.rows == 0:
            return 0.9 if predicate.negated else 0.1
        fraction = column.null_fraction
        return (1.0 - fraction) if predicate.negated else fraction
    if isinstance(predicate, _ComparePred):
        column = _stats_for(table_stats, predicate.column)
        op = predicate.op
        if column is None or column.rows == 0:
            return 0.1 if op == "=" else 1.0 / 3.0
        if predicate.invert is not None:
            eq = column.eq_fraction(predicate.value)
            if not predicate.invert:
                return eq
            return max(column.non_null / column.rows - eq, 0.0)
        if predicate.swapped:
            op = _SWAPPED_OPS.get(op, op)
        return column.range_fraction(op, predicate.value)
    if isinstance(predicate, _BetweenPred):
        column = _stats_for(table_stats, predicate.column)
        if column is None or column.rows == 0:
            return 0.75 if predicate.negated else 0.25
        fraction = column.between_fraction(predicate.low, predicate.high)
        if predicate.negated:
            return max(column.non_null / column.rows - fraction, 0.0)
        return fraction
    if isinstance(predicate, _InListPred):
        column = _stats_for(table_stats, predicate.column)
        if column is None or column.rows == 0:
            hit = min(0.1 * max(len(predicate.constants), 1), 1.0)
            return 1.0 - hit if predicate.negated else hit
        total = min(
            sum(column.eq_fraction(constant) for constant in predicate.constants),
            1.0,
        )
        if predicate.negated:
            return max(column.non_null / column.rows - total, 0.0)
        return total
    if isinstance(predicate, _LikePred):
        return 0.75 if predicate.negated else 0.25
    if isinstance(predicate, _ColumnComparePred):
        if predicate.invert is not None and not predicate.invert:
            left = _stats_for(table_stats, predicate.left)
            right = _stats_for(table_stats, predicate.right)
            distinct = max(
                left.distinct if left is not None else 0,
                right.distinct if right is not None else 0,
                1,
            )
            return 1.0 / distinct
        return 1.0 / 3.0
    if isinstance(predicate, _OrPred):
        miss = 1.0
        for conjuncts in predicate.disjuncts:
            disjunct = 1.0
            for sub in conjuncts:
                disjunct *= predicate_selectivity(sub, table_stats)
            miss *= 1.0 - min(disjunct, 1.0)
        return 1.0 - miss
    if isinstance(predicate, _ExprComparePred):
        if predicate.invert is not None and not predicate.invert:
            return 0.15
        return 1.0 / 3.0
    return 1.0 / 3.0


def _plain_numeric(value: Any) -> bool:
    return isinstance(value, (int, float))


def _infallible(predicate: Any, relation: Relation) -> bool:
    """Can this conjunct never raise over ``relation``'s current arrays?

    Equality comparisons, IS NULL, LIKE and IN never raise; ordering
    comparisons are raise-free when both operands are guaranteed numeric
    (typed column backing plus a numeric literal).  Fallibility constrains
    reordering — see :func:`order_conjuncts`.
    """
    if isinstance(predicate, (_AlwaysNullPred, _IsNullPred, _LikePred, _InListPred)):
        return True
    if isinstance(predicate, _ComparePred):
        if predicate.invert is not None:
            return True
        return isinstance(
            relation.column_array(predicate.column), TypedColumn
        ) and _plain_numeric(predicate.value)
    if isinstance(predicate, _ColumnComparePred):
        if predicate.invert is not None:
            return True
        return isinstance(
            relation.column_array(predicate.left), TypedColumn
        ) and isinstance(relation.column_array(predicate.right), TypedColumn)
    if isinstance(predicate, _BetweenPred):
        return (
            isinstance(relation.column_array(predicate.column), TypedColumn)
            and _plain_numeric(predicate.low)
            and _plain_numeric(predicate.high)
        )
    if isinstance(predicate, _OrPred):
        return all(
            _infallible(sub, relation)
            for conjuncts in predicate.disjuncts
            for sub in conjuncts
        )
    return False  # _ExprComparePred and anything unrecognized


def order_conjuncts(
    predicates: Sequence[Any],
    relation: Relation,
    table_stats: Optional[TableStats],
) -> List[Any]:
    """Selectivity-then-cost order for AND conjuncts, error-identity safe.

    Pass/NULL semantics are order-independent (NULL rows survive every
    conjunct and are excluded once at the end), so reordering cannot change
    *results*.  What it could change is *error* behaviour: a conjunct that
    can raise must never see fewer rows than it would in written order,
    else the fast path could succeed where the row path raises.  A
    fallible conjunct may therefore only move earlier — it may only ever
    be preceded by conjuncts that were originally before it (evaluating
    extra rows at worst triggers a spurious scan abandon, which falls back
    to the row path and stays byte-identical).  Infallible conjuncts move
    freely.
    """
    ranks = [
        (predicate_selectivity(predicate, table_stats), getattr(predicate, "cost", 2.0))
        for predicate in predicates
    ]
    fallible = [not _infallible(predicate, relation) for predicate in predicates]
    remaining = list(range(len(predicates)))
    ordered: List[Any] = []
    while remaining:
        barrier = min((i for i in remaining if fallible[i]), default=None)
        best = None
        for i in remaining:
            if barrier is not None and i > barrier:
                continue
            key = (ranks[i][0], ranks[i][1], i)
            if best is None or key < best[0]:
                best = (key, i)
        index = best[1]
        ordered.append(predicates[index])
        remaining.remove(index)
    if any(first is not second for first, second in zip(ordered, predicates)):
        optimizer_stats.conjunct_reorders += 1
    return ordered


def _apply_predicates(
    predicates: Sequence[Any], relation: Relation
) -> Optional[List[int]]:
    """Filter row indices through the conjuncts; None means "all rows"."""
    if not predicates:
        return None
    if (
        len(predicates) > 1
        and optimizer_enabled()
        and len(relation) >= _MIN_REORDER_ROWS
    ):
        predicates = order_conjuncts(predicates, relation, relation.stats())
    sel = list(range(len(relation)))
    nulls: Set[int] = set()
    for predicate in predicates:
        sel = predicate.apply(relation, sel, nulls)
        if not sel:
            return []
    if nulls:
        return [i for i in sel if i not in nulls]
    return sel


# ---------------------------------------------------------------------------
# scan plans
# ---------------------------------------------------------------------------


class _VectorAggSpec:
    """One distinct aggregate call, with column-resolved arguments."""

    __slots__ = ("key", "make", "arg_columns")

    def __init__(self, key: str, make: Callable[[], Any], arg_columns: Optional[List[str]]) -> None:
        self.key = key
        #: Accumulator factory (shared with the executor's group plan).
        self.make = make
        #: Lower-cased argument column names; None feeds the star row.
        self.arg_columns = arg_columns


class FlatScanPlan:
    """``SELECT [DISTINCT] <plain columns> FROM <table> [WHERE simple]
    [ORDER BY <plain columns>] [LIMIT/OFFSET]``."""

    __slots__ = (
        "query",
        "table_name",
        "predicates",
        "out_names",
        "out_columns",
        "order_spec",
        "distinct",
        "required",
    )

    def __init__(
        self,
        query,
        table_name,
        predicates,
        out_names,
        out_columns,
        order_spec=None,
        distinct=False,
    ) -> None:
        self.query = query
        self.table_name = table_name
        self.predicates = predicates
        self.out_names = out_names
        self.out_columns = out_columns
        #: ``[(source_column, ascending), ...]`` or None for unordered scans.
        self.order_spec = order_spec
        self.distinct = distinct
        self.required = set(out_columns)
        for predicate in predicates:
            self.required.update(predicate.columns)
        if order_spec:
            self.required.update(column for column, _ in order_spec)


class GroupedScanPlan:
    """A GROUP BY / aggregate scan over plain key and argument columns."""

    __slots__ = ("query", "table_name", "predicates", "key_columns", "specs", "required")

    def __init__(self, query, table_name, predicates, key_columns, specs) -> None:
        self.query = query
        self.table_name = table_name
        self.predicates = predicates
        self.key_columns = key_columns
        self.specs = specs
        self.required = set(key_columns)
        for predicate in predicates:
            self.required.update(predicate.columns)
        for spec in specs:
            if spec.arg_columns:
                self.required.update(spec.arg_columns)


def _resolve_vector_specs(
    calls: Sequence[ast.FunctionCall],
    source_specs: Sequence[Any],
    table_columns: Set[str],
    allow_multi_arg: bool,
) -> Optional[List[_VectorAggSpec]]:
    """Pair the executor plan's aggregate specs with argument columns.

    ``calls`` dedup in first-occurrence render order — the same order the
    executor's own plans use, so the pairing is positional in spirit but
    matched by rendered key for safety.  Returns None when any argument is
    not a plain column of the scanned table (the row path owns those).
    """
    specs: List[_VectorAggSpec] = []
    seen: Set[str] = set()
    for call in calls:
        key = render_expression(call)
        if key in seen:
            continue
        seen.add(key)
        is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
        if is_star or not call.arguments:
            arg_columns: Optional[List[str]] = None
        else:
            if len(call.arguments) != 1 and not allow_multi_arg:
                return None
            arg_columns = []
            for argument in call.arguments:
                column = _plain_column(argument)
                if column is None or column not in table_columns:
                    return None
                arg_columns.append(column)
        spec = next((s for s in source_specs if s.key == key), None)
        if spec is None:  # pragma: no cover - same dedup, same order
            return None
        specs.append(_VectorAggSpec(key, spec.make, arg_columns))
    if len(specs) != len(source_specs):
        return None  # pragma: no cover - defensive
    return specs


def _plan_predicates(query: ast.SelectQuery) -> Optional[List[Any]]:
    predicates: List[Any] = []
    if query.where is not None:
        for term in ast.conjunction_terms(query.where):
            predicate = _simple_predicate(term)
            if predicate is None:
                return None
            predicates.append(predicate)
    return predicates


def plan_select(executor, query: ast.Query):
    """Build (and cache) a scan plan for ``query``, or None when ineligible.

    Bail reasons are recorded on every bailing call — cached verdicts
    included — so :data:`stats` counts fallback executions.
    """
    memo = executor._vector_plans
    enabled = optimizer_enabled()
    cached = memo.get(id(query))
    if cached is not None and cached[0] is query and cached[3] == enabled:
        plan, reason = cached[1], cached[2]
    else:
        plan, reason = _plan_select_uncached(executor, query)
        executor._store_plan(memo, id(query), (query, plan, reason, enabled))
    if plan is None:
        stats.bail(reason)
    return plan


def _plan_select_uncached(executor, query: ast.Query):
    if not isinstance(query, ast.SelectQuery):
        return None, BailReason.NOT_SELECT
    if not isinstance(query.from_clause, ast.TableRef):
        return None, BailReason.COMPOUND_SOURCE
    if executor._needs_qualified_scopes(query):
        return None, BailReason.QUALIFIED_SCOPES
    try:
        table = executor.lookup_table(query.from_clause.name)
    except ExecutionError:
        # The row path raises the same "Unknown table".
        return None, BailReason.UNKNOWN_TABLE
    table_columns = {name.lower() for name in table.schema.names}
    predicates = _plan_predicates(query)
    if predicates is None:
        return None, BailReason.COMPLEX_PREDICATE
    table_name = query.from_clause.name

    if query.group_by or executor._select_has_aggregates(query):
        if any(isinstance(item.expression, ast.Star) for item in query.items):
            # The row path raises the star/GROUP BY error.
            return None, BailReason.STAR_IN_GROUP_BY
        key_columns: List[str] = []
        for expression in query.group_by:
            column = _plain_column(expression)
            if column is None or column not in table_columns:
                return None, BailReason.EXPRESSION_GROUP_KEY
            key_columns.append(column)
        group_plan = executor._group_plan(query)
        specs = _resolve_vector_specs(
            executor._collect_aggregate_calls(query),
            group_plan.specs,
            table_columns,
            allow_multi_arg=True,
        )
        if specs is None:
            return None, BailReason.AGGREGATE_ARGS
        return GroupedScanPlan(query, table_name, predicates, key_columns, specs), None

    # Flat projection: plain columns only.  DISTINCT and ORDER BY over
    # plain columns are planned as index permutations when the optimizer
    # is on; everything else still belongs to the row path.
    items = executor._expand_star_items(query.items, list(table.schema.names))
    out_columns: List[str] = []
    for item in items:
        column = _plain_column(item.expression)
        if column is None or column not in table_columns:
            return None, BailReason.EXPRESSION_ITEM
        out_columns.append(column)
    out_names = executor._output_names(items)

    distinct = bool(query.distinct)
    order_spec: Optional[List[Tuple[str, bool]]] = None
    if distinct or query.order_by:
        if not optimizer_enabled():
            return None, BailReason.DISTINCT_OR_ORDER_BY
        lowered_names = [name.lower() for name in out_names]
        if len(set(lowered_names)) != len(lowered_names):
            # Duplicate output names make name-based order resolution
            # ambiguous; leave those to the row path.
            return None, BailReason.DISTINCT_OR_ORDER_BY
        positions = {name: index for index, name in enumerate(lowered_names)}
        order_spec = []
        for item in query.order_by:
            column = _plain_column(item.expression)
            if column is None:
                return None, BailReason.DISTINCT_OR_ORDER_BY
            if column in positions:
                # Output-name references sort by the projected value, which
                # wins over the source scope in the row path's merged scope.
                source = out_columns[positions[column]]
            elif column in table_columns and not distinct:
                # Source-column references are only safe without DISTINCT:
                # after dedup the row path's scope indices misalign, so the
                # row path owns that combination.
                source = column
            else:
                return None, BailReason.DISTINCT_OR_ORDER_BY
            order_spec.append((source, item.ascending))
        if not order_spec:
            order_spec = None
    plan = FlatScanPlan(
        query,
        query.from_clause.name,
        predicates,
        out_names,
        out_columns,
        order_spec,
        distinct,
    )
    return plan, None


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


#: Row-level evaluation errors that abandon the vectorized scan so the row
#: path can re-raise its own row-major error (see "Error identity" above).
_SCAN_ABANDON_ERRORS = (TypeError, ValueError, OverflowError)

#: Schema types whose columns are expected to carry a typed backing.
_TYPEABLE = (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN)


def _note_backing(relation: Relation, names) -> None:
    """Account a completed scan's column backings.

    Bumps ``stats.typed`` when the scan consumed a typed-backed column and
    records :attr:`BailReason.UNTYPED_BACKING` when a consumed column is
    declared int/float but its backing degraded to a generic list.
    """
    if not names or not len(relation):
        return
    touched_typed = False
    degraded = False
    lowered = {name.lower() for name in names}
    for column_def, column in zip(relation.schema.columns, relation.columns()):
        if column_def.name.lower() not in lowered:
            continue
        if isinstance(column, TypedColumn):
            touched_typed = True
        elif column_def.data_type in _TYPEABLE:
            degraded = True
    if touched_typed:
        stats.typed += 1
    if degraded:
        stats.bail(BailReason.UNTYPED_BACKING)


def try_execute_select(executor, query: ast.Query, parent) -> Optional[Relation]:
    """Execute ``query`` over column arrays, or None to use the row path."""
    plan = plan_select(executor, query)
    if plan is None:
        return None
    relation = executor.lookup_table(plan.table_name)
    if any(relation.column_array(name) is None for name in plan.required):
        stats.bail(BailReason.COLUMN_DRIFT)
        return None  # catalog shape drifted from the planned columns
    try:
        sel = _apply_predicates(plan.predicates, relation)
    except _SCAN_ABANDON_ERRORS:
        stats.bail(BailReason.SCAN_ABANDONED)
        return None
    if isinstance(plan, FlatScanPlan):
        result = _execute_flat(plan, relation, sel)
        if result is None:
            stats.bail(BailReason.SCAN_ABANDONED)
    else:
        result = _execute_grouped(executor, plan, relation, parent, sel)
        if result is None:
            stats.bail(BailReason.SCAN_ABANDONED)
    if result is not None:
        _note_backing(relation, plan.required)
    return result


class _OrderKey:
    """Comparable wrapper handling None values and descending order."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_OrderKey") -> bool:
        left, right = self.value, other.value
        if not self.ascending:
            left, right = right, left
        if left is None:
            return right is not None
        if right is None:
            return False
        try:
            return left < right
        except TypeError:
            return str(left) < str(right)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


def _execute_flat_ordered(
    plan: FlatScanPlan, relation: Relation, sel: Optional[List[int]]
) -> Relation:
    """Flat scan with DISTINCT/ORDER BY applied as index permutations.

    Mirrors the row path's tail exactly: dedup first (first occurrence in
    selection order, keyed on the frozen output tuple), then a stable sort
    with the shared :class:`_OrderKey` semantics, then OFFSET/LIMIT.
    """
    query = plan.query
    out_arrays = [relation.column_array(name) for name in plan.out_columns]
    indices: List[int] = list(range(len(relation))) if sel is None else sel
    if plan.distinct:
        seen: Set[Tuple[Any, ...]] = set()
        kept: List[int] = []
        for i in indices:
            key = tuple(freeze_value(array[i]) for array in out_arrays)
            if key not in seen:
                seen.add(key)
                kept.append(i)
        indices = kept
        optimizer_stats.distinct_scans += 1
    if plan.order_spec:
        order_arrays = [
            (relation.column_array(column), ascending)
            for column, ascending in plan.order_spec
        ]
        indices = sorted(
            indices,
            key=lambda i: tuple(
                _OrderKey(array[i], ascending) for array, ascending in order_arrays
            ),
        )
        optimizer_stats.order_by_scans += 1
    if query.offset is not None:
        indices = indices[query.offset :]
    if query.limit is not None:
        indices = indices[: query.limit]
    columns = [take_column(array, indices) for array in out_arrays]
    stats.flat += 1
    schema = build_schema_from_columns(plan.out_names, columns)
    return Relation.from_columns(schema, columns, name="")


def _execute_flat(
    plan: FlatScanPlan, relation: Relation, sel: Optional[List[int]]
) -> Optional[Relation]:
    if plan.distinct or plan.order_spec:
        try:
            return _execute_flat_ordered(plan, relation, sel)
        except _SCAN_ABANDON_ERRORS:
            return None
    query = plan.query
    offset = query.offset
    limit = query.limit

    columns: List[List[Any]] = []
    if sel is None:
        start = offset or 0
        stop = None if limit is None else start + limit
        for name in plan.out_columns:
            columns.append(relation.column_array(name)[start:stop])
    else:
        if offset is not None:
            sel = sel[offset:]
        if limit is not None:
            sel = sel[:limit]
        for name in plan.out_columns:
            # Typed backings gather into typed columns (and slices above
            # stay typed), so projections preserve unboxed storage.
            columns.append(take_column(relation.column_array(name), sel))

    stats.flat += 1
    schema = build_schema_from_columns(plan.out_names, columns)
    return Relation.from_columns(schema, columns, name="")


def _group_indices(
    relation: Relation,
    key_columns: Sequence[str],
    sel: Optional[List[int]],
) -> Tuple[Dict[Tuple[Any, ...], List[int]], List[Tuple[Any, ...]], Dict[Tuple[Any, ...], int]]:
    """Partition row indices by group key, in first-occurrence order.

    Raw key values are used while hashable, falling back to the frozen form
    on a TypeError — exactly the compiled fast-key behaviour, so group
    identity and order match the row path bit for bit.
    """
    groups: Dict[Tuple[Any, ...], List[int]] = {}
    order: List[Tuple[Any, ...]] = []
    first_index: Dict[Tuple[Any, ...], int] = {}
    arrays = [relation.column_array(name) for name in key_columns]
    indices = range(len(relation)) if sel is None else sel
    if len(arrays) == 1:
        array = arrays[0]
        for i in indices:
            key = (array[i],)
            try:
                bucket = groups.get(key)
            except TypeError:
                key = (freeze_value(key[0]),)
                bucket = groups.get(key)
            if bucket is None:
                groups[key] = [i]
                order.append(key)
                first_index[key] = i
            else:
                bucket.append(i)
    else:
        for i in indices:
            key = tuple(array[i] for array in arrays)
            try:
                bucket = groups.get(key)
            except TypeError:
                key = tuple(freeze_value(value) for value in key)
                bucket = groups.get(key)
            if bucket is None:
                groups[key] = [i]
                order.append(key)
                first_index[key] = i
            else:
                bucket.append(i)
    return groups, order, first_index


def _feed_accumulators(
    relation: Relation,
    specs: Sequence[_VectorAggSpec],
    indices: List[int],
    whole_relation: bool,
) -> List[Any]:
    """Instantiate and bulk-feed one accumulator per spec from column slices."""
    accumulators = []
    for spec in specs:
        accumulator = spec.make()
        arg_columns = spec.arg_columns
        if arg_columns is None:
            # Star and zero-argument calls: the row path feeds ``(1,)`` per
            # row.  ``add_many_star`` is the bulk shortcut where it exists
            # (COUNT(*), buffered aggregates); zero-arg calls of the other
            # aggregates (``COUNT()``, ``SUM()``... — the parser accepts
            # them) resolve to incremental accumulators without it, which
            # consume the equivalent ones column.
            add_star = getattr(accumulator, "add_many_star", None)
            if add_star is not None:
                add_star(len(indices))
            else:
                accumulator.add_many([1] * len(indices))
        elif len(arg_columns) == 1:
            array = relation.column_array(arg_columns[0])
            if whole_relation:
                accumulator.add_many(array)
            else:
                # Typed backings gather through the unboxed buffer so
                # add_many sees a typed column (see aggregates.add_many).
                accumulator.add_many(take_column(array, indices))
        else:
            arrays = [relation.column_array(name) for name in arg_columns]
            for i in indices:
                accumulator.add(tuple(array[i] for array in arrays))
        accumulators.append(accumulator)
    return accumulators


def _execute_grouped(
    executor, plan: GroupedScanPlan, relation: Relation, parent, sel: Optional[List[int]]
) -> Optional[Relation]:
    query = plan.query
    group_plan = executor._group_plan(query)
    specs = plan.specs

    lowered_names = [name.lower() for name in relation.schema.names]
    arrays = relation.columns()

    if plan.key_columns:
        groups, order, first_index = _group_indices(relation, plan.key_columns, sel)
    else:
        indices = list(range(len(relation))) if sel is None else sel
        if indices:
            groups = {(): indices}
            order = [()]
            first_index = {(): indices[0]}
        else:
            groups, order, first_index = {}, [], {}

    if not query.group_by and not groups:
        groups[()] = []
        order.append(())

    # Feed every group before emitting anything — the row path's scan phase
    # completes before its emit phase, and keeping the phases separate here
    # means an accumulator conversion error (exact SUM/STDDEV meeting a
    # non-numeric or non-finite value) abandons the scan before any item
    # evaluation, so the row path re-raises its own row-major error.
    whole = sel is None and len(order) == 1 and plan.key_columns == []
    accumulators_by_key: Dict[Tuple[Any, ...], List[Any]] = {}
    try:
        for key in order:
            accumulators_by_key[key] = _feed_accumulators(
                relation, specs, groups[key], whole
            )
    except _SCAN_ABANDON_ERRORS:
        return None

    context = executor._fresh_context(parent)
    output_names = group_plan.output_names
    item_fns = group_plan.item_fns
    having_fn = group_plan.having_fn
    output_rows: List[Dict[str, Any]] = []
    for key in order:
        indices = groups[key]
        accumulators = accumulators_by_key[key]
        if indices:
            first = first_index.get(key, indices[0])
            representative = {
                name: array[first] for name, array in zip(lowered_names, arrays)
            }
        else:
            representative = {}
        context.scope = representative
        context.aggregates = {
            spec.key: accumulator.result()
            for spec, accumulator in zip(specs, accumulators)
        }
        if having_fn is not None and not having_fn(context):
            continue
        output_rows.append({name: fn(context) for name, fn in zip(output_names, item_fns)})

    stats.grouped += 1

    # The standard SELECT tail, identical to the row path.
    if query.distinct:
        output_rows = distinct_rows(output_rows, output_names)
    if query.order_by:
        output_rows = executor._apply_order_by(query, output_rows, [], parent, True)
    if query.offset is not None:
        output_rows = output_rows[query.offset :]
    if query.limit is not None:
        output_rows = output_rows[: query.limit]
    schema = build_schema(output_names, output_rows)
    return Relation(schema=schema, rows=output_rows, name="")


# ---------------------------------------------------------------------------
# partial aggregation (distributed GROUP BY leaf scans)
# ---------------------------------------------------------------------------


class PartialScanPlan(GroupedScanPlan):
    """A leaf-phase partial aggregation — same shape as a grouped scan,
    but executed through the partial-state protocol (mergeable states out,
    no HAVING/items/ORDER BY)."""

    __slots__ = ()


def plan_partial(executor, query: ast.SelectQuery):
    """Build (and cache) a partial-aggregation scan plan, or None."""
    memo = executor._vector_partial_plans
    enabled = optimizer_enabled()
    cached = memo.get(id(query))
    if cached is not None and cached[0] is query and cached[3] == enabled:
        plan, reason = cached[1], cached[2]
    else:
        plan, reason = _plan_partial_uncached(executor, query)
        executor._store_plan(memo, id(query), (query, plan, reason, enabled))
    if plan is None:
        stats.bail(reason)
    return plan


def _plan_partial_uncached(executor, query: ast.SelectQuery):
    if not isinstance(query.from_clause, ast.TableRef):
        return None, BailReason.COMPOUND_SOURCE
    if executor._needs_qualified_scopes(query):
        return None, BailReason.QUALIFIED_SCOPES
    try:
        table = executor.lookup_table(query.from_clause.name)
    except ExecutionError:
        return None, BailReason.UNKNOWN_TABLE
    table_columns = {name.lower() for name in table.schema.names}
    predicates = _plan_predicates(query)
    if predicates is None:
        return None, BailReason.COMPLEX_PREDICATE
    partial_plan = executor._partial_plan(query)
    key_columns = [name.lower() for name in partial_plan.key_names]
    if any(name not in table_columns for name in key_columns):
        return None, BailReason.EXPRESSION_GROUP_KEY
    specs = _resolve_vector_specs(
        executor._collect_aggregate_calls(query),
        partial_plan.specs,
        table_columns,
        allow_multi_arg=False,  # decomposable aggregates are single-argument
    )
    if specs is None:
        return None, BailReason.AGGREGATE_ARGS
    plan = PartialScanPlan(query, query.from_clause.name, predicates, key_columns, specs)
    return plan, None


def try_execute_partial(executor, query: ast.SelectQuery) -> Optional[Relation]:
    """Vectorized leaf partial aggregation, or None to use the row path."""
    plan = plan_partial(executor, query)
    if plan is None:
        return None
    relation = executor.lookup_table(plan.table_name)
    if any(relation.column_array(name) is None for name in plan.required):
        stats.bail(BailReason.COLUMN_DRIFT)
        return None
    partial_plan = executor._partial_plan(query)
    try:
        sel = _apply_predicates(plan.predicates, relation)
    except _SCAN_ABANDON_ERRORS:
        stats.bail(BailReason.SCAN_ABANDONED)
        return None

    if plan.key_columns:
        # The row path freezes every key value unconditionally; raw
        # hashable values are their own frozen form, so only the unhashable
        # fallback (already frozen) differs — nothing further to do.
        groups_indices, order, _ = _group_indices(relation, plan.key_columns, sel)
    else:
        indices = list(range(len(relation))) if sel is None else sel
        if indices:
            groups_indices = {(): indices}
            order = [()]
        else:
            groups_indices, order = {}, []

    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    whole = sel is None and len(order) == 1 and plan.key_columns == []
    try:
        for key in order:
            groups[key] = _feed_accumulators(
                relation, plan.specs, groups_indices[key], whole
            )
    except _SCAN_ABANDON_ERRORS:
        stats.bail(BailReason.SCAN_ABANDONED)
        return None
    if not query.group_by and not groups:
        groups[()] = [spec.make() for spec in plan.specs]
        order.append(())
    stats.partial += 1
    _note_backing(relation, plan.required)
    return executor._partial_state_relation(partial_plan, groups, order)


# ---------------------------------------------------------------------------
# cardinality estimation (explain/profile plumbing)
# ---------------------------------------------------------------------------


def _contains_aggregate(node: ast.Node) -> bool:
    if (
        isinstance(node, ast.FunctionCall)
        and node.name.upper() in ast.AGGREGATE_FUNCTIONS
    ):
        return True
    return any(_contains_aggregate(child) for child in node.children())


def estimate_select_rows(
    query: ast.Query,
    relation: Optional[Relation] = None,
    input_rows: Optional[int] = None,
) -> Optional[int]:
    """Estimated output row count for ``query``, or None when unknowable.

    Uses column statistics when ``relation`` is at hand (selectivity per
    WHERE conjunct, distinct counts per GROUP BY key); falls back to
    textbook constants (0.5 per opaque conjunct, ``sqrt(rows)`` groups)
    when only ``input_rows`` is known.  Estimates are advisory — they feed
    ``explain()``/profiling and the calibration report, never results.
    """
    if not isinstance(query, ast.SelectQuery):
        return None
    if relation is not None:
        rows = len(relation)
        table_stats: Optional[TableStats] = relation.stats()
    else:
        rows = input_rows
        table_stats = None
    if rows is None:
        return None
    estimate = float(rows)
    if query.where is not None:
        for term in ast.conjunction_terms(query.where):
            predicate = _simple_predicate(term)
            if predicate is not None:
                estimate *= predicate_selectivity(predicate, table_stats)
            else:
                estimate *= 0.5
    if query.group_by:
        groups = 1.0
        known = True
        for expression in query.group_by:
            column = _plain_column(expression)
            summary = _stats_for(table_stats, column) if column else None
            if summary is None:
                known = False
                break
            groups *= max(summary.distinct, 1)
        if not known:
            groups = max(1.0, estimate**0.5)
        estimate = min(estimate, groups)
    elif any(
        not isinstance(item.expression, ast.Star)
        and _contains_aggregate(item.expression)
        for item in query.items
    ):
        estimate = 1.0  # a flat aggregate always emits exactly one row
    result = int(round(estimate))
    if query.offset is not None:
        result = max(0, result - query.offset)
    if query.limit is not None:
        result = min(result, query.limit)
    return result


# ---------------------------------------------------------------------------
# metrics probes: pull-based, so the scan counters stay plain integers
# ---------------------------------------------------------------------------

from repro.obs.metrics import registry as _registry  # noqa: E402

_registry.probe("engine.vectorized.flat", lambda: stats.flat)
_registry.probe("engine.vectorized.grouped", lambda: stats.grouped)
_registry.probe("engine.vectorized.partial", lambda: stats.partial)
_registry.probe("engine.vectorized.typed", lambda: stats.typed)
_registry.probe("engine.vectorized.bails", lambda: dict(stats.bails))
