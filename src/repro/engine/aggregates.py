"""Aggregate function implementations.

The paper's running example uses ``AVG``, ``SUM`` and the SQL:2003 linear
regression aggregates (``regr_intercept``); the full set below covers the
aggregates an activity-recognition workload typically needs.

**Exact, order-independent arithmetic.**  ``SUM``/``AVG`` accumulate floats
as exact Shewchuk expansions (the algorithm behind :func:`math.fsum`) and
integers as exact int sums; the ``STDDEV``/``VARIANCE`` family keeps exact
rational moments ``(n, Σx, Σx²)``.  Exactness is what makes these
aggregates *decomposable*: partial states computed over disjoint partitions
of the input merge into bit-for-bit the same result as one pass over the
whole input, regardless of how the partitions are split or combined.  The
distributed runtime relies on this to push partial aggregation to the
sensor leaves (see :mod:`repro.runtime.dag`).

**Partial-state protocol.**  Decomposable accumulators implement
``partial()`` (export a mergeable state), ``merge(state)`` (absorb another
accumulator's partial state) and ``finalize()`` (alias of ``result()``).
``DISTINCT`` aggregates, ``MEDIAN`` and the two-argument regression family
are *not* decomposable — they buffer their inputs and only support the
plain ``add``/``result`` interface.
"""

from __future__ import annotations

import math
import statistics
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.columns import TypedColumn
from repro.engine.errors import ExecutionError


def _numeric(values: Sequence[Any]) -> List[float]:
    return [float(v) for v in values if v is not None]


def _grow_expansion(partials: List[float], value: float) -> None:
    """Add a *finite* ``value`` to a non-overlapping float expansion, exactly.

    Shewchuk's grow-expansion step (the core of ``math.fsum``): after the
    call, ``partials`` represents the exact real-number sum of everything
    added so far.  ``math.fsum(partials)`` rounds that exact sum once, so
    the result is independent of the order (and grouping) of additions.
    Callers route non-finite values through :class:`_SpecialValues`
    instead; a sum of finite inputs that exceeds the float range raises
    the same ``OverflowError`` :func:`math.fsum` raises.
    """
    i = 0
    x = value
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    if math.isinf(x):
        raise OverflowError("intermediate overflow in fsum")
    partials[i:] = [x]


class _SpecialValues:
    """Presence flags for non-finite float inputs (``inf``/``-inf``/``nan``).

    ``math.fsum``'s result over special values depends only on which kinds
    appear, so three booleans losslessly summarize any number of them.
    ``as_values()`` reconstructs representatives that, appended to the
    finite expansion, make ``math.fsum`` reproduce the batch result —
    including its ``ValueError`` on mixed ``-inf + inf``.
    """

    __slots__ = ("pos_inf", "neg_inf", "nan")

    def __init__(self, pos_inf: bool = False, neg_inf: bool = False, nan: bool = False) -> None:
        self.pos_inf = pos_inf
        self.neg_inf = neg_inf
        self.nan = nan

    def add(self, value: float) -> None:
        if math.isnan(value):
            self.nan = True
        elif value > 0:
            self.pos_inf = True
        else:
            self.neg_inf = True

    def state(self) -> Tuple[bool, bool, bool]:
        return (self.pos_inf, self.neg_inf, self.nan)

    def merge(self, state: Tuple[bool, bool, bool]) -> None:
        self.pos_inf = self.pos_inf or state[0]
        self.neg_inf = self.neg_inf or state[1]
        self.nan = self.nan or state[2]

    def as_values(self) -> List[float]:
        values: List[float] = []
        if self.pos_inf:
            values.append(math.inf)
        if self.neg_inf:
            values.append(-math.inf)
        if self.nan:
            values.append(math.nan)
        return values


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _exact_moments(numbers: Sequence[float]) -> Tuple[int, Fraction, Fraction]:
    """Exact ``(n, Σx, Σx²)`` of float inputs, as rationals."""
    n = 0
    sx = Fraction(0)
    sxx = Fraction(0)
    for number in numbers:
        frac = Fraction(number)
        n += 1
        sx += frac
        sxx += frac * frac
    return n, sx, sxx


def _moments_mss(n: int, sx: Fraction, sxx: Fraction, sample: bool) -> Optional[Fraction]:
    """Mean-square deviation ``Σ(x-μ)²/d`` from exact moments (or None)."""
    if sample:
        if n < 2:
            return None
        denominator = n - 1
    else:
        if n < 1:
            return None
        denominator = n
    return (sxx - sx * sx / n) / denominator


def _sqrt_of_fraction(value: Fraction) -> float:
    """Correctly rounded square root of an exact non-negative rational."""
    try:
        return statistics._float_sqrt_of_frac(value.numerator, value.denominator)
    except AttributeError:  # pragma: no cover - older Python fallback
        return math.sqrt(float(value))


def _agg_count(values: Sequence[Any]) -> int:
    return sum(1 for v in values if v is not None)


def _agg_count_star(values: Sequence[Any]) -> int:
    return len(values)


def _agg_sum(values: Sequence[Any]) -> Any:
    present = [v for v in values if v is not None]
    if not present:
        return None
    if all(_is_int(v) for v in present):
        # Exact int sum: no float round-trip, so values beyond 2**53 keep
        # full precision (Python ints are arbitrary precision).
        return sum(present)
    return math.fsum(float(v) for v in present)


def _agg_avg(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    if not numbers:
        return None
    return math.fsum(numbers) / len(numbers)


def _agg_min(values: Sequence[Any]) -> Any:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _agg_max(values: Sequence[Any]) -> Any:
    present = [v for v in values if v is not None]
    return max(present) if present else None


def _agg_median(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    return statistics.median(numbers) if numbers else None


def _agg_stddev_samp(values: Sequence[Any]) -> Any:
    mss = _moments_mss(*_exact_moments(_numeric(values)), sample=True)
    return None if mss is None else _sqrt_of_fraction(mss)


def _agg_stddev_pop(values: Sequence[Any]) -> Any:
    mss = _moments_mss(*_exact_moments(_numeric(values)), sample=False)
    return None if mss is None else _sqrt_of_fraction(mss)


def _agg_var_samp(values: Sequence[Any]) -> Any:
    mss = _moments_mss(*_exact_moments(_numeric(values)), sample=True)
    return None if mss is None else float(mss)


def _agg_var_pop(values: Sequence[Any]) -> Any:
    mss = _moments_mss(*_exact_moments(_numeric(values)), sample=False)
    return None if mss is None else float(mss)


#: Single-argument aggregates.
SIMPLE_AGGREGATES: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "COUNT": _agg_count,
    "SUM": _agg_sum,
    "AVG": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
    "MEDIAN": _agg_median,
    "STDDEV": _agg_stddev_samp,
    "STDDEV_SAMP": _agg_stddev_samp,
    "STDDEV_POP": _agg_stddev_pop,
    "VARIANCE": _agg_var_samp,
    "VAR_SAMP": _agg_var_samp,
    "VAR_POP": _agg_var_pop,
}


def _regression_pairs(ys: Sequence[Any], xs: Sequence[Any]) -> List[Tuple[float, float]]:
    pairs = []
    for y, x in zip(ys, xs):
        if y is None or x is None:
            continue
        pairs.append((float(y), float(x)))
    return pairs


def _regr_slope(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    sxx = sum((x - mean_x) ** 2 for _, x in pairs)
    if sxx == 0:
        return None
    sxy = sum((x - mean_x) * (y - mean_y) for y, x in pairs)
    return sxy / sxx


def _regr_intercept(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    """SQL:2003 ``REGR_INTERCEPT(y, x)``: intercept of the least-squares fit."""
    slope = _regr_slope(ys, xs)
    if slope is None:
        return None
    pairs = _regression_pairs(ys, xs)
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    return mean_y - slope * mean_x


def _regr_count(ys: Sequence[Any], xs: Sequence[Any]) -> int:
    return len(_regression_pairs(ys, xs))


def _regr_r2(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    corr = _corr(ys, xs)
    if corr is None:
        syy = sum((y - sum(p[0] for p in pairs) / len(pairs)) ** 2 for y, _ in pairs)
        return 1.0 if syy == 0 else None
    return corr * corr


def _corr(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    sxx = sum((x - mean_x) ** 2 for _, x in pairs)
    syy = sum((y - mean_y) ** 2 for y, _ in pairs)
    if sxx == 0 or syy == 0:
        return None
    sxy = sum((x - mean_x) * (y - mean_y) for y, x in pairs)
    return sxy / math.sqrt(sxx * syy)


def _covar_pop(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if not pairs:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    return sum((x - mean_x) * (y - mean_y) for y, x in pairs) / len(pairs)


def _covar_samp(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    return sum((x - mean_x) * (y - mean_y) for y, x in pairs) / (len(pairs) - 1)


#: Two-argument aggregates (SQL:2003 regression family).
BINARY_AGGREGATES: Dict[str, Callable[[Sequence[Any], Sequence[Any]], Any]] = {
    "REGR_SLOPE": _regr_slope,
    "REGR_INTERCEPT": _regr_intercept,
    "REGR_COUNT": _regr_count,
    "REGR_R2": _regr_r2,
    "CORR": _corr,
    "COVAR_POP": _covar_pop,
    "COVAR_SAMP": _covar_samp,
}


def compute_aggregate(
    name: str, argument_values: Sequence[Sequence[Any]], is_star: bool = False, distinct: bool = False
) -> Any:
    """Compute the aggregate ``name`` over per-row argument value lists.

    Args:
        name: Aggregate function name (case-insensitive).
        argument_values: One sequence per argument; each sequence holds the
            evaluated argument for every row of the group.
        is_star: True for ``COUNT(*)``.
        distinct: True for ``agg(DISTINCT expr)``.
    """
    upper = name.upper()
    if upper == "COUNT" and is_star:
        return _agg_count_star(argument_values[0] if argument_values else [])
    if upper in SIMPLE_AGGREGATES:
        if not argument_values:
            raise ExecutionError(f"{upper} requires one argument")
        values = list(argument_values[0])
        if distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        return SIMPLE_AGGREGATES[upper](values)
    if upper in BINARY_AGGREGATES:
        if len(argument_values) != 2:
            raise ExecutionError(f"{upper} requires two arguments")
        return BINARY_AGGREGATES[upper](argument_values[0], argument_values[1])
    raise ExecutionError(f"Unknown aggregate function: {name}")


def is_known_aggregate(name: str) -> bool:
    """Return True when ``name`` is a supported aggregate."""
    upper = name.upper()
    return upper in SIMPLE_AGGREGATES or upper in BINARY_AGGREGATES or upper == "COUNT"


# ---------------------------------------------------------------------------
# incremental accumulators
# ---------------------------------------------------------------------------
#
# The compiled execution path feeds rows through accumulators one at a time
# (single-pass GROUP BY, running window frames) instead of materialising the
# per-group value lists first.  Incremental implementations exist for the
# aggregates whose streaming update reproduces the batch result bit for bit;
# everything else (DISTINCT, MEDIAN, the regression family, ...) buffers its
# inputs and delegates to :func:`compute_aggregate` at emit time, so both
# accumulator kinds return exactly what the batch functions return.
#
# Incremental accumulators additionally implement the mergeable
# partial-state protocol: ``partial()`` exports the accumulator's state,
# ``merge(state)`` absorbs a state computed over another partition of the
# input, and ``finalize()`` (an alias of ``result()``) produces the final
# value.  Because the underlying arithmetic is exact, any split of the
# input into partial states merges into the same result as one pass.
#
# The vectorized scan paths (:mod:`repro.engine.vectorized`) feed column
# slices instead of per-row tuples: ``add_many(values)`` consumes a
# sequence of raw argument values (no tuple boxing) and ``add_many_star(n)``
# accounts ``n`` star rows.  Both are exact bulk equivalents of repeated
# ``add`` calls in the same order, so the fast path reproduces the
# row-at-a-time result bit for bit.


class CountStarAccumulator:
    """``COUNT(*)``: counts every row.  Partial state: the count."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, values: Tuple[Any, ...]) -> None:
        self.count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        self.count += len(values)

    def add_many_star(self, count: int) -> None:
        self.count += count

    def result(self) -> int:
        return self.count

    def partial(self) -> int:
        return self.count

    def merge(self, state: int) -> None:
        self.count += state

    def finalize(self) -> int:
        return self.result()


class CountAccumulator:
    """``COUNT(expr)``: counts non-NULL values.  Partial state: the count."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, values: Tuple[Any, ...]) -> None:
        if values[0] is not None:
            self.count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        if isinstance(values, TypedColumn):
            # O(1): the typed backing tracks its NULL count.
            self.count += len(values) - values.null_count
        elif isinstance(values, list):
            self.count += len(values) - values.count(None)
        else:
            self.count += sum(1 for value in values if value is not None)

    def result(self) -> int:
        return self.count

    def partial(self) -> int:
        return self.count

    def merge(self, state: int) -> None:
        self.count += state

    def finalize(self) -> int:
        return self.result()


class SumAccumulator:
    """``SUM(expr)`` with exact int and exact (fsum) float accumulation.

    Tracks two exact representations side by side: an arbitrary-precision
    int total of the int inputs (the result while *all* inputs are ints)
    and a float expansion of ``float(v)`` per input (the result once any
    float appears, matching the batch function's per-value conversion).
    Non-finite floats are tracked as presence flags and ints too large
    for float as an overflow flag, so mixed-type edge cases reproduce the
    batch function's value *and* error behaviour exactly.  Partial state:
    ``(int_total, float_expansion, present, all_int, specials, int_overflow)``.
    """

    __slots__ = (
        "int_total", "float_parts", "present", "all_int", "specials", "int_overflow"
    )

    def __init__(self) -> None:
        self.int_total = 0
        self.float_parts: List[float] = []
        self.present = False
        self.all_int = True
        self.specials = _SpecialValues()
        self.int_overflow = False

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        self.present = True
        if _is_int(value):
            self.int_total += value
            # The float image only matters if a float shows up later; an
            # int beyond float range must not fail the exact all-int path.
            try:
                as_float = float(value)
            except OverflowError:
                self.int_overflow = True
                return
        else:
            self.all_int = False
            as_float = float(value)
        if math.isfinite(as_float):
            _grow_expansion(self.float_parts, as_float)
        else:
            self.specials.add(as_float)

    def add_many(self, values: Sequence[Any]) -> None:
        for value in values:
            if value is None:
                continue
            self.present = True
            if _is_int(value):
                self.int_total += value
                try:
                    as_float = float(value)
                except OverflowError:
                    self.int_overflow = True
                    continue
            else:
                self.all_int = False
                as_float = float(value)
            if math.isfinite(as_float):
                _grow_expansion(self.float_parts, as_float)
            else:
                self.specials.add(as_float)

    def result(self) -> Any:
        if not self.present:
            return None
        if self.all_int:
            return self.int_total
        if self.int_overflow:
            # The batch path hits float(huge_int) inside fsum and raises.
            raise OverflowError("int too large to convert to float")
        return math.fsum(tuple(self.float_parts) + tuple(self.specials.as_values()))

    def partial(self) -> Tuple[int, Tuple[float, ...], bool, bool, Tuple[bool, bool, bool], bool]:
        return (
            self.int_total,
            tuple(self.float_parts),
            self.present,
            self.all_int,
            self.specials.state(),
            self.int_overflow,
        )

    def merge(
        self,
        state: Tuple[int, Tuple[float, ...], bool, bool, Tuple[bool, bool, bool], bool],
    ) -> None:
        int_total, float_parts, present, all_int, specials, int_overflow = state
        self.int_total += int_total
        for component in float_parts:
            _grow_expansion(self.float_parts, component)
        self.present = self.present or present
        self.all_int = self.all_int and all_int
        self.specials.merge(specials)
        self.int_overflow = self.int_overflow or int_overflow

    def finalize(self) -> Any:
        return self.result()


class AvgAccumulator:
    """``AVG(expr)``: exact float sum (fsum expansion) and count.

    Non-finite inputs are tracked as presence flags (see
    :class:`_SpecialValues`).  Partial state:
    ``(float_expansion, count, specials)``.
    """

    __slots__ = ("float_parts", "count", "specials")

    def __init__(self) -> None:
        self.float_parts: List[float] = []
        self.count = 0
        self.specials = _SpecialValues()

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        as_float = float(value)
        if math.isfinite(as_float):
            _grow_expansion(self.float_parts, as_float)
        else:
            self.specials.add(as_float)
        self.count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        for value in values:
            if value is None:
                continue
            as_float = float(value)
            if math.isfinite(as_float):
                _grow_expansion(self.float_parts, as_float)
            else:
                self.specials.add(as_float)
            self.count += 1

    def result(self) -> Any:
        if not self.count:
            return None
        total = math.fsum(tuple(self.float_parts) + tuple(self.specials.as_values()))
        return total / self.count

    def partial(self) -> Tuple[Tuple[float, ...], int, Tuple[bool, bool, bool]]:
        return (tuple(self.float_parts), self.count, self.specials.state())

    def merge(self, state: Tuple[Tuple[float, ...], int, Tuple[bool, bool, bool]]) -> None:
        float_parts, count, specials = state
        for component in float_parts:
            _grow_expansion(self.float_parts, component)
        self.count += count
        self.specials.merge(specials)

    def finalize(self) -> Any:
        return self.result()


class MinAccumulator:
    """``MIN(expr)``: keeps the first minimal non-NULL value.

    Partial state: ``(present, best)``; merging in partition order keeps
    the earliest partition's value on ties, like one left-to-right pass.
    """

    __slots__ = ("best", "present")

    def __init__(self) -> None:
        self.best: Any = None
        self.present = False

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        if not self.present:
            self.best = value
            self.present = True
        elif value < self.best:
            self.best = value

    def add_many(self, values: Sequence[Any]) -> None:
        for value in values:
            if value is None:
                continue
            if not self.present:
                self.best = value
                self.present = True
            elif value < self.best:
                self.best = value

    def result(self) -> Any:
        return self.best if self.present else None

    def partial(self) -> Tuple[bool, Any]:
        return (self.present, self.best)

    def merge(self, state: Tuple[bool, Any]) -> None:
        present, best = state
        if present:
            self.add((best,))

    def finalize(self) -> Any:
        return self.result()


class MaxAccumulator:
    """``MAX(expr)``: keeps the first maximal non-NULL value.

    Partial state: ``(present, best)``.
    """

    __slots__ = ("best", "present")

    def __init__(self) -> None:
        self.best: Any = None
        self.present = False

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        if not self.present:
            self.best = value
            self.present = True
        elif value > self.best:
            self.best = value

    def add_many(self, values: Sequence[Any]) -> None:
        for value in values:
            if value is None:
                continue
            if not self.present:
                self.best = value
                self.present = True
            elif value > self.best:
                self.best = value

    def result(self) -> Any:
        return self.best if self.present else None

    def partial(self) -> Tuple[bool, Any]:
        return (self.present, self.best)

    def merge(self, state: Tuple[bool, Any]) -> None:
        present, best = state
        if present:
            self.add((best,))

    def finalize(self) -> Any:
        return self.result()


class StatAccumulator:
    """``STDDEV``/``VARIANCE`` family via exact rational moments.

    Keeps ``(n, Σx, Σx²)`` as exact :class:`~fractions.Fraction` values of
    the float-converted inputs, so the mean-square deviation is computed
    without rounding until the single final conversion — bit-identical to
    the batch functions and independent of input order or partitioning.
    Partial state: ``(n, Σx, Σx²)``.
    """

    __slots__ = ("sample", "take_sqrt", "n", "sx", "sxx")

    #: name -> (sample statistics?, take the square root?)
    _KINDS = {
        "STDDEV": (True, True),
        "STDDEV_SAMP": (True, True),
        "STDDEV_POP": (False, True),
        "VARIANCE": (True, False),
        "VAR_SAMP": (True, False),
        "VAR_POP": (False, False),
    }

    def __init__(self, name: str) -> None:
        self.sample, self.take_sqrt = self._KINDS[name.upper()]
        self.n = 0
        self.sx = Fraction(0)
        self.sxx = Fraction(0)

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        frac = Fraction(float(value))
        self.n += 1
        self.sx += frac
        self.sxx += frac * frac

    def add_many(self, values: Sequence[Any]) -> None:
        for value in values:
            if value is None:
                continue
            frac = Fraction(float(value))
            self.n += 1
            self.sx += frac
            self.sxx += frac * frac

    def result(self) -> Any:
        mss = _moments_mss(self.n, self.sx, self.sxx, sample=self.sample)
        if mss is None:
            return None
        return _sqrt_of_fraction(mss) if self.take_sqrt else float(mss)

    def partial(self) -> Tuple[int, Fraction, Fraction]:
        return (self.n, self.sx, self.sxx)

    def merge(self, state: Tuple[int, Fraction, Fraction]) -> None:
        n, sx, sxx = state
        self.n += n
        self.sx += sx
        self.sxx += sxx

    def finalize(self) -> Any:
        return self.result()


class BufferAccumulator:
    """Fallback accumulator: buffer rows, compute via the batch function.

    Produces results identical to the interpreted path for every aggregate,
    including ``DISTINCT`` handling and the two-argument regression family.
    """

    __slots__ = ("name", "is_star", "distinct", "width", "rows")

    def __init__(self, name: str, *, is_star: bool, distinct: bool, width: int) -> None:
        self.name = name
        self.is_star = is_star
        self.distinct = distinct
        self.width = max(width, 1)
        self.rows: List[Tuple[Any, ...]] = []

    def add(self, values: Tuple[Any, ...]) -> None:
        self.rows.append(values)

    def add_many(self, values: Sequence[Any]) -> None:
        self.rows.extend((value,) for value in values)

    def add_many_star(self, count: int) -> None:
        self.rows.extend([(1,)] * count)

    def result(self) -> Any:
        if self.rows:
            columns = [list(column) for column in zip(*self.rows)]
        else:
            columns = [[] for _ in range(self.width)]
        return compute_aggregate(
            self.name, columns, is_star=self.is_star, distinct=self.distinct
        )


_INCREMENTAL_ACCUMULATORS: Dict[str, Callable[[], Any]] = {
    "COUNT": CountAccumulator,
    "SUM": SumAccumulator,
    "AVG": AvgAccumulator,
    "MIN": MinAccumulator,
    "MAX": MaxAccumulator,
}
for _name in StatAccumulator._KINDS:
    _INCREMENTAL_ACCUMULATORS[_name] = (
        lambda _name=_name: StatAccumulator(_name)
    )
del _name

#: Aggregates whose accumulators support the partial-state protocol
#: (``partial()``/``merge()``/``finalize()``).  ``DISTINCT`` variants,
#: multi-argument aggregates and ``MEDIAN`` are excluded.
DECOMPOSABLE_AGGREGATES = frozenset(_INCREMENTAL_ACCUMULATORS)


def is_decomposable_aggregate(
    name: str, *, is_star: bool = False, distinct: bool = False, arg_count: int = 1
) -> bool:
    """True when :func:`make_accumulator` returns a mergeable accumulator.

    Mirrors the dispatch conditions of :func:`make_accumulator` exactly, so
    decomposability analysis and execution can never disagree.
    """
    upper = name.upper()
    if upper == "COUNT" and is_star:
        return True
    return (
        not distinct
        and arg_count == 1
        and not is_star
        and upper in DECOMPOSABLE_AGGREGATES
    )


def make_accumulator(name: str, *, is_star: bool, distinct: bool, arg_count: int) -> Any:
    """Return an accumulator replicating ``compute_aggregate`` incrementally.

    Args:
        name: Aggregate function name (case-insensitive).
        is_star: True for ``COUNT(*)`` (callers feed ``(1,)`` per row).
        distinct: True for ``agg(DISTINCT expr)``.
        arg_count: Number of value columns fed per row (1 for star/no-arg).
    """
    upper = name.upper()
    if upper == "COUNT" and is_star:
        # compute_aggregate short-circuits COUNT(*) before DISTINCT handling.
        return CountStarAccumulator()
    if not distinct and arg_count == 1 and not is_star and upper in _INCREMENTAL_ACCUMULATORS:
        return _INCREMENTAL_ACCUMULATORS[upper]()
    return BufferAccumulator(upper, is_star=is_star, distinct=distinct, width=arg_count)
