"""Aggregate function implementations.

The paper's running example uses ``AVG``, ``SUM`` and the SQL:2003 linear
regression aggregates (``regr_intercept``); the full set below covers the
aggregates an activity-recognition workload typically needs.
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.engine.errors import ExecutionError


def _numeric(values: Sequence[Any]) -> List[float]:
    return [float(v) for v in values if v is not None]


def _agg_count(values: Sequence[Any]) -> int:
    return sum(1 for v in values if v is not None)


def _agg_count_star(values: Sequence[Any]) -> int:
    return len(values)


def _agg_sum(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    if not numbers:
        return None
    total = sum(numbers)
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values if v is not None):
        return int(total)
    return total


def _agg_avg(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def _agg_min(values: Sequence[Any]) -> Any:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _agg_max(values: Sequence[Any]) -> Any:
    present = [v for v in values if v is not None]
    return max(present) if present else None


def _agg_median(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    return statistics.median(numbers) if numbers else None


def _agg_stddev_samp(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    if len(numbers) < 2:
        return None
    return statistics.stdev(numbers)


def _agg_stddev_pop(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    if not numbers:
        return None
    return statistics.pstdev(numbers)


def _agg_var_samp(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    if len(numbers) < 2:
        return None
    return statistics.variance(numbers)


def _agg_var_pop(values: Sequence[Any]) -> Any:
    numbers = _numeric(values)
    if not numbers:
        return None
    return statistics.pvariance(numbers)


#: Single-argument aggregates.
SIMPLE_AGGREGATES: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "COUNT": _agg_count,
    "SUM": _agg_sum,
    "AVG": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
    "MEDIAN": _agg_median,
    "STDDEV": _agg_stddev_samp,
    "STDDEV_SAMP": _agg_stddev_samp,
    "STDDEV_POP": _agg_stddev_pop,
    "VARIANCE": _agg_var_samp,
    "VAR_SAMP": _agg_var_samp,
    "VAR_POP": _agg_var_pop,
}


def _regression_pairs(ys: Sequence[Any], xs: Sequence[Any]) -> List[Tuple[float, float]]:
    pairs = []
    for y, x in zip(ys, xs):
        if y is None or x is None:
            continue
        pairs.append((float(y), float(x)))
    return pairs


def _regr_slope(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    sxx = sum((x - mean_x) ** 2 for _, x in pairs)
    if sxx == 0:
        return None
    sxy = sum((x - mean_x) * (y - mean_y) for y, x in pairs)
    return sxy / sxx


def _regr_intercept(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    """SQL:2003 ``REGR_INTERCEPT(y, x)``: intercept of the least-squares fit."""
    slope = _regr_slope(ys, xs)
    if slope is None:
        return None
    pairs = _regression_pairs(ys, xs)
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    return mean_y - slope * mean_x


def _regr_count(ys: Sequence[Any], xs: Sequence[Any]) -> int:
    return len(_regression_pairs(ys, xs))


def _regr_r2(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    corr = _corr(ys, xs)
    if corr is None:
        syy = sum((y - sum(p[0] for p in pairs) / len(pairs)) ** 2 for y, _ in pairs)
        return 1.0 if syy == 0 else None
    return corr * corr


def _corr(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    sxx = sum((x - mean_x) ** 2 for _, x in pairs)
    syy = sum((y - mean_y) ** 2 for y, _ in pairs)
    if sxx == 0 or syy == 0:
        return None
    sxy = sum((x - mean_x) * (y - mean_y) for y, x in pairs)
    return sxy / math.sqrt(sxx * syy)


def _covar_pop(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if not pairs:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    return sum((x - mean_x) * (y - mean_y) for y, x in pairs) / len(pairs)


def _covar_samp(ys: Sequence[Any], xs: Sequence[Any]) -> Any:
    pairs = _regression_pairs(ys, xs)
    if len(pairs) < 2:
        return None
    mean_x = sum(x for _, x in pairs) / len(pairs)
    mean_y = sum(y for y, _ in pairs) / len(pairs)
    return sum((x - mean_x) * (y - mean_y) for y, x in pairs) / (len(pairs) - 1)


#: Two-argument aggregates (SQL:2003 regression family).
BINARY_AGGREGATES: Dict[str, Callable[[Sequence[Any], Sequence[Any]], Any]] = {
    "REGR_SLOPE": _regr_slope,
    "REGR_INTERCEPT": _regr_intercept,
    "REGR_COUNT": _regr_count,
    "REGR_R2": _regr_r2,
    "CORR": _corr,
    "COVAR_POP": _covar_pop,
    "COVAR_SAMP": _covar_samp,
}


def compute_aggregate(
    name: str, argument_values: Sequence[Sequence[Any]], is_star: bool = False, distinct: bool = False
) -> Any:
    """Compute the aggregate ``name`` over per-row argument value lists.

    Args:
        name: Aggregate function name (case-insensitive).
        argument_values: One sequence per argument; each sequence holds the
            evaluated argument for every row of the group.
        is_star: True for ``COUNT(*)``.
        distinct: True for ``agg(DISTINCT expr)``.
    """
    upper = name.upper()
    if upper == "COUNT" and is_star:
        return _agg_count_star(argument_values[0] if argument_values else [])
    if upper in SIMPLE_AGGREGATES:
        if not argument_values:
            raise ExecutionError(f"{upper} requires one argument")
        values = list(argument_values[0])
        if distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        return SIMPLE_AGGREGATES[upper](values)
    if upper in BINARY_AGGREGATES:
        if len(argument_values) != 2:
            raise ExecutionError(f"{upper} requires two arguments")
        return BINARY_AGGREGATES[upper](argument_values[0], argument_values[1])
    raise ExecutionError(f"Unknown aggregate function: {name}")


def is_known_aggregate(name: str) -> bool:
    """Return True when ``name`` is a supported aggregate."""
    upper = name.upper()
    return upper in SIMPLE_AGGREGATES or upper in BINARY_AGGREGATES or upper == "COUNT"


# ---------------------------------------------------------------------------
# incremental accumulators
# ---------------------------------------------------------------------------
#
# The compiled execution path feeds rows through accumulators one at a time
# (single-pass GROUP BY, running window frames) instead of materialising the
# per-group value lists first.  Incremental implementations exist for the
# aggregates whose streaming update reproduces the batch result bit for bit;
# everything else (DISTINCT, MEDIAN, the regression family, ...) buffers its
# inputs and delegates to :func:`compute_aggregate` at emit time, so both
# accumulator kinds return exactly what the batch functions return.


class CountStarAccumulator:
    """``COUNT(*)``: counts every row."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, values: Tuple[Any, ...]) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class CountAccumulator:
    """``COUNT(expr)``: counts non-NULL values."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, values: Tuple[Any, ...]) -> None:
        if values[0] is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class SumAccumulator:
    """``SUM(expr)`` with the batch function's int-preserving behaviour."""

    __slots__ = ("total", "present", "all_int")

    def __init__(self) -> None:
        self.total = 0.0
        self.present = False
        self.all_int = True

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        self.present = True
        self.total += float(value)
        if self.all_int and not (isinstance(value, int) and not isinstance(value, bool)):
            self.all_int = False

    def result(self) -> Any:
        if not self.present:
            return None
        return int(self.total) if self.all_int else self.total


class AvgAccumulator:
    """``AVG(expr)``: running float sum and count."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        self.total += float(value)
        self.count += 1

    def result(self) -> Any:
        if not self.count:
            return None
        return self.total / self.count


class MinAccumulator:
    """``MIN(expr)``: keeps the first minimal non-NULL value."""

    __slots__ = ("best", "present")

    def __init__(self) -> None:
        self.best: Any = None
        self.present = False

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        if not self.present:
            self.best = value
            self.present = True
        elif value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best if self.present else None


class MaxAccumulator:
    """``MAX(expr)``: keeps the first maximal non-NULL value."""

    __slots__ = ("best", "present")

    def __init__(self) -> None:
        self.best: Any = None
        self.present = False

    def add(self, values: Tuple[Any, ...]) -> None:
        value = values[0]
        if value is None:
            return
        if not self.present:
            self.best = value
            self.present = True
        elif value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best if self.present else None


class BufferAccumulator:
    """Fallback accumulator: buffer rows, compute via the batch function.

    Produces results identical to the interpreted path for every aggregate,
    including ``DISTINCT`` handling and the two-argument regression family.
    """

    __slots__ = ("name", "is_star", "distinct", "width", "rows")

    def __init__(self, name: str, *, is_star: bool, distinct: bool, width: int) -> None:
        self.name = name
        self.is_star = is_star
        self.distinct = distinct
        self.width = max(width, 1)
        self.rows: List[Tuple[Any, ...]] = []

    def add(self, values: Tuple[Any, ...]) -> None:
        self.rows.append(values)

    def result(self) -> Any:
        if self.rows:
            columns = [list(column) for column in zip(*self.rows)]
        else:
            columns = [[] for _ in range(self.width)]
        return compute_aggregate(
            self.name, columns, is_star=self.is_star, distinct=self.distinct
        )


_INCREMENTAL_ACCUMULATORS: Dict[str, Callable[[], Any]] = {
    "COUNT": CountAccumulator,
    "SUM": SumAccumulator,
    "AVG": AvgAccumulator,
    "MIN": MinAccumulator,
    "MAX": MaxAccumulator,
}


def make_accumulator(name: str, *, is_star: bool, distinct: bool, arg_count: int) -> Any:
    """Return an accumulator replicating ``compute_aggregate`` incrementally.

    Args:
        name: Aggregate function name (case-insensitive).
        is_star: True for ``COUNT(*)`` (callers feed ``(1,)`` per row).
        distinct: True for ``agg(DISTINCT expr)``.
        arg_count: Number of value columns fed per row (1 for star/no-arg).
    """
    upper = name.upper()
    if upper == "COUNT" and is_star:
        # compute_aggregate short-circuits COUNT(*) before DISTINCT handling.
        return CountStarAccumulator()
    if not distinct and arg_count == 1 and not is_star and upper in _INCREMENTAL_ACCUMULATORS:
        return _INCREMENTAL_ACCUMULATORS[upper]()
    return BufferAccumulator(upper, is_star=is_star, distinct=distinct, width=arg_count)
