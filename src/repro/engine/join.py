"""Hash-based join operators for the compiled execution path.

The interpreted executor joins with a nested loop: every (left, right) scope
pair is merged into a fresh dict and the full ON condition is re-evaluated —
O(n·m) dict merges and expression tree walks.  When the join condition (or a
conjunct of it) is an equality between a left-only and a right-only
expression, the executor instead builds a hash table over the right side and
probes it with the left side, evaluating only a residual predicate (if any)
per surviving pair.

NULL semantics follow the interpreted oracle exactly:

* ``ON a = b`` never matches NULL keys (``NULL = NULL`` is NULL, which the
  predicate treats as false) — key callables signal this by returning None.
* ``USING (c)`` compares with Python ``==`` where ``None == None`` holds, so
  USING key callables return tuples that may contain None, and the hash table
  matches them.

Keys that are not hashable (lists, dicts) raise :class:`UnhashableJoinKey`;
the executor catches it and falls back to the nested loop.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.sql import ast

Scope = Dict[str, Any]

#: Evaluates the join key of one scope; None means "cannot match anything".
KeyFunction = Callable[[Scope], Optional[Tuple[Any, ...]]]


class UnhashableJoinKey(TypeError):
    """Raised when a join key value cannot be hashed (fallback to nested loop)."""


# ---------------------------------------------------------------------------
# equi-key extraction
# ---------------------------------------------------------------------------


class EquiKeyPlan:
    """Outcome of analysing a join condition for hash-joinability.

    Attributes:
        left_exprs: Key expressions evaluated against left-side scopes.
        right_exprs: Key expressions evaluated against right-side scopes,
            positionally aligned with ``left_exprs``.
        residual: Conjunction of the condition terms that are not equi-keys
            (None when every term became a key).
    """

    __slots__ = ("left_exprs", "right_exprs", "residual")

    def __init__(
        self,
        left_exprs: List[ast.Expression],
        right_exprs: List[ast.Expression],
        residual: Optional[ast.Expression],
    ) -> None:
        self.left_exprs = left_exprs
        self.right_exprs = right_exprs
        self.residual = residual


def extract_equi_keys(
    condition: ast.Expression,
    left_keys: Set[str],
    right_keys: Set[str],
) -> Optional[EquiKeyPlan]:
    """Split ``condition`` into hash keys and a residual predicate.

    Args:
        condition: The join's ON condition.
        left_keys: Scope-dict keys available on the left side (lower-cased
            column and ``alias.column`` keys).
        right_keys: Scope-dict keys available on the right side.

    Returns:
        An :class:`EquiKeyPlan` when at least one conjunct is an equality
        between a strictly-left and a strictly-right expression, else None.
    """
    left_exprs: List[ast.Expression] = []
    right_exprs: List[ast.Expression] = []
    residual_terms: List[ast.Expression] = []
    for term in ast.conjunction_terms(condition):
        pair = _equi_pair(term, left_keys, right_keys)
        if pair is None:
            residual_terms.append(term)
        else:
            left_exprs.append(pair[0])
            right_exprs.append(pair[1])
    if not left_exprs:
        return None
    return EquiKeyPlan(left_exprs, right_exprs, ast.conjunction(*residual_terms))


def _equi_pair(
    term: ast.Expression, left_keys: Set[str], right_keys: Set[str]
) -> Optional[Tuple[ast.Expression, ast.Expression]]:
    if not isinstance(term, ast.BinaryOp) or term.operator != "=":
        return None
    left_side = _expression_side(term.left, left_keys, right_keys)
    right_side = _expression_side(term.right, left_keys, right_keys)
    if left_side == "left" and right_side == "right":
        return (term.left, term.right)
    if left_side == "right" and right_side == "left":
        return (term.right, term.left)
    return None


def _expression_side(
    expression: ast.Expression, left_keys: Set[str], right_keys: Set[str]
) -> Optional[str]:
    """Classify which join side ``expression`` reads from (None = unusable)."""
    side: Optional[str] = None
    saw_column = False
    stack: List[ast.Node] = [expression]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, ast.Query):
            return None  # subqueries are never hash keys
        if isinstance(node, ast.FunctionCall) and node.window is not None:
            return None
        if isinstance(node, ast.Column):
            saw_column = True
            column_side = _column_side(node, left_keys, right_keys)
            if column_side is None:
                return None
            if side is None:
                side = column_side
            elif side != column_side:
                return None
        stack.extend(child for child in node.children() if child is not None)
    if not saw_column:
        return None  # constant expressions are filters, not join keys
    return side


def _column_side(
    column: ast.Column, left_keys: Set[str], right_keys: Set[str]
) -> Optional[str]:
    """Which side the evaluator would read this column from in a merged scope.

    Mirrors ``_evaluate_column``: the qualified key wins over the bare name,
    and in a ``{**left, **right}`` merge the right side wins key collisions.
    """
    name = column.name.lower()
    if column.table:
        qualified = f"{column.table.lower()}.{name}"
        if qualified in right_keys:
            return "right"
        if qualified in left_keys:
            return "left"
    if name in right_keys:
        return "right"
    if name in left_keys:
        return "left"
    return None  # resolves from a parent scope (correlated) or not at all


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------


def hash_join(
    left_scopes: Sequence[Scope],
    right_scopes: Sequence[Scope],
    left_key: Optional[KeyFunction],
    right_key: Optional[KeyFunction],
    join_type: str = "INNER",
    residual: Optional[Callable[[Scope], bool]] = None,
    left_null: Optional[Scope] = None,
    right_null: Optional[Scope] = None,
    left_keys: Optional[Sequence[Optional[Tuple[Any, ...]]]] = None,
    right_keys: Optional[Sequence[Optional[Tuple[Any, ...]]]] = None,
    build_side: str = "right",
) -> List[Scope]:
    """Hash equi-join producing merged scopes in nested-loop order.

    Args:
        left_scopes: Probe-side scopes (outer loop of the oracle).
        right_scopes: Build-side scopes.
        left_key: Key extractor for left scopes (None key = matches
            nothing).  May be ``None`` when ``left_keys`` is given.
        right_key: Key extractor for right scopes.
        join_type: INNER | LEFT | RIGHT | FULL.
        residual: Optional predicate over the merged scope for non-equi
            conjuncts of the ON condition.
        left_null: All-None scope used to pad unmatched right rows.
        right_null: All-None scope used to pad unmatched left rows.
        left_keys: Precomputed key tuples aligned with ``left_scopes``.
            When the join side is backed by a columnar relation and the key
            expressions are plain columns, the executor builds these
            straight from the column arrays, skipping per-scope closure
            calls entirely.
        right_keys: Precomputed key tuples aligned with ``right_scopes``.
        build_side: Which side the hash table is built over (``"right"`` or
            ``"left"``).  A physical-only choice: output rows, their order
            and NULL padding are identical either way — the cost-based
            planner picks the smaller estimated side.

    Raises:
        UnhashableJoinKey: When a key value is not hashable.
    """
    combined: List[Scope] = []
    matched_right: Set[int] = set()
    preserve_left = join_type in {"LEFT", "FULL"}
    right_null = right_null or {}
    left_null = left_null or {}
    table: Dict[Tuple[Any, ...], List[int]] = {}

    if build_side == "left":
        # Build over the left side, probe with the right, but buffer the
        # matching right indices per left row so emission stays left-major
        # (identical to the nested-loop order the right-build path yields).
        if left_keys is None:
            assert left_key is not None
            left_keys = [left_key(scope) for scope in left_scopes]
        for index, key in enumerate(left_keys):
            if key is None:
                continue
            try:
                table.setdefault(key, []).append(index)
            except TypeError as exc:
                raise UnhashableJoinKey(str(exc)) from exc
        matches: List[List[int]] = [[] for _ in left_scopes]
        table_get = table.get
        if right_keys is None:
            assert right_key is not None
            right_keys = [right_key(scope) for scope in right_scopes]
        for right_index, key in enumerate(right_keys):
            if key is None:
                continue
            try:
                bucket = table_get(key, ())
            except TypeError as exc:
                raise UnhashableJoinKey(str(exc)) from exc
            for left_index in bucket:
                matches[left_index].append(right_index)
        for left_index, left_scope in enumerate(left_scopes):
            matched = False
            for right_index in matches[left_index]:
                merged = {**left_scope, **right_scopes[right_index]}
                if residual is not None and not residual(merged):
                    continue
                combined.append(merged)
                matched = True
                matched_right.add(right_index)
            if not matched and preserve_left:
                combined.append({**left_scope, **right_null})
        if join_type in {"RIGHT", "FULL"}:
            for right_index, right_scope in enumerate(right_scopes):
                if right_index not in matched_right:
                    combined.append({**left_null, **right_scope})
        return combined

    if right_keys is None:
        assert right_key is not None
        right_keys = [right_key(scope) for scope in right_scopes]
    for index, key in enumerate(right_keys):
        if key is None:
            continue
        try:
            table.setdefault(key, []).append(index)
        except TypeError as exc:
            raise UnhashableJoinKey(str(exc)) from exc

    table_get = table.get
    for left_index, left_scope in enumerate(left_scopes):
        key = left_keys[left_index] if left_keys is not None else left_key(left_scope)
        matched = False
        if key is not None:
            try:
                bucket = table_get(key, ())
            except TypeError as exc:
                raise UnhashableJoinKey(str(exc)) from exc
            for right_index in bucket:
                merged = {**left_scope, **right_scopes[right_index]}
                if residual is not None and not residual(merged):
                    continue
                combined.append(merged)
                matched = True
                matched_right.add(right_index)
        if not matched and preserve_left:
            combined.append({**left_scope, **right_null})

    if join_type in {"RIGHT", "FULL"}:
        for right_index, right_scope in enumerate(right_scopes):
            if right_index not in matched_right:
                combined.append({**left_null, **right_scope})
    return combined


def hash_semi_join(
    scopes: Sequence[Scope],
    probe: Callable[[Scope], Any],
    key_source: Callable[[], Set[Any]],
    negated: bool = False,
) -> List[Scope]:
    """Filter ``scopes`` by (anti-)membership of ``probe`` in a key set.

    This is the executor's fast path for uncorrelated ``expr [NOT] IN
    (SELECT ...)`` WHERE conjuncts: the subquery runs once (``key_source`` is
    invoked lazily on the first non-NULL probe) and every row pays one hash
    lookup.  NULL probes never qualify, matching the oracle where a NULL
    membership test yields NULL.
    """
    keys: Optional[Set[Any]] = None
    result: List[Scope] = []
    for scope in scopes:
        value = probe(scope)
        if value is None:
            continue
        if keys is None:
            keys = key_source()
        if (value in keys) != negated:
            result.append(scope)
    return result
