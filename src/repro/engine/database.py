"""The per-node database façade.

A :class:`Database` couples a named catalog of relations with the parser and
executor, offering the small API the rest of the reproduction relies on:
``create_table`` / ``insert_rows`` / ``register`` / ``query``.

Every node of the vertical architecture (cloud, PC, appliance, sensor) carries
its own :class:`Database`; the PArADISE processor registers shipped
intermediate results under the fragment names (``d1``, ``d2``, ...) exactly
like the staged queries in Section 4.2 of the paper.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.executor import QueryExecutor, default_execution_mode
from repro.engine.schema import Schema
from repro.engine.table import Relation
from repro.sql import ast
from repro.sql.parser import parse


class Database:
    """A named collection of relations with a SQL query interface.

    Each database models one node of the vertical architecture, so a
    re-entrant lock serializes catalog mutations and query execution per
    node: the shared :class:`~repro.engine.executor.QueryExecutor` (whose
    plan memos and subquery-result epochs are single-threaded state) is only
    ever driven by one thread at a time, while queries against *different*
    nodes still run fully in parallel — which is exactly the concurrency the
    fragment runtime exploits.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Relation] = {}
        # Reused across queries so compiled plans survive repeated executions;
        # invalidated whenever the set of registered tables changes.
        self._executor: Optional[QueryExecutor] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> List[str]:
        """Names of all registered tables (registration order)."""
        return list(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._tables

    def create_table(self, name: str, schema: Schema) -> Relation:
        """Create an empty table with the given schema."""
        with self._lock:
            key = name.lower()
            if key in self._tables:
                raise SchemaError(f"Table already exists: {name}")
            relation = Relation.empty(schema, name=name)
            self._tables[key] = relation
            self._executor = None
            return relation

    def register(self, name: str, relation: Relation, replace: bool = True) -> None:
        """Register an existing relation under ``name``.

        Shipped query results are registered this way when they arrive at a
        node (``d1`` arriving at the appliance, ``d2`` at the media center...).
        """
        with self._lock:
            key = name.lower()
            if not replace and key in self._tables:
                raise SchemaError(f"Table already exists: {name}")
            existing = self._tables.get(key)
            # Defensive isolation without a deep copy: the columnar layout
            # makes this an O(#columns) list copy (values shared), so the
            # pipeline's per-run d1..d4 re-registrations no longer pay a
            # per-row dict materialization.  Mutations on either side stay
            # invisible to the other (see tests/test_columnar.py).
            replacement = relation.copy()
            replacement.name = name
            self._tables[key] = replacement
            # Re-registering a same-shaped relation (the pipeline's per-run
            # d1..d4 fragments) keeps the executor and its compiled plans warm;
            # anything that changes the column-name shape invalidates.
            executor = self._executor
            if (
                executor is not None
                and existing is not None
                and [n.lower() for n in existing.schema.names]
                == [n.lower() for n in replacement.schema.names]
            ):
                executor.replace_relation(key, replacement)
            else:
                self._executor = None

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        with self._lock:
            key = name.lower()
            if key not in self._tables:
                raise SchemaError(f"Unknown table: {name}")
            del self._tables[key]
            self._executor = None

    def table(self, name: str) -> Relation:
        """Return the relation registered under ``name``."""
        with self._lock:
            key = name.lower()
            if key not in self._tables:
                raise SchemaError(f"Unknown table: {name}")
            return self._tables[key]

    def insert_rows(self, name: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Append rows to an existing table; returns the number inserted."""
        with self._lock:
            relation = self.table(name)
            count = 0
            for row in rows:
                unknown = [key for key in row if key not in relation.schema]
                if unknown:
                    raise SchemaError(f"Unknown column(s) {unknown} for table {name}")
                relation.rows.append(
                    {column: row.get(column) for column in relation.schema.names}
                )
                count += 1
            return count

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, sql_or_ast: Union[str, ast.Query]) -> Relation:
        """Parse (if needed) and execute a query against this database."""
        query = parse(sql_or_ast) if isinstance(sql_or_ast, str) else sql_or_ast
        with self._lock:
            return self._mode_executor().execute(query)

    def _mode_executor(self) -> QueryExecutor:
        """The catalog executor for the calling thread's engine mode."""
        executor = self._executor
        if executor is None or executor.use_compiled != (
            default_execution_mode() == "compiled"
        ):
            executor = QueryExecutor(self._tables)
            self._executor = executor
        return executor

    def partial_aggregate(self, sql_or_ast: Union[str, ast.Query]) -> Relation:
        """Run a grouped query in *partial* mode: mergeable state rows.

        The query's FROM/WHERE run against this node's catalog as usual,
        but grouping stops before finalization — the distributed runtime
        ships the (much smaller) state rows instead of raw rows.
        """
        query = parse(sql_or_ast) if isinstance(sql_or_ast, str) else sql_or_ast
        with self._lock:
            return self._mode_executor().execute_partial_aggregation(query)

    def combine_partials(
        self, sql_or_ast: Union[str, ast.Query], relation: Relation
    ) -> Relation:
        """Merge partial-state rows (from several children) per group.

        ``relation`` is passed directly rather than read from the catalog:
        combine points receive partials over the wire and never register
        the intermediate states.
        """
        query = parse(sql_or_ast) if isinstance(sql_or_ast, str) else sql_or_ast
        with self._lock:
            return self._mode_executor().combine_partial_aggregation(query, relation)

    def finalize_partials(
        self, sql_or_ast: Union[str, ast.Query], relation: Relation
    ) -> Relation:
        """Merge partial-state rows and produce the query's real output."""
        query = parse(sql_or_ast) if isinstance(sql_or_ast, str) else sql_or_ast
        with self._lock:
            return self._mode_executor().finalize_partial_aggregation(query, relation)

    def explain(self, sql_or_ast: Union[str, ast.Query]) -> dict:
        """Return the structural summary of a query (no execution)."""
        from repro.sql.analysis import query_summary

        query = parse(sql_or_ast) if isinstance(sql_or_ast, str) else sql_or_ast
        return query_summary(query)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def load_rows(
        self,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        schema: Optional[Schema] = None,
    ) -> Relation:
        """Create (or replace) a table directly from dict rows."""
        relation = Relation.from_rows(rows, name=name, schema=schema)
        with self._lock:
            self._tables[name.lower()] = relation
            self._executor = None
        return relation

    def total_rows(self) -> int:
        """Total number of rows across all tables (used by capacity checks)."""
        with self._lock:
            return sum(len(relation) for relation in self._tables.values())
