"""In-memory relational engine executing the :mod:`repro.sql` AST.

The engine plays the role of the per-node database systems of the paper's
vertical architecture (cloud / PC / appliance / sensor).  Each simulated node
owns a :class:`~repro.engine.database.Database` instance; the PArADISE
processor runs the query fragments produced by the fragmenter against these
databases and ships the intermediate relations between nodes.

Public surface:

* :class:`~repro.engine.types.DataType` and
  :class:`~repro.engine.schema.Schema` describe relation shapes,
* :class:`~repro.engine.table.Relation` is the (immutable-by-convention)
  result/row container,
* :class:`~repro.engine.database.Database` offers ``create_table``,
  ``insert_rows`` and ``query(sql)``,
* :class:`~repro.engine.executor.QueryExecutor` evaluates a parsed query
  against a catalog of relations.
"""

from repro.engine.errors import EngineError, ExecutionError, SchemaError
from repro.engine.types import DataType, infer_type
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.database import Database
from repro.engine.executor import (
    QueryExecutor,
    default_execution_mode,
    execution_mode,
    set_default_execution_mode,
)
from repro.engine.vectorized import (
    set_default_vectorized,
    vectorized_enabled,
    vectorized_scans,
)

__all__ = [
    "EngineError",
    "ExecutionError",
    "SchemaError",
    "DataType",
    "infer_type",
    "ColumnDef",
    "Schema",
    "Relation",
    "Database",
    "QueryExecutor",
    "default_execution_mode",
    "execution_mode",
    "set_default_execution_mode",
    "set_default_vectorized",
    "vectorized_enabled",
    "vectorized_scans",
]
