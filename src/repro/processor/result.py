"""Result objects of a PArADISE processing run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.anonymize.anonymizer import AnonymizationOutcome
from repro.engine.table import Relation
from repro.fragment.plan import FragmentPlan
from repro.obs.profile import ProfileReport
from repro.obs.trace import QueryTrace
from repro.processor.network import TransferLog
from repro.rewrite.analyzer import AdmissionDecision
from repro.rewrite.rewriter import RewriteResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> result)
    from repro.runtime.faults import CompletenessReport


@dataclass
class FragmentExecution:
    """Execution record of one fragment on one node."""

    fragment_name: str
    node: str
    level: str
    sql: str
    input_rows: int
    output_rows: int
    elapsed_seconds: float

    @property
    def selectivity(self) -> float:
        """Output rows divided by input rows (1.0 when the input was empty)."""
        if self.input_rows == 0:
            return 1.0
        return self.output_rows / self.input_rows


@dataclass
class RuntimeStats:
    """What the parallel runtime did for one query (``execution="parallel"``)."""

    #: Number of leaf partitions the bottom fragment fanned out over.
    partition_width: int
    #: Total DAG tasks executed (scans, fragments, merges, anonymize, finalize).
    task_count: int
    #: Merge/union tasks among them.
    merge_count: int
    #: Wall-clock seconds of the scheduler run.
    wall_seconds: float
    #: Sum of per-task wall seconds (the serial-equivalent busy time); the
    #: ratio to ``wall_seconds`` estimates the achieved overlap.
    busy_seconds: float
    #: Nodes whose free memory a shipped intermediate exceeded.
    capacity_warnings: List[str] = field(default_factory=list)
    #: Leaf partial-aggregation tasks (the distributed GROUP BY protocol).
    partial_count: int = 0
    #: Per-level combine tasks plus the final merge-and-finalize task.
    combine_count: int = 0
    #: Node deaths this run recovered from by re-planning the DAG.
    replans: int = 0
    #: In-place retry attempts transient task failures cost.
    retried_attempts: int = 0
    #: Tasks satisfied from aggregate-state checkpoints instead of re-running.
    restored_tasks: int = 0
    #: Aggregate-state checkpoints taken at partial/combine boundaries.
    checkpoints_saved: int = 0
    #: Total wire-packed size of the stored checkpoints.
    checkpoint_bytes: int = 0

    @property
    def overlap_factor(self) -> float:
        """Busy time divided by wall time (1.0 = fully serial)."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.busy_seconds / self.wall_seconds

    @property
    def overlap(self) -> float:
        """Achieved parallelism: ``busy_seconds / wall_seconds``.

        Unlike :attr:`overlap_factor` (which reports the neutral 1.0 for a
        degenerate run, as its display uses expect), a zero wall clock here
        yields 0.0 — benchmark JSON wants "no measurement", not "serial".
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.busy_seconds / self.wall_seconds


@dataclass
class ProcessingResult:
    """Everything a :class:`~repro.processor.paradise.ParadiseProcessor` run yields."""

    module_id: str
    admitted: bool
    admission: Optional[AdmissionDecision] = None
    rewrite: Optional[RewriteResult] = None
    plan: Optional[FragmentPlan] = None
    executions: List[FragmentExecution] = field(default_factory=list)
    transfers: Optional[TransferLog] = None
    result: Optional[Relation] = None
    anonymization: Optional[AnonymizationOutcome] = None
    raw_input_rows: int = 0
    elapsed_seconds: float = 0.0
    #: The residual analysis call executed at the cloud (for R workloads).
    remainder_call: Optional[str] = None
    #: Parallel-runtime statistics (``None`` for serial runs).
    runtime: Optional[RuntimeStats] = None
    #: What the result does and does not cover (``None`` for serial runs;
    #: ``complete=True`` unless base data was unrecoverably lost).
    completeness: Optional["CompletenessReport"] = None
    #: Span collection of this run (``profile=True`` only); exports to
    #: Chrome trace JSON via ``result.trace.to_chrome(path)``.
    trace: Optional[QueryTrace] = None
    #: EXPLAIN-ANALYZE-style report built from the trace (``profile=True``
    #: only); render with ``result.profile.render()``.
    profile: Optional[ProfileReport] = None

    # ------------------------------------------------------------------
    # derived measures used by benchmarks and examples
    # ------------------------------------------------------------------
    @property
    def rows_leaving_apartment(self) -> int:
        """Rows shipped across the apartment boundary."""
        if self.transfers is None:
            return 0
        return self.transfers.rows_leaving_apartment

    @property
    def bytes_leaving_apartment(self) -> int:
        """Bytes shipped across the apartment boundary."""
        if self.transfers is None:
            return 0
        return self.transfers.bytes_leaving_apartment

    @property
    def data_reduction_ratio(self) -> float:
        """Raw input rows divided by rows leaving the apartment (>= 1)."""
        leaving = self.rows_leaving_apartment
        if leaving == 0:
            return float("inf") if self.raw_input_rows > 0 else 1.0
        return self.raw_input_rows / leaving

    def summary(self) -> str:
        """Multi-line human-readable report of the run."""
        lines = [f"PArADISE processing result for module '{self.module_id}':"]
        lines.append(f"  admitted: {self.admitted}")
        if self.admission is not None and not self.admitted:
            lines.append(f"  reasons: {'; '.join(self.admission.reasons)}")
            return "\n".join(lines)
        if self.rewrite is not None:
            lines.append(f"  rewritten query: {self.rewrite.sql}")
        for execution in self.executions:
            lines.append(
                f"  [{execution.level} @ {execution.node}] {execution.fragment_name}: "
                f"{execution.input_rows} -> {execution.output_rows} rows "
                f"({execution.elapsed_seconds * 1000:.1f} ms)"
            )
        if self.transfers is not None:
            lines.append(
                f"  data leaving apartment: {self.rows_leaving_apartment} rows / "
                f"{self.bytes_leaving_apartment} bytes "
                f"(reduction x{self.data_reduction_ratio:.1f} over {self.raw_input_rows} raw rows)"
            )
        if self.runtime is not None:
            lines.append(
                f"  parallel runtime: {self.runtime.task_count} tasks "
                f"({self.runtime.merge_count} merges) over "
                f"{self.runtime.partition_width} partitions, "
                f"overlap x{self.runtime.overlap_factor:.1f}"
            )
            if self.runtime.replans or self.runtime.retried_attempts:
                lines.append(
                    f"  fault recovery: {self.runtime.replans} re-plan(s), "
                    f"{self.runtime.retried_attempts} retried attempt(s), "
                    f"{self.runtime.restored_tasks} task(s) restored from "
                    f"{self.runtime.checkpoints_saved} checkpoint(s)"
                )
        if self.completeness is not None and (
            not self.completeness.complete or self.completeness.dead_nodes
        ):
            lines.append("  " + self.completeness.summary().replace("\n", "\n  "))
        if self.anonymization is not None:
            lines.append("  " + self.anonymization.summary().replace("\n", "\n  "))
        if self.remainder_call:
            lines.append(f"  cloud remainder: {self.remainder_call}")
        return "\n".join(lines)
