"""The PArADISE privacy-aware query processor (Figure 2 + Figure 3).

This subpackage wires everything together:

* :mod:`repro.processor.network` — the simulated peer network: one
  :class:`~repro.engine.database.Database` per node, shipment of intermediate
  relations along the chain and transfer accounting (how much data leaves the
  apartment),
* :mod:`repro.processor.result` — the result objects of a processing run,
* :mod:`repro.processor.paradise` — the :class:`ParadiseProcessor` façade
  combining admission check, rewriting, fragmentation, distributed execution
  and postprocessing/anonymization.
"""

from repro.processor.network import NetworkSimulator, Transfer, TransferLog
from repro.processor.result import FragmentExecution, ProcessingResult
from repro.processor.paradise import ParadiseProcessor

__all__ = [
    "NetworkSimulator",
    "Transfer",
    "TransferLog",
    "FragmentExecution",
    "ProcessingResult",
    "ParadiseProcessor",
]
