"""Simulated peer network of the vertical architecture.

Every node of the :class:`~repro.fragment.topology.Topology` owns its own
in-memory :class:`~repro.engine.database.Database`.  Raw sensor data lives on
the sensor node; query fragments execute bottom-up and their results are
*shipped* to the node that runs the next fragment.  Every shipment is recorded
in the :class:`TransferLog`, which is what the Figure 3 benchmark measures:
how many rows/bytes travel on each hop and, in particular, how much data
crosses the apartment boundary towards the cloud (``d`` vs ``d'``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.database import Database
from repro.engine.table import Relation
from repro.fragment.topology import Node, Topology


@dataclass(frozen=True)
class Transfer:
    """One shipment of a relation between two nodes."""

    source: str
    target: str
    relation_name: str
    rows: int
    bytes: int
    leaves_apartment: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = "  [leaves apartment]" if self.leaves_apartment else ""
        return f"{self.source} -> {self.target}: {self.relation_name} ({self.rows} rows, {self.bytes} bytes){marker}"


@dataclass
class TransferLog:
    """All shipments of one processing run."""

    transfers: List[Transfer] = field(default_factory=list)

    def record(self, transfer: Transfer) -> None:
        """Append one transfer."""
        self.transfers.append(transfer)

    @property
    def total_rows(self) -> int:
        """Total rows moved across all hops."""
        return sum(transfer.rows for transfer in self.transfers)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved across all hops."""
        return sum(transfer.bytes for transfer in self.transfers)

    @property
    def rows_leaving_apartment(self) -> int:
        """Rows that crossed the apartment boundary (shipped to the cloud)."""
        return sum(t.rows for t in self.transfers if t.leaves_apartment)

    @property
    def bytes_leaving_apartment(self) -> int:
        """Bytes that crossed the apartment boundary."""
        return sum(t.bytes for t in self.transfers if t.leaves_apartment)

    def by_hop(self) -> List[Dict[str, object]]:
        """Tabular per-hop summary."""
        return [
            {
                "source": t.source,
                "target": t.target,
                "relation": t.relation_name,
                "rows": t.rows,
                "bytes": t.bytes,
                "leaves_apartment": t.leaves_apartment,
            }
            for t in self.transfers
        ]


class NetworkSimulator:
    """Holds the per-node databases and performs shipments."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._databases: Dict[str, Database] = {
            node.name: Database(name=node.name) for node in topology
        }
        self.log = TransferLog()

    # ------------------------------------------------------------------
    # data placement
    # ------------------------------------------------------------------
    def database(self, node_name: str) -> Database:
        """Return the database of ``node_name``."""
        if node_name not in self._databases:
            raise KeyError(f"Unknown node: {node_name}")
        return self._databases[node_name]

    def load_sensor_data(self, relation: Relation, table_name: str = "d") -> None:
        """Place raw sensor data on the lowest node (the sensor itself)."""
        sensor = self.topology.nodes[0]
        database = self.database(sensor.name)
        database.register(table_name, relation)
        # "SELECT * FROM stream" of the use case reads the sensor's own stream.
        if table_name != "stream":
            database.register("stream", relation)

    def load_device_tables(self, tables: Dict[str, Relation]) -> None:
        """Register every device table on the sensor node."""
        sensor = self.topology.nodes[0]
        database = self.database(sensor.name)
        for name, relation in tables.items():
            database.register(name, relation)

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def ship(
        self,
        relation: Relation,
        relation_name: str,
        source: str,
        target: str,
    ) -> None:
        """Ship ``relation`` from ``source`` to ``target`` and register it there."""
        if source == target:
            self.database(target).register(relation_name, relation)
            return
        source_node = self.topology.node(source)
        target_node = self.topology.node(target)
        leaves = source_node.inside_apartment and not target_node.inside_apartment
        self.log.record(
            Transfer(
                source=source,
                target=target,
                relation_name=relation_name,
                rows=len(relation),
                bytes=relation.estimated_bytes(),
                leaves_apartment=leaves,
            )
        )
        self.database(target).register(relation_name, relation)

    def reset_log(self) -> None:
        """Clear the transfer log (databases keep their contents)."""
        self.log = TransferLog()
