"""Simulated peer network of the vertical architecture.

Every node of the :class:`~repro.fragment.topology.Topology` owns its own
in-memory :class:`~repro.engine.database.Database`.  Raw sensor data lives on
the sensor leaves; query fragments execute bottom-up and their results are
*shipped* to the node that runs the next fragment.  Every shipment is recorded
in the :class:`TransferLog`, which is what the Figure 3 benchmark measures:
how many rows/bytes travel on each hop and, in particular, how much data
crosses the apartment boundary towards the cloud (``d`` vs ``d'``).

Concurrency: the parallel fragment runtime (:mod:`repro.runtime`) ships
intermediate results from many worker threads at once, so :class:`TransferLog`
is lock-protected and :meth:`TransferLog.by_hop` reports hops in a
deterministic order independent of scheduling.  Callers that need an isolated
per-run log (concurrent sessions sharing one simulator) pass ``log=`` to
:meth:`NetworkSimulator.ship`.

Tree topologies with several sensor leaves hold the base data *horizontally
partitioned*: :meth:`NetworkSimulator.load_sensor_data` splits the relation
into contiguous chunks, one per leaf, in leaf order.  Concatenating the
chunks in that order reproduces the original row order exactly, which is what
keeps the parallel runtime byte-identical to the serial oracle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.columns import copy_column, extend_column
from repro.engine.database import Database
from repro.engine.table import Relation
from repro.engine.wire import WireFormatError, pack_relation, unpack_relation
from repro.fragment.topology import Node, Topology
from repro.obs.metrics import registry as _metrics
from repro.obs.trace import current_span


@dataclass(frozen=True)
class Transfer:
    """One shipment of a relation between two nodes."""

    source: str
    target: str
    relation_name: str
    rows: int
    bytes: int
    leaves_apartment: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = "  [leaves apartment]" if self.leaves_apartment else ""
        return f"{self.source} -> {self.target}: {self.relation_name} ({self.rows} rows, {self.bytes} bytes){marker}"


@dataclass
class TransferLog:
    """All shipments of one processing run.

    Safe to record into from many scheduler workers at once; aggregate
    accessors snapshot the list under the same lock.
    """

    transfers: List[Transfer] = field(default_factory=list)
    #: Node names from the least powerful upwards; fixes the deterministic
    #: bottom-up hop order :meth:`by_hop` reports regardless of the
    #: (scheduling-dependent) order transfers were recorded in.
    node_order: List[str] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, transfer: Transfer) -> None:
        """Append one transfer (thread-safe)."""
        with self._lock:
            self.transfers.append(transfer)

    def snapshot(self) -> List[Transfer]:
        """A consistent copy of all transfers recorded so far."""
        with self._lock:
            return list(self.transfers)

    @property
    def total_rows(self) -> int:
        """Total rows moved across all hops."""
        return sum(transfer.rows for transfer in self.snapshot())

    @property
    def total_bytes(self) -> int:
        """Total bytes moved across all hops."""
        return sum(transfer.bytes for transfer in self.snapshot())

    @property
    def rows_leaving_apartment(self) -> int:
        """Rows that crossed the apartment boundary (shipped to the cloud)."""
        return sum(t.rows for t in self.snapshot() if t.leaves_apartment)

    @property
    def bytes_leaving_apartment(self) -> int:
        """Bytes that crossed the apartment boundary."""
        return sum(t.bytes for t in self.snapshot() if t.leaves_apartment)

    def by_hop(self) -> List[Dict[str, object]]:
        """Tabular per-hop summary in a deterministic bottom-up order.

        Parallel runs record transfers in scheduling order, which varies from
        run to run; sorting hops by topology position (sources closest to the
        sensors first, the apartment-leaving hop last) makes reports from
        repeated runs stable and comparable.  Nodes absent from
        ``node_order`` sort after known ones, by name.
        """
        known = {name: index for index, name in enumerate(self.node_order)}
        fallback = len(known)

        def position(name: str) -> tuple:
            return (known.get(name, fallback), name)

        ordered = sorted(
            self.snapshot(),
            key=lambda t: (
                position(t.source),
                position(t.target),
                t.relation_name,
                t.rows,
                t.bytes,
            ),
        )
        return [
            {
                "source": t.source,
                "target": t.target,
                "relation": t.relation_name,
                "rows": t.rows,
                "bytes": t.bytes,
                "leaves_apartment": t.leaves_apartment,
            }
            for t in ordered
        ]


class NetworkSimulator:
    """Holds the per-node databases and performs shipments.

    ``cost_model`` (optional, duck-typed — anything with a
    ``transfer_delay(bytes) -> seconds`` method, see
    :class:`repro.runtime.cost.CostModel`) simulates link latency: every
    inter-node shipment sleeps for the returned duration, so overlapping
    shipments from concurrent workers genuinely overlap in wall-clock time.
    """

    def __init__(self, topology: Topology, cost_model: Optional[object] = None) -> None:
        self.topology = topology
        self._databases: Dict[str, Database] = {
            node.name: Database(name=node.name) for node in topology
        }
        self.log = self.new_log()
        self.cost_model = cost_model
        #: table name (lower-case) -> ordered node names holding its chunks.
        self._partitions: Dict[str, List[str]] = {}
        #: (node name, table name) -> placement epoch.  Bumped whenever a
        #: chunk of the table moves onto or off the node (node failure
        #: re-placement), so task signatures built over the old placement
        #: stop matching and stale checkpoints are never restored.
        self._epochs: Dict[Tuple[str, str], int] = {}
        self._placement_lock = threading.Lock()

    # ------------------------------------------------------------------
    # data placement
    # ------------------------------------------------------------------
    def database(self, node_name: str) -> Database:
        """Return the database of ``node_name``."""
        if node_name not in self._databases:
            raise KeyError(f"Unknown node: {node_name}")
        return self._databases[node_name]

    def _sensor_leaves(self) -> List[Node]:
        """Leaf nodes of the topology's least powerful level, in order."""
        lowest = self.topology.nodes[0].level
        return [leaf for leaf in self.topology.leaves if leaf.level == lowest]

    def load_sensor_data(self, relation: Relation, table_name: str = "d") -> None:
        """Place raw sensor data on the sensor leaves.

        A single-sensor topology (the seed's chains) receives the whole
        relation on its lowest node.  A tree with several sensor leaves
        receives contiguous chunks, one per leaf in leaf order, modelling
        each sensor producing its own slice of the integrated stream.
        """
        leaves = self._sensor_leaves()
        if len(leaves) <= 1:
            target = leaves[0] if leaves else self.topology.nodes[0]
            self._register_stream(self.database(target.name), table_name, relation)
            self._partitions[table_name.lower()] = [target.name]
            return
        chunk_count = len(leaves)
        base, remainder = divmod(len(relation), chunk_count)
        start = 0
        holders: List[str] = []
        for index, leaf in enumerate(leaves):
            size = base + (1 if index < remainder else 0)
            # Contiguous columnar slice — no per-row copies.
            chunk = relation.slice_rows(start, start + size, name=table_name)
            start += size
            self._register_stream(self.database(leaf.name), table_name, chunk)
            holders.append(leaf.name)
        self._partitions[table_name.lower()] = holders

    def _register_stream(self, database: Database, table_name: str, relation: Relation) -> None:
        database.register(table_name, relation)
        # "SELECT * FROM stream" of the use case reads the sensor's own stream.
        if table_name != "stream":
            database.register("stream", relation)

    def append_to_partition(
        self, node_name: str, table_name: str, delta: Relation
    ) -> int:
        """Append ``delta`` rows at the *end* of ``node_name``'s chunk.

        The ingestion primitive of standing queries: a sensor's new readings
        extend its own contiguous slice of the partitioned stream, so the
        concatenation of all chunks in partition order stays exactly the
        relation a from-scratch load would have produced (append-at-end is
        what keeps incremental group order identical to the serial oracle's
        first-occurrence order).  Bumps the placement epoch so task
        signatures built over the old chunk — and any checkpoints saved
        under them — stop matching.  Returns the chunk's new row count.
        """
        database = self.database(node_name)
        if table_name in database:
            combined = self._concat_chunks(
                database.table(table_name), delta, table_name
            )
        else:
            combined = self._concat_chunks(
                Relation.from_columns(
                    delta.schema, [[] for _ in delta.schema.columns]
                ),
                delta,
                table_name,
            )
        self._register_stream(database, table_name, combined)
        holders = self._partitions.setdefault(table_name.lower(), [])
        if node_name not in holders:
            holders.append(node_name)
        self._bump_epoch(node_name, table_name)
        return len(combined)

    def load_device_tables(self, tables: Dict[str, Relation]) -> None:
        """Register every device table on the first sensor node."""
        sensor = self.topology.nodes[0]
        database = self.database(sensor.name)
        for name, relation in tables.items():
            database.register(name, relation)
            self._partitions[name.lower()] = [sensor.name]

    # ------------------------------------------------------------------
    # partition lookup
    # ------------------------------------------------------------------
    def partition_holders(self, table_name: str) -> List[str]:
        """Node names holding chunks of ``table_name``, in chunk order.

        Unknown tables fall back to the lowest node (where un-tracked data
        such as directly registered tables lives).
        """
        return list(
            self._partitions.get(table_name.lower(), [self.topology.nodes[0].name])
        )

    def is_partitioned(self, table_name: str) -> bool:
        """True when ``table_name`` is split across more than one leaf."""
        return len(self.partition_holders(table_name)) > 1

    def base_table_rows(self, table_name: str) -> int:
        """Total rows of ``table_name`` across all of its chunk holders."""
        total = 0
        for holder in self.partition_holders(table_name):
            database = self.database(holder)
            if table_name in database:
                total += len(database.table(table_name))
        return total

    # ------------------------------------------------------------------
    # failures and re-placement
    # ------------------------------------------------------------------
    def data_epoch(self, node_name: str, table_name: str) -> int:
        """Placement epoch of ``table_name``'s chunk on ``node_name``.

        Part of every leaf task's signature: a re-placed chunk bumps the
        epoch, which invalidates checkpoints computed over the old chunk.
        """
        with self._placement_lock:
            return self._epochs.get((node_name, table_name.lower()), 0)

    def _bump_epoch(self, node_name: str, table_name: str) -> None:
        with self._placement_lock:
            key = (node_name, table_name.lower())
            self._epochs[key] = self._epochs.get(key, 0) + 1

    @staticmethod
    def _concat_chunks(first: Relation, second: Relation, name: str) -> Relation:
        """Concatenate two same-schema chunks preserving row order.

        Typed column backings are preserved (an int64 chunk glued to an
        int64 chunk stays one contiguous typed buffer).
        """
        merged = []
        for column in first.schema.columns:
            head = first.column_array(column.name)
            tail = second.column_array(column.name)
            destination = copy_column(head) if head is not None else []
            merged.append(
                extend_column(destination, tail if tail is not None else [])
            )
        return Relation.from_columns(first.schema, merged, name=name)

    def fail_node(self, node_name: str, lose_data: bool = False) -> List:
        """Take ``node_name`` out of service and re-place its base chunks.

        Process-crash semantics (``lose_data=False``): the node's chunk of
        every partitioned base table is still readable and merges into an
        *adjacent* holder in partition order — into the previous holder's
        chunk tail, or ahead of the next holder's chunk, or (sole holder)
        onto the nearest live ancestor.  Concatenation order is preserved in
        every case, which is what keeps recovered parallel runs
        byte-identical to the healthy serial oracle.

        Device-destroyed semantics (``lose_data=True``): the chunk is gone;
        it is removed from the partition map and reported as a
        :class:`~repro.runtime.faults.LostPartition` (returned in partition
        order) for the completeness report.

        Either way the dead node's database drops its copies so nothing can
        silently read stale data, and placement epochs bump for every
        affected (node, table) pair.
        """
        from repro.runtime.faults import LostPartition

        self.topology.node(node_name)  # raise on unknown names
        lost: List[LostPartition] = []
        dead_database = self.database(node_name)
        for table_name, holders in self._partitions.items():
            if node_name not in holders:
                continue
            index = holders.index(node_name)
            chunk = (
                dead_database.table(table_name)
                if table_name in dead_database
                else None
            )
            if lose_data or chunk is None:
                lost.append(
                    LostPartition(
                        table=table_name,
                        node=node_name,
                        index=index,
                        rows=len(chunk) if chunk is not None else 0,
                    )
                )
            elif index > 0:
                # Append the dead chunk after its predecessor's chunk.
                heir = holders[index - 1]
                heir_database = self.database(heir)
                merged = self._concat_chunks(
                    heir_database.table(table_name), chunk, name=table_name
                )
                self._register_stream(heir_database, table_name, merged)
                self._bump_epoch(heir, table_name)
            elif len(holders) > 1:
                # First holder: prepend the dead chunk to its successor's.
                heir = holders[index + 1]
                heir_database = self.database(heir)
                merged = self._concat_chunks(
                    chunk, heir_database.table(table_name), name=table_name
                )
                self._register_stream(heir_database, table_name, merged)
                self._bump_epoch(heir, table_name)
            else:
                # Sole holder: move the chunk up to the nearest live ancestor.
                heir = self.topology.nearest_live_ancestor(node_name).name
                self._register_stream(self.database(heir), table_name, chunk)
                holders[index] = heir
                self._bump_epoch(heir, table_name)
                self._bump_epoch(node_name, table_name)
                self._drop_node_table(dead_database, table_name)
                continue
            holders.remove(node_name)
            self._bump_epoch(node_name, table_name)
            self._drop_node_table(dead_database, table_name)
        return lost

    @staticmethod
    def _drop_node_table(database: Database, table_name: str) -> None:
        """Drop a failed node's chunk plus its ``stream`` alias."""
        if table_name in database:
            database.drop_table(table_name)
        if table_name != "stream" and "stream" in database:
            database.drop_table("stream")

    def drop_namespace(self, namespace: str) -> int:
        """Drop every namespaced intermediate (``x__ns``) from every node.

        Failed or retried parallel runs call this so a re-plan (or the next
        session recycling the namespace) never reads a half-written
        intermediate; returns the number of tables dropped.
        """
        suffix = f"__{namespace}".lower()
        dropped = 0
        for database in self._databases.values():
            for table_name in database.table_names:
                if table_name.lower().endswith(suffix):
                    database.drop_table(table_name)
                    dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def ship(
        self,
        relation: Relation,
        relation_name: str,
        source: str,
        target: str,
        log: Optional[TransferLog] = None,
        register: bool = True,
        injector: Optional[object] = None,
    ) -> Relation:
        """Ship ``relation`` from ``source`` to ``target`` and register it there.

        The relation genuinely crosses the link: it is serialized through
        the wire codec (:func:`repro.engine.wire.pack_relation`), the
        *encoded payload's* byte count drives the transfer log, the metrics
        and the cost model's link latency, and the relation registered at
        the target — also returned to the caller — is the **deserialized**
        copy.  Relations whose cells fall outside the wire vocabulary ship
        by reference with the estimated size instead (counted by the
        ``network.unserializable_shipments`` metric).

        ``log`` selects the transfer log to record into; ``None`` uses the
        simulator's shared log (the serial processor path).  Concurrent
        sessions pass their own per-run log so runs do not interleave.
        ``register=False`` logs the shipment without registering the relation
        at the target (merge tasks register the union once instead of every
        partial, keeping the target's catalog shape stable).
        ``injector`` (duck-typed — anything with an
        ``on_ship(source, target) -> extra delay seconds`` method, see
        :class:`repro.runtime.faults.FailureInjector`) may delay the
        shipment or fail it with :class:`repro.runtime.faults.LinkDown`;
        nothing is logged or registered for a dropped shipment.
        """
        if source == target:
            if register:
                self.database(target).register(relation_name, relation)
            return relation
        source_node = self.topology.node(source)
        target_node = self.topology.node(target)
        extra_delay = 0.0
        if injector is not None:
            extra_delay = injector.on_ship(source, target)  # may raise LinkDown
        try:
            payload = pack_relation(relation)
        except WireFormatError:
            payload = None
            _metrics.counter("network.unserializable_shipments").inc()
        if payload is not None:
            nbytes = len(payload)
            received = unpack_relation(payload)
        else:
            nbytes = relation.estimated_bytes()
            received = relation
        if self.cost_model is not None:
            extra_delay += self.cost_model.transfer_delay(nbytes)
        if extra_delay > 0:
            time.sleep(extra_delay)
        leaves = source_node.inside_apartment and not target_node.inside_apartment
        (log if log is not None else self.log).record(
            Transfer(
                source=source,
                target=target,
                relation_name=relation_name,
                rows=len(relation),
                bytes=nbytes,
                leaves_apartment=leaves,
            )
        )
        _metrics.counter("network.transfers").inc()
        _metrics.counter("network.bytes").inc(nbytes)
        if leaves:
            _metrics.counter("network.bytes_leaving_apartment").inc(nbytes)
        # Ambient trace attribution: whichever span is executing on this
        # thread (the scheduler's task span, or the serial path's stage
        # span) gets the shipment as an instant event.  One thread-local
        # read when tracing is off.
        span = current_span()
        if span is not None:
            span.trace.add_event(
                span,
                "transfer",
                source=source,
                target=target,
                relation=relation_name,
                rows=len(relation),
                bytes=nbytes,
                leaves_apartment=leaves,
            )
        if register:
            self.database(target).register(relation_name, received)
        return received

    def new_log(self) -> TransferLog:
        """A fresh transfer log carrying this topology's hop order."""
        return TransferLog(node_order=[node.name for node in self.topology])

    def reset_log(self) -> None:
        """Clear the shared transfer log (databases keep their contents)."""
        self.log = self.new_log()
