"""The PArADISE privacy-aware query processor.

A :class:`ParadiseProcessor` run performs the full pipeline of Figures 2/3:

1. **Admission** — the preprocessor checks the query against the module's
   policy (coverage, information gain, capacity, query interval).
2. **Rewriting** — disallowed attributes are removed, relations substituted,
   policy conditions and mandatory aggregations injected.
3. **Vertical fragmentation** — the rewritten query is split into fragments
   assigned to the lowest capable nodes of the topology.
4. **Distributed execution** — fragments run bottom-up on the per-node
   databases; intermediate results are shipped hop by hop and logged.
5. **Postprocessing** — before the result crosses the apartment boundary, the
   anonymization step ``A`` runs on the most powerful in-apartment node.
6. **Remainder** — the cloud receives only ``d'`` and runs the remainder
   (for R workloads the surrounding ML call; for plain SQL a pass-through or
   the original query in the no-pushdown baseline).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.anonymize.anonymizer import Anonymizer
from repro.engine.executor import execution_mode
from repro.engine.schema import Schema
from repro.engine.stats import optimizer_mode
from repro.engine.table import Relation
from repro.engine.vectorized import estimate_select_rows
from repro.fragment.fragmenter import VerticalFragmenter
from repro.fragment.plan import FragmentPlan
from repro.fragment.topology import Topology
from repro.obs.metrics import registry as _metrics
from repro.obs.profile import CalibrationLog, build_profile_report
from repro.obs.trace import QueryTrace, maybe_span
from repro.policy.model import PrivacyPolicy
from repro.processor.network import NetworkSimulator
from repro.processor.result import FragmentExecution, ProcessingResult, RuntimeStats
from repro.rewrite.analyzer import NodeCapacity, PolicyAnalyzer
from repro.rewrite.rewriter import QueryRewriter
from repro.rlang.sqlable import RQueryExtraction, extract_sql_from_r
from repro.runtime.cost import DEFAULT_TASK_TIMEOUT, CostModel
from repro.runtime.dag import (
    ExecutionContext,
    build_execution_dag,
    last_inside_node,
    replan_without,
    union_partials,
)
from repro.runtime.faults import (
    CheckpointStore,
    CompletenessReport,
    DataLossError,
    FailureInjector,
    LostPartition,
    NodeDeath,
    RetryPolicy,
)
from repro.runtime.scheduler import Scheduler
from repro.sql import ast
from repro.sql.parser import parse

_EXECUTION_MODES = ("serial", "parallel")

_WORKER_BACKENDS = ("threads", "processes")


class ParadiseProcessor:
    """End-to-end privacy-aware query processing over a simulated environment."""

    def __init__(
        self,
        policy: PrivacyPolicy,
        topology: Optional[Topology] = None,
        schema: Optional[Schema] = None,
        anonymizer: Optional[Anonymizer] = None,
        minimum_information_gain: float = 0.25,
        enforce_query_interval: bool = False,
        engine_mode: str = "compiled",
        execution: str = "serial",
        cost_model: Optional[CostModel] = None,
        partial_aggregation: bool = True,
        optimizer: Optional[bool] = None,
        allow_partial_results: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        profile: bool = False,
        workers: str = "threads",
        process_workers: int = 2,
    ) -> None:
        if execution not in _EXECUTION_MODES:
            raise ValueError(
                f"Unknown execution mode: {execution!r} (expected one of {_EXECUTION_MODES})"
            )
        if workers not in _WORKER_BACKENDS:
            raise ValueError(
                f"Unknown worker backend: {workers!r} (expected one of {_WORKER_BACKENDS})"
            )
        if process_workers < 1:
            raise ValueError(
                f"Process backend needs at least 1 worker, got {process_workers}"
            )
        self.policy = policy
        self.topology = topology or Topology.default_chain()
        self.schema = schema
        #: Simulated per-node compute / per-hop transfer delays; the default
        #: free model never sleeps.  Both execution paths charge the same
        #: operations, so benchmark speedups measure overlap only.
        self.cost_model = cost_model
        self.network = NetworkSimulator(self.topology, cost_model=cost_model)
        self.analyzer = PolicyAnalyzer(
            policy, minimum_information_gain=minimum_information_gain
        )
        self.rewriter = QueryRewriter(policy, schema=schema)
        self.fragmenter = VerticalFragmenter(self.topology)
        self.anonymizer = anonymizer or Anonymizer(algorithm="k_anonymity", k=5)
        self.enforce_query_interval = enforce_query_interval
        #: Per-node database execution path: "compiled" (default) or the
        #: interpreted reference oracle (benchmark baselines, audits).
        self.engine_mode = engine_mode
        #: Plan execution strategy: "serial" walks the plan hop by hop (the
        #: differential oracle); "parallel" schedules an execution DAG over
        #: the topology tree (:mod:`repro.runtime`).
        self.execution = execution
        #: Parallel runs decompose GROUP BY fragments into leaf partial
        #: aggregation plus per-level combines when possible; ``False``
        #: restores the global-merge baseline (benchmark ablation knob).
        self.partial_aggregation = partial_aggregation
        #: Statistics-driven cost-based optimization: selectivity-ordered
        #: conjuncts, vectorized OR/ORDER BY/DISTINCT scans, join build-side
        #: and nested-loop choices, and the adaptive partial-aggregation
        #: ratio.  ``False`` restores the purely syntactic choices
        #: (benchmark ablation knob); results are byte-identical either way.
        self.optimizer = True if optimizer is None else bool(optimizer)
        #: Default data-loss policy for parallel runs: ``False`` raises
        #: :class:`~repro.runtime.faults.DataLossError` when base data is
        #: unrecoverable, ``True`` degrades to a partial result with a
        #: :class:`~repro.runtime.faults.CompletenessReport` (per-query
        #: override via ``process(on_data_loss=...)``).
        self.allow_partial_results = allow_partial_results
        #: Compute backend for parallel DAG runs: ``"threads"`` runs engine
        #: operations in the scheduler's threads (default); ``"processes"``
        #: dispatches them to a spawned worker pool where every input and
        #: output crosses the process boundary as wire bytes
        #: (:mod:`repro.runtime.procs`) — true multi-core execution with
        #: remote-node visibility semantics.
        self.workers = workers
        #: Pool size for the process backend.
        self.process_workers = process_workers
        self._dispatcher = None
        #: Bounds in-place retries of transient task failures.
        self.retry_policy = retry_policy or RetryPolicy()
        #: Default profiling switch: ``True`` attaches a
        #: :class:`~repro.obs.trace.QueryTrace` and an EXPLAIN-ANALYZE-style
        #: :class:`~repro.obs.profile.ProfileReport` to every result
        #: (per-query override via ``process(profile=...)``).
        self.profile = profile
        #: Predicted-vs-observed task costs accumulated across profiled
        #: runs; shared with the cost model so
        #: ``cost_model.calibration_report()`` sees the same samples.
        self.calibration: CalibrationLog = (
            cost_model.calibration if cost_model is not None else CalibrationLog()
        )
        self._scheduler: Optional[Scheduler] = None
        self._scheduler_lock = threading.Lock()

    @property
    def scheduler(self) -> Scheduler:
        """The lazily created scheduler (shared by all parallel runs)."""
        with self._scheduler_lock:
            if self._scheduler is None:
                self._scheduler = Scheduler(self.topology)
            return self._scheduler

    # ------------------------------------------------------------------
    # data placement
    # ------------------------------------------------------------------
    def load_data(self, relation: Relation, table_name: str = "d") -> None:
        """Load the integrated sensor relation onto the sensor node."""
        self.network.load_sensor_data(relation, table_name=table_name)

    def load_device_tables(self, tables: Dict[str, Relation]) -> None:
        """Load per-device tables onto the sensor node."""
        self.network.load_device_tables(tables)

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------
    def process_r(self, r_code: str, module_id: str, **kwargs) -> ProcessingResult:
        """Process an R analysis script containing an embedded SQL query."""
        extraction = extract_sql_from_r(r_code)
        result = self.process(extraction.sql, module_id, **kwargs)
        result.remainder_call = extraction.residual_call("d_prime")
        return result

    def process(
        self,
        query: Union[str, ast.Query],
        module_id: str,
        anonymize: bool = True,
        pushdown: bool = True,
        apply_rewriting: bool = True,
        execution: Optional[str] = None,
        namespace: Optional[str] = None,
        faults: Optional[FailureInjector] = None,
        on_data_loss: Optional[str] = None,
        task_timeout: Optional[float] = None,
        profile: Optional[bool] = None,
    ) -> ProcessingResult:
        """Process a SQL query end to end.

        Args:
            query: SQL text or parsed query AST.
            module_id: The requesting module (must have a policy, unless
                rewriting is disabled for a baseline run).
            anonymize: Apply the postprocessing anonymization step ``A``.
            pushdown: Use vertical fragmentation; ``False`` ships the raw data
                to the cloud (the ablation baseline).
            apply_rewriting: Apply the policy-driven rewriting; ``False`` is
                the "no privacy" baseline.
            execution: Override the processor's execution strategy for this
                run ("serial" or "parallel").
            namespace: Suffix for intermediate relation names (parallel runs
                only); concurrent sessions pass a unique one each so shared
                per-node databases never collide.
            faults: Failure-injection harness for this run (parallel only);
                the chaos tests and the recovery benchmark pass one.
            on_data_loss: ``"fail"`` raises on unrecoverable base-data loss,
                ``"partial"`` degrades to a partial result plus completeness
                report; ``None`` uses the processor's
                ``allow_partial_results`` default.
            task_timeout: Per-task deadline in seconds (parallel only);
                ``None`` derives a generous one from the cost model.
            profile: Collect a :class:`~repro.obs.trace.QueryTrace` and
                build an EXPLAIN-ANALYZE-style profile report for this run;
                ``None`` uses the processor's ``profile`` default.
        """
        strategy = execution or self.execution
        if strategy not in _EXECUTION_MODES:
            raise ValueError(
                f"Unknown execution mode: {strategy!r} (expected one of {_EXECUTION_MODES})"
            )
        if on_data_loss not in (None, "fail", "partial"):
            raise ValueError(
                f"Unknown data-loss policy: {on_data_loss!r} "
                "(expected 'fail' or 'partial')"
            )
        if faults is not None and strategy != "parallel":
            raise ValueError("Failure injection requires execution='parallel'")
        profiling = self.profile if profile is None else profile
        trace = QueryTrace(query_id=module_id) if profiling else None
        metrics_before = _metrics.snapshot() if profiling else None
        started = time.perf_counter()
        parsed = parse(query) if isinstance(query, str) else query
        raw_rows = self._raw_input_rows()

        result = ProcessingResult(module_id=module_id, admitted=True, raw_input_rows=raw_rows)
        if strategy == "serial":
            # The serial oracle keeps the seed's shared-log semantics; the
            # parallel path records into a per-run log instead (it may run
            # concurrently with other sessions on the same simulator).
            self.network.reset_log()

        # 1. admission + 2. rewriting
        working_query = parsed
        if apply_rewriting:
            sensor_node = self.topology.nodes[0]
            admission = self.analyzer.admit(
                parsed,
                module_id,
                estimated_rows=raw_rows,
                capacity=NodeCapacity(
                    cpu_power=sensor_node.cpu_power or 1.0,
                    free_memory_mb=self.topology.cloud.free_memory_mb,
                ),
                enforce_interval=self.enforce_query_interval,
            )
            result.admission = admission
            if not admission.admitted:
                result.admitted = False
                result.elapsed_seconds = time.perf_counter() - started
                return result
            rewrite = self.rewriter.rewrite(parsed, module_id)
            result.rewrite = rewrite
            if not rewrite.compliant:
                result.admitted = False
                result.elapsed_seconds = time.perf_counter() - started
                return result
            working_query = rewrite.query

        # 3. fragmentation
        if pushdown:
            plan = self.fragmenter.fragment(working_query)
        else:
            plan = self.fragmenter.cloud_only_plan(working_query)
        result.plan = plan

        if trace is not None:
            self._annotate_estimates(plan, raw_rows)

        # 4. distributed execution + 5. anonymization + 6. remainder
        if strategy == "parallel" and plan.fragments:
            # The wrap covers the DAG build (the adaptive partial-aggregation
            # decision); worker threads re-enter the mode per task from
            # ``context.optimizer``.
            with optimizer_mode(self.optimizer):
                final = self._execute_plan_parallel(
                    plan,
                    result,
                    anonymize=anonymize,
                    namespace=namespace,
                    faults=faults,
                    on_data_loss=on_data_loss,
                    task_timeout=task_timeout,
                    trace=trace,
                )
        else:
            with execution_mode(self.engine_mode), optimizer_mode(self.optimizer):
                with maybe_span(trace, "serial_plan", kind="dag_run", epoch=0):
                    final = self._execute_plan(
                        plan, result, anonymize=anonymize, trace=trace
                    )
            result.transfers = self.network.log
        result.result = final
        result.elapsed_seconds = time.perf_counter() - started
        if trace is not None:
            result.trace = trace
            result.profile = build_profile_report(
                trace,
                runtime_wall_seconds=(
                    result.runtime.wall_seconds if result.runtime is not None else 0.0
                ),
                calibration=self.calibration,
                metrics_before=metrics_before,
                metrics_after=_metrics.snapshot(),
            )
        return result

    # ------------------------------------------------------------------
    # EXPLAIN (plan + placement without executing)
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Union[str, ast.Query],
        module_id: str,
        pushdown: bool = True,
        apply_rewriting: bool = True,
        anonymize: bool = True,
        execution: Optional[str] = None,
        namespace: Optional[str] = None,
    ) -> str:
        """Render the fragment plan and DAG placement without executing.

        Runs admission, rewriting, fragmentation and (for parallel
        strategies) the DAG build — all side-effect-free — and returns a
        human-readable plan: which fragment lands on which node, and how
        the parallel runtime would decompose it into tasks.
        """
        strategy = execution or self.execution
        if strategy not in _EXECUTION_MODES:
            raise ValueError(
                f"Unknown execution mode: {strategy!r} (expected one of {_EXECUTION_MODES})"
            )
        parsed = parse(query) if isinstance(query, str) else query
        lines = [f"EXPLAIN (module {module_id!r}, execution={strategy})"]
        working_query = parsed
        if apply_rewriting:
            sensor_node = self.topology.nodes[0]
            admission = self.analyzer.admit(
                parsed,
                module_id,
                estimated_rows=self._raw_input_rows(),
                capacity=NodeCapacity(
                    cpu_power=sensor_node.cpu_power or 1.0,
                    free_memory_mb=self.topology.cloud.free_memory_mb,
                ),
                enforce_interval=self.enforce_query_interval,
            )
            if not admission.admitted:
                lines.append("admission: REJECTED")
                for reason in admission.reasons:
                    lines.append(f"  - {reason}")
                return "\n".join(lines)
            lines.append("admission: ok")
            rewrite = self.rewriter.rewrite(parsed, module_id)
            if not rewrite.compliant:
                lines.append("rewriting: NOT COMPLIANT")
                if rewrite.report.rejection_reason:
                    lines.append(f"  - {rewrite.report.rejection_reason}")
                return "\n".join(lines)
            lines.append(f"rewritten: {rewrite.sql}")
            working_query = rewrite.query

        if pushdown:
            plan = self.fragmenter.fragment(working_query)
        else:
            plan = self.fragmenter.cloud_only_plan(working_query)
        self._annotate_estimates(plan, self._raw_input_rows())
        lines.append("")
        lines.append(plan.pretty())

        if strategy == "parallel" and plan.fragments:
            with optimizer_mode(self.optimizer):
                dag = build_execution_dag(
                    plan,
                    self.topology,
                    self.network,
                    anonymize=anonymize,
                    namespace=namespace,
                    partial_aggregation=self.partial_aggregation,
                )
            lines.append("")
            lines.append(
                f"parallel DAG: {len(dag.tasks)} tasks over "
                f"{dag.partition_width} partition(s)"
            )
            for task in sorted(dag.tasks, key=lambda t: t.order):
                deps = f" <- {', '.join(task.deps)}" if task.deps else ""
                lines.append(
                    f"  {task.order:3d}. {task.task_id} [{task.kind}] "
                    f"@ {task.node}{deps}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # plan execution (serial oracle)
    # ------------------------------------------------------------------
    def _charge_compute(self, rows: int, node_name: str) -> None:
        """Sleep for the simulated compute cost of ``rows`` on a node."""
        if self.cost_model is not None:
            power = self.topology.node(node_name).cpu_power or 1.0
            self.cost_model.charge_compute(rows, power)

    def _annotate_estimates(self, plan: FragmentPlan, raw_rows: int) -> None:
        """Fill per-fragment estimated output rows, chained bottom-up.

        Each fragment's estimate feeds the next fragment's input cardinality
        (fragments run over the previous fragment's output).  Advisory only:
        rendered by ``plan.pretty()``/``explain()`` and compared against
        observed counts in profiled runs.
        """
        rows = raw_rows
        for fragment in plan.fragments:
            estimated = estimate_select_rows(fragment.query, input_rows=rows)
            fragment.estimated_rows = estimated
            if estimated is not None:
                rows = estimated

    def _observe_serial(
        self,
        trace: Optional[QueryTrace],
        span,
        kind: str,
        node: str,
        input_rows: int,
        output: Relation,
        elapsed: float,
        query: Optional[ast.Query] = None,
        source: Optional[Relation] = None,
    ) -> None:
        """Annotate a serial-path span and feed the calibration log."""
        if trace is None or span is None:
            return
        span.attrs["input_rows"] = input_rows
        span.attrs["output_rows"] = len(output)
        span.attrs["estimated_bytes"] = output.estimated_bytes()
        if query is not None:
            estimated = estimate_select_rows(
                query,
                relation=source,
                input_rows=None if source is not None else input_rows,
            )
            if estimated is not None:
                span.attrs["estimated_rows"] = estimated
                self.calibration.observe(
                    "rows", float(estimated), float(len(output)), rows=len(output)
                )
        predicted = 0.0
        if self.cost_model is not None:
            power = self.topology.node(node).cpu_power or 1.0
            predicted = self.cost_model.compute_delay(input_rows, power)
            span.attrs["predicted_seconds"] = predicted
        self.calibration.observe(kind, predicted, elapsed, rows=input_rows)

    def _execute_plan(
        self,
        plan: FragmentPlan,
        result: ProcessingResult,
        anonymize: bool,
        trace: Optional[QueryTrace] = None,
    ) -> Relation:
        sensor_name = self.topology.nodes[0].name
        current_node = sensor_name
        current_relation: Optional[Relation] = None

        fragments = list(plan.fragments)
        if fragments and self.network.is_partitioned(fragments[0].input_name):
            current_node, current_relation, fragments = self._serial_leaf_stage(
                plan, result, fragments, trace=trace
            )

        for fragment in fragments:
            target_node = fragment.assigned_node or self.topology.cloud.name
            # Ship the previous intermediate result to the node that needs it.
            if current_relation is not None:
                self.network.ship(
                    current_relation, fragment.input_name, current_node, target_node
                )
            database = self.network.database(target_node)
            source = current_relation
            if source is None and fragment.input_name in database:
                source = database.table(fragment.input_name)
            input_rows = (
                len(source) if source is not None else self._raw_input_rows()
            )
            self._charge_compute(input_rows, target_node)
            with maybe_span(
                trace, fragment.name, kind="fragment", node=target_node
            ) as span:
                fragment_started = time.perf_counter()
                current_relation = database.query(fragment.query)
                elapsed = time.perf_counter() - fragment_started
                self._observe_serial(
                    trace, span, "fragment", target_node, input_rows,
                    current_relation, elapsed,
                    query=fragment.query, source=source,
                )
            current_relation.name = fragment.name
            database.register(fragment.name, current_relation)
            result.executions.append(
                FragmentExecution(
                    fragment_name=fragment.name,
                    node=target_node,
                    level=fragment.level.short_name,
                    sql=fragment.sql,
                    input_rows=input_rows,
                    output_rows=len(current_relation),
                    elapsed_seconds=elapsed,
                )
            )
            current_node = target_node

        if current_relation is None:
            current_relation = Relation.from_rows([], name="d_prime")

        # 5. anonymization step A on the last in-apartment node.
        if anonymize:
            boundary_node = self._last_inside_node(current_node)
            self._charge_compute(len(current_relation), boundary_node)
            anonymize_input_rows = len(current_relation)
            with maybe_span(
                trace, "anonymize", kind="fragment", node=boundary_node
            ) as span:
                anonymize_started = time.perf_counter()
                outcome = self.anonymizer.anonymize(
                    current_relation,
                    node_cpu_power=self.topology.node(boundary_node).cpu_power or 1.0,
                )
                self._observe_serial(
                    trace, span, "anonymize", boundary_node, anonymize_input_rows,
                    outcome.relation, time.perf_counter() - anonymize_started,
                )
            result.anonymization = outcome
            current_relation = outcome.relation

        # 6. ship d' to the cloud and run the remainder there.
        cloud = self.topology.cloud.name
        if current_node != cloud:
            current_relation = self.network.ship(
                current_relation, plan.result_name, current_node, cloud
            )
            current_node = cloud
        if plan.remainder_query is not None:
            database = self.network.database(cloud)
            database.register(plan.remainder_input_alias, current_relation)
            remainder_input_rows = len(current_relation)
            self._charge_compute(remainder_input_rows, cloud)
            with maybe_span(trace, "Q_delta", kind="fragment", node=cloud) as span:
                remainder_started = time.perf_counter()
                current_relation = database.query(plan.remainder_query)
                elapsed = time.perf_counter() - remainder_started
                self._observe_serial(
                    trace, span, "remainder", cloud, remainder_input_rows,
                    current_relation, elapsed,
                )
            result.executions.append(
                FragmentExecution(
                    fragment_name="Q_delta",
                    node=cloud,
                    level="E1",
                    sql=plan.remainder_description,
                    input_rows=remainder_input_rows,
                    output_rows=len(current_relation),
                    elapsed_seconds=elapsed,
                )
            )
        current_relation.name = "d_prime"
        return current_relation

    def _serial_leaf_stage(
        self,
        plan: FragmentPlan,
        result: ProcessingResult,
        fragments: List,
        trace: Optional[QueryTrace] = None,
    ) -> Tuple[str, Relation, List]:
        """Serial oracle over a partitioned base: leaf loop + ordered union.

        Visits each chunk holder in partition order, runs the bottom
        fragment there when it is row-distributive (otherwise just collects
        the raw chunks), ships every partial to the leaves' common ancestor
        and unions them in partition order — exactly the relation the
        parallel DAG produces, computed one leaf at a time.
        """
        first = fragments[0]
        base_table = first.input_name
        holders = self.network.partition_holders(base_table)
        run_fragment = first.partitionable

        partials: List[Relation] = []
        for holder in holders:
            database = self.network.database(holder)
            chunk_rows = len(database.table(base_table)) if base_table in database else 0
            if run_fragment:
                self._charge_compute(chunk_rows, holder)
                with maybe_span(
                    trace, f"{first.name}[{holder}]", kind="fragment", node=holder
                ) as span:
                    fragment_started = time.perf_counter()
                    partial = database.query(first.query)
                    elapsed = time.perf_counter() - fragment_started
                    self._observe_serial(
                        trace, span, "fragment", holder, chunk_rows, partial, elapsed
                    )
                partial.name = f"{first.name}[{holder}]"
                result.executions.append(
                    FragmentExecution(
                        fragment_name=partial.name,
                        node=holder,
                        level=first.level.short_name,
                        sql=first.sql,
                        input_rows=chunk_rows,
                        output_rows=len(partial),
                        elapsed_seconds=elapsed,
                    )
                )
            else:
                partial = database.table(base_table)
            partials.append(partial)

        merge_name = first.name if run_fragment else base_table
        ancestor = self.topology.common_ancestor(holders).name
        received = []
        for holder, partial in zip(holders, partials):
            if holder != ancestor:
                partial = self.network.ship(
                    partial, f"{merge_name}@{holder}", holder, ancestor, register=False
                )
            received.append(partial)
        merged = union_partials(received, merge_name)
        self.network.database(ancestor).register(merge_name, merged)
        remaining = fragments[1:] if run_fragment else fragments
        return ancestor, merged, remaining

    # ------------------------------------------------------------------
    # plan execution (parallel runtime)
    # ------------------------------------------------------------------
    def _execute_plan_parallel(
        self,
        plan: FragmentPlan,
        result: ProcessingResult,
        anonymize: bool,
        namespace: Optional[str],
        faults: Optional[FailureInjector] = None,
        on_data_loss: Optional[str] = None,
        task_timeout: Optional[float] = None,
        trace: Optional[QueryTrace] = None,
    ) -> Relation:
        """Run ``plan`` on the parallel runtime, recovering from node deaths.

        The recovery loop: build and run the execution DAG; when the
        scheduler escalates a failure to
        :class:`~repro.runtime.faults.NodeDeath` (injected kill, exhausted
        retries, hung-node deadline), mark the node dead, re-place its base
        chunks onto live siblings (:meth:`NetworkSimulator.fail_node`),
        re-plan the DAG without it (:func:`repro.runtime.dag.replan_without`)
        and run again — checkpointed aggregate states survive across
        attempts, so only work the failure invalidated replays.  Chunks that
        are truly lost either abort the query
        (:class:`~repro.runtime.faults.DataLossError`) or, when policy
        allows, degrade it to a partial result whose
        :class:`~repro.runtime.faults.CompletenessReport` names exactly what
        is missing.
        """
        loss_policy = on_data_loss or (
            "partial" if self.allow_partial_results else "fail"
        )
        if task_timeout is None:
            if self.cost_model is not None:
                weakest = min(node.cpu_power or 1.0 for node in self.topology)
                task_timeout = self.cost_model.task_timeout(
                    self._raw_input_rows(), weakest
                )
            else:
                task_timeout = DEFAULT_TASK_TIMEOUT

        run_log = self.network.new_log()
        context = ExecutionContext(
            network=self.network,
            log=run_log,
            engine_mode=self.engine_mode,
            cost_model=self.cost_model,
            anonymizer=self.anonymizer,
            checkpoints=CheckpointStore(),
            injector=faults,
            trace=trace,
            calibration=self.calibration if trace is not None else None,
            dispatcher=self._process_dispatcher(),
            optimizer=self.optimizer,
        )

        current_plan, current_topology = plan, self.topology
        dead: List[str] = []
        lost: List[LostPartition] = []
        max_replans = max(1, len(self.topology) - 1)
        while True:
            dag = build_execution_dag(
                current_plan,
                current_topology,
                self.network,
                anonymize=anonymize,
                namespace=namespace,
                partial_aggregation=self.partial_aggregation,
            )
            try:
                report = self.scheduler.run(
                    dag,
                    context,
                    retry_policy=self.retry_policy,
                    task_timeout=task_timeout,
                )
                break
            except NodeDeath as death:
                # Failure hygiene: this attempt's intermediates must never
                # leak into the re-plan (or the next session recycling the
                # namespace).
                if namespace:
                    self.network.drop_namespace(namespace)
                if death.node in dead or len(dead) >= max_replans:
                    raise
                dead.append(death.node)
                _metrics.counter("runtime.node_deaths").inc()
                self.topology.mark_dead(death.node)
                newly_lost = self.network.fail_node(
                    death.node, lose_data=death.lose_data
                )
                lost.extend(newly_lost)
                if newly_lost and loss_policy != "partial":
                    raise DataLossError(lost) from death
                current_plan, current_topology = replan_without(
                    plan, self.topology, dead
                )
                # Old task ids may collide with the new DAG's; checkpointed
                # states are re-keyed by signature, everything else re-runs.
                context.outputs.clear()
                context.attempt += 1
            except Exception:
                if namespace:
                    self.network.drop_namespace(namespace)
                raise

        final = context.outputs[dag.final_task_id]
        final.name = "d_prime"
        result.executions.extend(context.ordered_executions())
        result.anonymization = context.anonymization
        result.transfers = run_log
        leaves_lost: List[str] = []
        for partition in lost:
            if partition.node not in leaves_lost:
                leaves_lost.append(partition.node)
        result.completeness = CompletenessReport(
            complete=not lost,
            lost_partitions=list(lost),
            rows_lost=sum(partition.rows for partition in lost),
            leaves_lost=leaves_lost,
            aggregates_exact=not lost,
            dead_nodes=list(dead),
            failures=faults.fired if faults is not None else [],
        )
        result.runtime = RuntimeStats(
            partition_width=dag.partition_width,
            task_count=len(dag.tasks),
            merge_count=sum(1 for task in dag.tasks if task.kind == "merge"),
            wall_seconds=report.wall_seconds,
            busy_seconds=report.busy_seconds,
            capacity_warnings=list(context.capacity_warnings),
            partial_count=sum(1 for task in dag.tasks if task.kind == "partial"),
            combine_count=sum(
                1 for task in dag.tasks if task.kind in ("combine", "finalize_agg")
            ),
            replans=len(dead),
            retried_attempts=report.retried_attempts,
            restored_tasks=report.restored_tasks,
            checkpoints_saved=context.checkpoints.saved,
            checkpoint_bytes=context.checkpoints.total_bytes,
        )
        return final

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _process_dispatcher(self):
        """The shared process dispatcher, or ``None`` on the thread backend.

        Imported lazily so thread-backed processors never touch
        :mod:`multiprocessing`.
        """
        if self.workers != "processes":
            return None
        if self._dispatcher is None:
            from repro.runtime.procs import ProcessDispatcher

            self._dispatcher = ProcessDispatcher(self.process_workers)
        return self._dispatcher

    def _raw_input_rows(self) -> int:
        partitioned = self.network.base_table_rows("d")
        if partitioned:
            return partitioned
        sensor = self.topology.nodes[0]
        database = self.network.database(sensor.name)
        if "d" in database:
            return len(database.table("d"))
        return database.total_rows()

    def _last_inside_node(self, current_node: str) -> str:
        return last_inside_node(self.topology, current_node)
