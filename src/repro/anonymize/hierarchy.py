"""Generalization hierarchies for k-anonymity-style anonymization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class NumericHierarchy:
    """Generalizes numeric values into ever coarser intervals.

    Level 0 keeps the exact value, level ``i`` replaces it with the interval
    of width ``base_width * factor**(i-1)`` containing it, and the top level
    suppresses the value entirely (``*``).
    """

    minimum: float
    maximum: float
    base_width: float = 1.0
    factor: float = 2.0
    levels: int = 4

    def generalize(self, value: Optional[float], level: int) -> Any:
        """Return the generalization of ``value`` at ``level``."""
        if value is None:
            return None
        if level <= 0:
            return value
        if level >= self.levels:
            return "*"
        width = self.base_width * (self.factor ** (level - 1))
        low = self.minimum + int((float(value) - self.minimum) / width) * width
        high = low + width
        return f"[{low:g},{high:g})"

    @property
    def max_level(self) -> int:
        """The suppression level."""
        return self.levels

    @classmethod
    def from_values(
        cls, values: Sequence[float], levels: int = 4, base_bins: int = 16
    ) -> "NumericHierarchy":
        """Build a hierarchy whose base width yields roughly ``base_bins`` bins."""
        present = [float(v) for v in values if v is not None]
        if not present:
            return cls(minimum=0.0, maximum=1.0, base_width=1.0, levels=levels)
        minimum, maximum = min(present), max(present)
        spread = maximum - minimum
        base_width = spread / base_bins if spread > 0 else 1.0
        return cls(
            minimum=minimum,
            maximum=maximum,
            base_width=max(base_width, 1e-9),
            levels=levels,
        )


@dataclass
class CategoricalHierarchy:
    """Generalizes categorical values along an explicit taxonomy.

    ``taxonomy`` maps each value to its chain of ancestors, most specific
    first, e.g. ``{"walk": ["moving", "any"], "sit": ["resting", "any"]}``.
    Values without an entry generalize straight to ``"*"``.
    """

    taxonomy: Dict[str, List[str]] = field(default_factory=dict)

    def generalize(self, value: Optional[str], level: int) -> Any:
        """Return the generalization of ``value`` at ``level``."""
        if value is None:
            return None
        if level <= 0:
            return value
        ancestors = self.taxonomy.get(str(value), [])
        if level <= len(ancestors):
            return ancestors[level - 1]
        return "*"

    @property
    def max_level(self) -> int:
        """Deepest generalization level over all values (plus suppression)."""
        if not self.taxonomy:
            return 1
        return max(len(ancestors) for ancestors in self.taxonomy.values()) + 1


def generalize_value(value: Any, level: int, hierarchy: Optional[object] = None) -> Any:
    """Generalize a single value with an optional hierarchy.

    Without a hierarchy, numeric values are rounded to ``level`` fewer decimal
    digits and everything else is suppressed once ``level > 0``.
    """
    if hierarchy is not None:
        return hierarchy.generalize(value, level)  # type: ignore[attr-defined]
    if value is None or level <= 0:
        return value
    if isinstance(value, bool):
        return "*" if level > 0 else value
    if isinstance(value, (int, float)):
        digits = max(0, 3 - level)
        return round(float(value), digits)
    return "*"
