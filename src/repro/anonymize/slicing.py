"""Column-wise anonymization: slicing [LLZM12].

Slicing partitions the attributes into column groups (correlated attributes
stay together), partitions the tuples into buckets of at least k rows and then
randomly permutes the values of each column group *within* each bucket.  The
marginal distributions inside a bucket are preserved — the association between
the quasi-identifier group and the sensitive group is broken.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.table import Relation


@dataclass
class SlicingResult:
    """Outcome of a slicing run."""

    relation: Relation
    column_groups: List[List[str]]
    bucket_size: int
    buckets: int

    @property
    def sliced_columns(self) -> List[str]:
        """All columns that participated in a permuted column group."""
        return [name for group in self.column_groups for name in group]


class Slicer:
    """Slicing anonymizer."""

    def __init__(self, bucket_size: int = 5, seed: Optional[int] = None) -> None:
        if bucket_size < 2:
            raise ValueError("bucket_size must be at least 2")
        self.bucket_size = bucket_size
        self._rng = random.Random(seed)

    def anonymize(
        self,
        relation: Relation,
        column_groups: Sequence[Sequence[str]],
        sort_by: Optional[str] = None,
    ) -> SlicingResult:
        """Slice ``relation``.

        Args:
            relation: Input relation.
            column_groups: The column groups to permute independently.  Each
                group is permuted as a unit so intra-group correlations
                survive; columns not listed in any group stay untouched.
            sort_by: Optional column used to order tuples before bucketing
                (keeps buckets temporally local for stream data).
        """
        groups = [
            [name for name in group if name in relation.schema] for group in column_groups
        ]
        groups = [group for group in groups if group]
        rows = relation.to_dicts()
        if sort_by is not None and sort_by in relation.schema:
            rows.sort(key=lambda row: _sort_key(row.get(sort_by)))

        bucket_count = 0
        for start in range(0, len(rows), self.bucket_size):
            bucket = rows[start : start + self.bucket_size]
            if len(bucket) < 2:
                continue
            bucket_count += 1
            for group in groups:
                self._permute_group(bucket, group)

        sliced = Relation(schema=relation.schema, rows=rows, name=relation.name or "sliced")
        return SlicingResult(
            relation=sliced,
            column_groups=[list(group) for group in groups],
            bucket_size=self.bucket_size,
            buckets=bucket_count,
        )

    def _permute_group(self, bucket: List[Dict[str, Any]], group: List[str]) -> None:
        values = [tuple(row.get(name) for name in group) for row in bucket]
        permutation = list(range(len(bucket)))
        self._rng.shuffle(permutation)
        for target_index, source_index in enumerate(permutation):
            for name, value in zip(group, values[source_index]):
                bucket[target_index][name] = value


def default_column_groups(
    relation: Relation,
    quasi_identifiers: Sequence[str],
    sensitive: Sequence[str],
) -> List[List[str]]:
    """The canonical two-group slicing layout: QI group and sensitive group."""
    qi_group = [name for name in quasi_identifiers if name in relation.schema]
    sensitive_group = [
        name for name in sensitive if name in relation.schema and name not in qi_group
    ]
    groups = []
    if qi_group:
        groups.append(qi_group)
    if sensitive_group:
        groups.append(sensitive_group)
    return groups


def _sort_key(value: Any) -> Any:
    if value is None:
        return float("-inf")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return str(value)
