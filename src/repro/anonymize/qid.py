"""Quasi-identifier detection.

The summary of the paper names "detecting quasi-identifiers" as the first step
of the postprocessing technique.  Detection combines two signals:

* schema annotations (columns flagged ``identifying`` / ``quasi_identifier`` /
  ``sensitive`` in the :class:`~repro.engine.schema.ColumnDef`), and
* a data-driven uniqueness analysis: columns (and small column combinations)
  whose value combinations identify a large fraction of rows are quasi-
  identifiers even without annotation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.table import Relation


@dataclass
class QuasiIdentifierReport:
    """Outcome of the quasi-identifier analysis."""

    identifying: List[str] = field(default_factory=list)
    quasi_identifiers: List[str] = field(default_factory=list)
    sensitive: List[str] = field(default_factory=list)
    #: Uniqueness score per column: fraction of rows with a unique value.
    uniqueness: Dict[str, float] = field(default_factory=dict)
    #: Column combinations (up to pairs) whose combination is nearly unique.
    risky_combinations: List[Tuple[str, ...]] = field(default_factory=list)

    @property
    def protected_columns(self) -> List[str]:
        """All columns that require protection (identifying + QI + sensitive)."""
        ordered: List[str] = []
        for name in self.identifying + self.quasi_identifiers + self.sensitive:
            if name not in ordered:
                ordered.append(name)
        return ordered


def column_uniqueness(relation: Relation, column: str) -> float:
    """Fraction of rows whose value in ``column`` appears exactly once."""
    if len(relation) == 0:
        return 0.0
    counts: Dict[object, int] = {}
    for value in relation.column_values(column):
        key = str(value)
        counts[key] = counts.get(key, 0) + 1
    unique_rows = sum(count for count in counts.values() if count == 1)
    return unique_rows / len(relation)


def combination_distinct_ratio(relation: Relation, columns: Sequence[str]) -> float:
    """Number of distinct value combinations divided by the row count."""
    if len(relation) == 0:
        return 0.0
    seen = {
        tuple(str(row.get(name)) for name in columns) for row in relation.rows
    }
    return len(seen) / len(relation)


def detect_quasi_identifiers(
    relation: Relation,
    uniqueness_threshold: float = 0.5,
    combination_threshold: float = 0.9,
    max_combination_size: int = 2,
    exclude: Sequence[str] = (),
) -> QuasiIdentifierReport:
    """Classify the columns of ``relation`` for anonymization purposes.

    Args:
        relation: The relation to analyse.
        uniqueness_threshold: Columns whose per-value uniqueness exceeds this
            fraction count as quasi-identifiers even without schema flags.
        combination_threshold: Column combinations whose distinct-combination
            ratio exceeds this fraction are reported as risky.
        max_combination_size: Largest combination size examined.
        exclude: Columns to skip entirely (e.g. the timestamp).
    """
    report = QuasiIdentifierReport()
    excluded = {name.lower() for name in exclude}

    candidate_columns: List[str] = []
    for column in relation.schema:
        if column.name.lower() in excluded:
            continue
        if column.identifying:
            report.identifying.append(column.name)
            continue
        if column.sensitive:
            report.sensitive.append(column.name)
        if column.quasi_identifier:
            report.quasi_identifiers.append(column.name)
            candidate_columns.append(column.name)
            continue
        candidate_columns.append(column.name)

    for name in candidate_columns:
        uniqueness = column_uniqueness(relation, name)
        report.uniqueness[name] = uniqueness
        if uniqueness >= uniqueness_threshold and name not in report.quasi_identifiers:
            report.quasi_identifiers.append(name)

    # Column combinations: a pair of individually harmless columns may still
    # identify individuals (e.g. x and y position together).  Combinations
    # whose uniqueness is already explained by a single member column are
    # skipped so that harmless companions (a constant column next to an id)
    # are not flagged.
    for size in range(2, max_combination_size + 1):
        for combination in itertools.combinations(candidate_columns, size):
            ratio = combination_distinct_ratio(relation, combination)
            if ratio < combination_threshold:
                continue
            explained_by_member = any(
                combination_distinct_ratio(relation, [name]) >= combination_threshold
                for name in combination
            )
            if explained_by_member:
                continue
            report.risky_combinations.append(combination)
            for name in combination:
                if name not in report.quasi_identifiers:
                    report.quasi_identifiers.append(name)
    return report
