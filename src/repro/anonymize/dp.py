"""Differential privacy primitives (Laplace mechanism).

The paper names differential privacy [Dwo11] as one of the anonymization
concepts the postprocessor can choose from.  Smart-environment queries that
survive the rewriter are typically aggregates (the policy of Figure 4 forces
``AVG`` releases), so the natural mechanism is Laplace noise calibrated to the
aggregate's sensitivity.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.table import Relation


@dataclass
class LaplaceMechanism:
    """Adds Laplace noise scaled to ``sensitivity / epsilon``."""

    epsilon: float = 1.0
    sensitivity: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self._rng = random.Random(self.seed)

    @property
    def scale(self) -> float:
        """The Laplace scale parameter b = sensitivity / epsilon."""
        return self.sensitivity / self.epsilon

    def noise(self) -> float:
        """Draw one Laplace(0, b) sample."""
        # Inverse CDF sampling: u uniform in (-0.5, 0.5).
        u = self._rng.random() - 0.5
        return -self.scale * math.copysign(1.0, u) * math.log(1.0 - 2.0 * abs(u))

    def randomize(self, value: float) -> float:
        """Return ``value`` plus calibrated noise."""
        return float(value) + self.noise()


def private_aggregate(
    values: Sequence[float],
    kind: str = "avg",
    epsilon: float = 1.0,
    value_range: Optional[tuple] = None,
    seed: Optional[int] = None,
) -> float:
    """Differentially private COUNT / SUM / AVG over ``values``.

    ``value_range`` bounds each contribution (required for SUM/AVG
    sensitivity); it defaults to the empirical range of the data, which is the
    usual practical approximation when no domain bounds are known.
    """
    kind = kind.lower()
    present = [float(v) for v in values if v is not None]
    count = len(present)

    if kind == "count":
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0, seed=seed)
        return max(0.0, mechanism.randomize(count))

    if not present:
        return 0.0
    low, high = value_range if value_range is not None else (min(present), max(present))
    spread = max(abs(low), abs(high), 1e-9)

    if kind == "sum":
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=spread, seed=seed)
        return mechanism.randomize(sum(present))
    if kind == "avg":
        # Split the budget between the noisy sum and the noisy count.
        sum_mechanism = LaplaceMechanism(epsilon=epsilon / 2.0, sensitivity=spread, seed=seed)
        count_mechanism = LaplaceMechanism(
            epsilon=epsilon / 2.0, sensitivity=1.0, seed=None if seed is None else seed + 1
        )
        noisy_sum = sum_mechanism.randomize(sum(present))
        noisy_count = max(1.0, count_mechanism.randomize(count))
        return noisy_sum / noisy_count
    raise ValueError(f"Unsupported private aggregate: {kind}")


def perturb_numeric_columns(
    relation: Relation,
    columns: Sequence[str],
    epsilon: float = 1.0,
    seed: Optional[int] = None,
) -> Relation:
    """Perturb every value of the given numeric columns with Laplace noise.

    This is the record-level variant used when the postprocessor must release
    tuples (not aggregates) under a differential-privacy-style guarantee; the
    per-value sensitivity is approximated by the column's empirical range.
    """
    rng_seed = seed
    rows = relation.to_dicts()
    for offset, name in enumerate(columns):
        if name not in relation.schema:
            continue
        values = [
            row.get(name)
            for row in rows
            if isinstance(row.get(name), (int, float)) and not isinstance(row.get(name), bool)
        ]
        if not values:
            continue
        spread = max(values) - min(values) or 1.0
        mechanism = LaplaceMechanism(
            epsilon=epsilon,
            sensitivity=spread * 0.05,
            seed=None if rng_seed is None else rng_seed + offset,
        )
        for row in rows:
            value = row.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                row[name] = round(mechanism.randomize(float(value)), 4)
    return Relation(schema=relation.schema, rows=rows, name=relation.name or "dp")
