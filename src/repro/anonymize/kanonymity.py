"""Tuple-wise anonymization: k-anonymity via Mondrian-style partitioning.

A relation is k-anonymous w.r.t. its quasi-identifiers when every combination
of quasi-identifier values occurs at least k times [Sam01].  The anonymizer
below uses the greedy multidimensional (Mondrian) strategy: recursively split
the data on the quasi-identifier with the widest normalised range, stop when a
partition cannot be split without dropping below k rows, and generalize every
quasi-identifier value of a partition to the partition's value range.
Partitions that end up smaller than k (possible with many identical values)
are suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.schema import Schema, ColumnDef
from repro.engine.table import Relation
from repro.engine.types import DataType


@dataclass
class KAnonymityResult:
    """Outcome of a k-anonymization run."""

    relation: Relation
    k: int
    quasi_identifiers: List[str]
    partitions: int
    suppressed_rows: int

    @property
    def satisfied(self) -> bool:
        """True when the output really is k-anonymous."""
        return is_k_anonymous(self.relation, self.quasi_identifiers, self.k)


def is_k_anonymous(relation: Relation, quasi_identifiers: Sequence[str], k: int) -> bool:
    """Check the k-anonymity property of ``relation``."""
    if len(relation) == 0:
        return True
    counts: Dict[Tuple, int] = {}
    for row in relation.rows:
        key = tuple(str(row.get(name)) for name in quasi_identifiers)
        counts[key] = counts.get(key, 0) + 1
    return all(count >= k for count in counts.values())


class KAnonymizer:
    """Mondrian-style k-anonymizer."""

    def __init__(self, k: int = 5, suppress_small_groups: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.suppress_small_groups = suppress_small_groups

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def anonymize(
        self, relation: Relation, quasi_identifiers: Sequence[str]
    ) -> KAnonymityResult:
        """Return a k-anonymous version of ``relation``."""
        quasi_identifiers = [name for name in quasi_identifiers if name in relation.schema]
        if not quasi_identifiers or len(relation) == 0:
            return KAnonymityResult(
                relation=relation.copy(),
                k=self.k,
                quasi_identifiers=list(quasi_identifiers),
                partitions=1 if len(relation) else 0,
                suppressed_rows=0,
            )

        indexed_rows = list(enumerate(relation.to_dicts()))
        partitions = self._partition(indexed_rows, quasi_identifiers)

        output_rows: List[Tuple[int, Dict[str, Any]]] = []
        suppressed = 0
        kept_partitions = 0
        for partition in partitions:
            if len(partition) < self.k:
                if self.suppress_small_groups:
                    suppressed += len(partition)
                    continue
            kept_partitions += 1
            generalized = self._generalize_partition(partition, quasi_identifiers)
            output_rows.extend(generalized)

        # Preserve the original row order (metrics compare positionally).
        output_rows.sort(key=lambda pair: pair[0])
        schema = self._generalized_schema(relation.schema, quasi_identifiers)
        anonymized = Relation(
            schema=schema,
            rows=[row for _, row in output_rows],
            name=relation.name or "k_anonymous",
        )
        return KAnonymityResult(
            relation=anonymized,
            k=self.k,
            quasi_identifiers=list(quasi_identifiers),
            partitions=kept_partitions,
            suppressed_rows=suppressed,
        )

    # ------------------------------------------------------------------
    # Mondrian partitioning
    # ------------------------------------------------------------------
    def _partition(
        self,
        rows: List[Tuple[int, Dict[str, Any]]],
        quasi_identifiers: Sequence[str],
        sorted_by: Optional[str] = None,
    ) -> List[List[Tuple[int, Dict[str, Any]]]]:
        if len(rows) < 2 * self.k:
            return [rows]
        dimension = self._widest_dimension(rows, quasi_identifiers)
        if dimension is None:
            return [rows]
        # Slices of a sorted list stay sorted, so when the recursion keeps
        # splitting on the same dimension the parent's sort is reused.
        if dimension == sorted_by:
            ordered = rows
        else:
            ordered = sorted(rows, key=lambda pair: _sort_key(pair[1].get(dimension)))
        middle = len(ordered) // 2
        # Move the split point so that equal values stay in one partition.
        split_value = _sort_key(ordered[middle][1].get(dimension))
        left_end = middle
        while left_end < len(ordered) and _sort_key(ordered[left_end][1].get(dimension)) == split_value:
            left_end += 1
        if left_end >= len(ordered) or left_end < self.k or len(ordered) - left_end < self.k:
            left_end = middle
            if left_end < self.k or len(ordered) - left_end < self.k:
                return [rows]
        left = ordered[:left_end]
        right = ordered[left_end:]
        if not left or not right:
            return [rows]
        return self._partition(left, quasi_identifiers, sorted_by=dimension) + self._partition(
            right, quasi_identifiers, sorted_by=dimension
        )

    @staticmethod
    def _widest_dimension(
        rows: List[Tuple[int, Dict[str, Any]]],
        quasi_identifiers: Sequence[str],
    ) -> Optional[str]:
        # One pass over the rows accumulates every QID's span simultaneously
        # instead of re-scanning the whole partition per candidate dimension.
        # Numeric spans track min/max incrementally; a dimension that turns
        # out categorical falls back to counting distinct strings over the
        # values collected in the same pass.
        minima: Dict[str, float] = {}
        maxima: Dict[str, float] = {}
        numeric: Dict[str, bool] = {name: True for name in quasi_identifiers}
        values: Dict[str, List[Any]] = {name: [] for name in quasi_identifiers}
        for _, row in rows:
            for name in quasi_identifiers:
                value = row.get(name)
                if value is None:
                    continue
                values[name].append(value)
                if numeric[name]:
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        number = float(value)
                        if name not in minima or number < minima[name]:
                            minima[name] = number
                        if name not in maxima or number > maxima[name]:
                            maxima[name] = number
                    else:
                        numeric[name] = False
        best: Optional[str] = None
        best_spread = -1.0
        for name in quasi_identifiers:
            if not values[name]:
                continue
            if numeric[name]:
                spread = maxima[name] - minima[name]
            else:
                spread = float(len({str(value) for value in values[name]}))
            if spread > best_spread:
                best_spread = spread
                best = name
        if best_spread <= 0:
            return None
        return best

    # ------------------------------------------------------------------
    # generalization
    # ------------------------------------------------------------------
    def _generalize_partition(
        self,
        partition: List[Tuple[int, Dict[str, Any]]],
        quasi_identifiers: Sequence[str],
    ) -> List[Tuple[int, Dict[str, Any]]]:
        summaries: Dict[str, Any] = {}
        for name in quasi_identifiers:
            values = [row.get(name) for _, row in partition if row.get(name) is not None]
            summaries[name] = _summarize_values(values)
        generalized: List[Tuple[int, Dict[str, Any]]] = []
        for index, row in partition:
            new_row = dict(row)
            for name in quasi_identifiers:
                new_row[name] = summaries[name]
            generalized.append((index, new_row))
        return generalized

    @staticmethod
    def _generalized_schema(schema: Schema, quasi_identifiers: Sequence[str]) -> Schema:
        lowered = {name.lower() for name in quasi_identifiers}
        columns = []
        for column in schema:
            if column.name.lower() in lowered:
                columns.append(
                    ColumnDef(
                        name=column.name,
                        data_type=DataType.TEXT,
                        nullable=column.nullable,
                        description=column.description,
                        identifying=column.identifying,
                        quasi_identifier=column.quasi_identifier,
                        sensitive=column.sensitive,
                    )
                )
            else:
                columns.append(column)
        return Schema(columns)


def _summarize_values(values: List[Any]) -> Any:
    if not values:
        return None
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
        low, high = min(values), max(values)
        if low == high:
            return f"{float(low):g}"
        return f"[{float(low):g},{float(high):g}]"
    distinct = sorted({str(v) for v in values})
    if len(distinct) == 1:
        return distinct[0]
    return "{" + ",".join(distinct) + "}"


def _sort_key(value: Any) -> Any:
    if value is None:
        return float("-inf")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return str(value)
