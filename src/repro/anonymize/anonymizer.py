"""The postprocessor façade.

Section 3.2: "the result is modified with privacy-preserving algorithms like
k-anonymity or data slicing, if and only if the processing unit has enough
power. [...] By prior analysis and rewriting of the queries it can thereby be
determined which attributes can be used for anonymization, and whether the
anonymization should be done column-wise (e.g. Slicing) or tuple-wise (e.g.
k-anonymity)."

:class:`Anonymizer` bundles that decision: it detects quasi-identifiers,
chooses (or is told) an algorithm, applies it when the executing node has
enough power and reports the resulting information loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.anonymize.dp import perturb_numeric_columns
from repro.anonymize.kanonymity import KAnonymizer
from repro.anonymize.qid import QuasiIdentifierReport, detect_quasi_identifiers
from repro.anonymize.slicing import Slicer, default_column_groups
from repro.engine.table import Relation
from repro.metrics.quality import InformationLossSummary, information_loss_summary


@dataclass
class AnonymizationOutcome:
    """Everything a postprocessing run produces."""

    relation: Relation
    algorithm: str
    applied: bool
    quasi_identifier_report: Optional[QuasiIdentifierReport] = None
    information_loss: Optional[InformationLossSummary] = None
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [f"anonymization: {self.algorithm} (applied={self.applied})"]
        if self.quasi_identifier_report is not None:
            lines.append(
                "  quasi-identifiers: "
                + ", ".join(self.quasi_identifier_report.quasi_identifiers or ["none"])
            )
        if self.information_loss is not None:
            loss = self.information_loss
            lines.append(
                f"  DD={loss.direct_distance} (ratio {loss.direct_distance_ratio:.3f}), "
                f"KL={loss.kl_divergence_mean:.3f}, "
                f"suppressed {loss.suppression_ratio:.1%} of rows"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


class Anonymizer:
    """Chooses and applies an anonymization algorithm to a query result."""

    #: Algorithms the postprocessor knows about.
    ALGORITHMS = ("none", "k_anonymity", "slicing", "differential_privacy")

    def __init__(
        self,
        algorithm: str = "k_anonymity",
        k: int = 5,
        epsilon: float = 1.0,
        seed: Optional[int] = None,
        minimum_cpu_power: float = 1.0,
    ) -> None:
        if algorithm not in self.ALGORITHMS:
            raise ValueError(f"Unknown anonymization algorithm: {algorithm}")
        self.algorithm = algorithm
        self.k = k
        self.epsilon = epsilon
        self.seed = seed
        #: Below this relative CPU power the node skips anonymization and
        #: defers it to a more powerful node (the paper's "if and only if the
        #: processing unit has enough power").
        self.minimum_cpu_power = minimum_cpu_power

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def choose_algorithm(self, relation: Relation, aggregated: bool) -> str:
        """Pick column-wise vs tuple-wise anonymization for a result shape.

        Aggregated results (the common case after rewriting) keep their tuple
        structure but have few rows — slicing's permutation would destroy the
        grouping keys, so tuple-wise k-anonymity (or DP noise) fits better.
        Wide, row-heavy raw results benefit from column-wise slicing.
        """
        if aggregated:
            return "k_anonymity" if len(relation) >= self.k else "differential_privacy"
        if len(relation.schema) >= 4 and len(relation) >= 2 * self.k:
            return "slicing"
        return "k_anonymity"

    def anonymize(
        self,
        relation: Relation,
        node_cpu_power: float = 10.0,
        quasi_identifiers: Optional[Sequence[str]] = None,
        sensitive: Optional[Sequence[str]] = None,
        algorithm: Optional[str] = None,
    ) -> AnonymizationOutcome:
        """Anonymize ``relation`` (when the node has enough power).

        Args:
            relation: The intermediate query result to protect.
            node_cpu_power: Relative power of the executing node; nodes below
                :attr:`minimum_cpu_power` skip the work ("the raw data will be
                sent to a more powerful node and anonymized later").
            quasi_identifiers: Explicit quasi-identifier columns; detected
                automatically when omitted.
            sensitive: Explicit sensitive columns; taken from the QI report
                when omitted.
            algorithm: Override the configured algorithm for this call.
        """
        chosen = algorithm or self.algorithm
        if node_cpu_power < self.minimum_cpu_power:
            return AnonymizationOutcome(
                relation=relation,
                algorithm=chosen,
                applied=False,
                notes=[
                    "node lacks the power to anonymize; deferring to a more powerful node"
                ],
            )
        if chosen == "none" or len(relation) == 0:
            return AnonymizationOutcome(relation=relation, algorithm="none", applied=False)

        report = detect_quasi_identifiers(relation)
        qi = list(quasi_identifiers) if quasi_identifiers is not None else report.quasi_identifiers
        qi = [name for name in qi if name in relation.schema]
        sensitive_columns = (
            list(sensitive) if sensitive is not None else report.sensitive
        )

        if chosen == "k_anonymity":
            outcome_relation, notes = self._apply_k_anonymity(relation, qi)
        elif chosen == "slicing":
            outcome_relation, notes = self._apply_slicing(relation, qi, sensitive_columns)
        elif chosen == "differential_privacy":
            outcome_relation, notes = self._apply_differential_privacy(
                relation, qi, sensitive_columns
            )
        else:  # pragma: no cover - guarded in __init__
            outcome_relation, notes = relation, ["unknown algorithm"]

        loss = information_loss_summary(relation, outcome_relation)
        return AnonymizationOutcome(
            relation=outcome_relation,
            algorithm=chosen,
            applied=True,
            quasi_identifier_report=report,
            information_loss=loss,
            notes=notes,
        )

    # ------------------------------------------------------------------
    # algorithm wrappers
    # ------------------------------------------------------------------
    def _apply_k_anonymity(self, relation: Relation, qi: List[str]):
        if not qi:
            return relation, ["no quasi-identifiers found; nothing to generalize"]
        result = KAnonymizer(k=self.k).anonymize(relation, qi)
        notes = [
            f"k={self.k}, partitions={result.partitions}, suppressed={result.suppressed_rows}"
        ]
        if not result.satisfied:
            notes.append("warning: residual groups below k remain")
        return result.relation, notes

    def _apply_slicing(self, relation: Relation, qi: List[str], sensitive: List[str]):
        groups = default_column_groups(relation, qi, sensitive)
        if not groups:
            return relation, ["no column groups to slice"]
        result = Slicer(bucket_size=max(2, self.k), seed=self.seed).anonymize(relation, groups)
        return result.relation, [
            f"bucket_size={result.bucket_size}, buckets={result.buckets}, "
            f"groups={result.column_groups}"
        ]

    def _apply_differential_privacy(
        self, relation: Relation, qi: List[str], sensitive: List[str]
    ):
        columns = [
            name
            for name in (list(sensitive) + list(qi))
            if name in relation.schema
        ]
        numeric = [
            name
            for name in columns
            if relation.schema.column(name).data_type.is_numeric
        ]
        if not numeric:
            numeric = [
                column.name for column in relation.schema if column.data_type.is_numeric
            ]
        if not numeric:
            return relation, ["no numeric columns to perturb"]
        perturbed = perturb_numeric_columns(
            relation, numeric, epsilon=self.epsilon, seed=self.seed
        )
        return perturbed, [f"epsilon={self.epsilon}, perturbed columns={numeric}"]
