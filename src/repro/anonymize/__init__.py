"""Result anonymization (the postprocessor of Figure 2).

The postprocessor modifies intermediate query results "with privacy-preserving
algorithms like k-anonymity or data slicing, if and only if the processing
unit has enough power".  This subpackage provides:

* :mod:`repro.anonymize.qid` — quasi-identifier detection (the paper's
  "detecting quasi-identifiers" step),
* :mod:`repro.anonymize.hierarchy` — generalization hierarchies for numeric
  and categorical attributes,
* :mod:`repro.anonymize.kanonymity` — tuple-wise anonymization via
  k-anonymity (Mondrian-style multidimensional generalization + suppression),
* :mod:`repro.anonymize.slicing` — column-wise anonymization via slicing
  (attribute partitioning + per-bucket permutation),
* :mod:`repro.anonymize.dp` — differential privacy (Laplace mechanism) for
  aggregate releases,
* :mod:`repro.anonymize.anonymizer` — the postprocessor façade that picks an
  algorithm and reports information loss.
"""

from repro.anonymize.qid import QuasiIdentifierReport, detect_quasi_identifiers
from repro.anonymize.hierarchy import (
    CategoricalHierarchy,
    NumericHierarchy,
    generalize_value,
)
from repro.anonymize.kanonymity import KAnonymizer, KAnonymityResult, is_k_anonymous
from repro.anonymize.slicing import Slicer, SlicingResult
from repro.anonymize.dp import LaplaceMechanism, private_aggregate
from repro.anonymize.anonymizer import AnonymizationOutcome, Anonymizer

__all__ = [
    "QuasiIdentifierReport",
    "detect_quasi_identifiers",
    "CategoricalHierarchy",
    "NumericHierarchy",
    "generalize_value",
    "KAnonymizer",
    "KAnonymityResult",
    "is_k_anonymous",
    "Slicer",
    "SlicingResult",
    "LaplaceMechanism",
    "private_aggregate",
    "AnonymizationOutcome",
    "Anonymizer",
]
