"""Stream processing for the sensor level (E4) of the vertical architecture.

According to Table 1 of the paper, sensors can only evaluate "filter / window,
simple selection, aggregates on streams (over the last seconds)".  This
subpackage provides exactly that capability: a bounded
:class:`~repro.streams.stream.SensorStream` buffer with constant-comparison
filters and sliding/tumbling window aggregation.
"""

from repro.streams.windows import (
    SlidingWindow,
    TumblingWindow,
    WindowAggregate,
    readings_to_relation,
)
from repro.streams.stream import SensorStream, StreamFilter

__all__ = [
    "SlidingWindow",
    "TumblingWindow",
    "WindowAggregate",
    "SensorStream",
    "StreamFilter",
    "readings_to_relation",
]
