"""Time-based window operators over sensor readings."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.engine.aggregates import SIMPLE_AGGREGATES
from repro.engine.columns import typed_column_from_values
from repro.engine.errors import ExecutionError
from repro.engine.schema import DataType, Schema
from repro.engine.table import Relation

Reading = Dict[str, Any]

#: Declared types with an ``array``-backed columnar representation.
_TYPECODES = {DataType.INTEGER: "q", DataType.FLOAT: "d", DataType.BOOLEAN: "b"}


def readings_to_relation(
    schema: Schema, readings: Sequence[Mapping[str, Any]], name: str = ""
) -> Relation:
    """Materialize readings column-wise with typed column backings.

    Stream data arrives as dicts whose values do not always match the
    declared column type exactly — sensors emit ``1`` where the schema says
    FLOAT — and a single mistyped value used to degrade the whole column to
    a generic list, silently bailing every vectorized kernel out
    (``BailReason.UNTYPED_BACKING``).  Here values are coerced to the
    declared type first (int -> float for FLOAT columns; bools stay bools),
    so stream-fed relations get the same ``array`` backing loaded tables do.
    """
    columns: List[Any] = []
    for column_def in schema.columns:
        values = [reading.get(column_def.name) for reading in readings]
        if column_def.data_type is DataType.FLOAT:
            # ``type(...) is int`` deliberately excludes bool.
            values = [
                float(value) if type(value) is int else value for value in values
            ]
        typecode = _TYPECODES.get(column_def.data_type)
        if typecode is not None:
            typed = typed_column_from_values(values, typecode)
            if typed is not None:
                values = typed
        columns.append(values)
    return Relation.from_columns(schema, columns, name=name)


@dataclass
class WindowAggregate:
    """One aggregate to compute per window: ``AVG(z) AS z_avg``."""

    function: str
    column: str
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        """Name of the produced column."""
        return self.alias or f"{self.function.lower()}_{self.column}"

    def compute(self, readings: Sequence[Mapping[str, Any]]) -> Any:
        """Compute the aggregate over the readings of one window."""
        name = self.function.upper()
        if name == "COUNT" and self.column == "*":
            return len(readings)
        implementation = SIMPLE_AGGREGATES.get(name)
        if implementation is None:
            raise ExecutionError(f"Unsupported stream aggregate: {self.function}")
        return implementation([reading.get(self.column) for reading in readings])


@dataclass
class TumblingWindow:
    """Non-overlapping windows of fixed duration over the ``time_column``."""

    size_seconds: float
    time_column: str = "t"
    aggregates: List[WindowAggregate] = field(default_factory=list)

    def apply(self, readings: Iterable[Mapping[str, Any]]) -> List[Reading]:
        """Partition readings into consecutive windows and aggregate each."""
        ordered = sorted(readings, key=lambda r: r[self.time_column])
        if not ordered:
            return []
        results: List[Reading] = []
        # Float from the start: ``window_start += size_seconds`` (a float)
        # would otherwise flip the column's type after the first window and
        # break its typed backing.
        window_start = float(ordered[0][self.time_column])
        bucket: List[Mapping[str, Any]] = []
        for reading in ordered:
            timestamp = reading[self.time_column]
            while timestamp >= window_start + self.size_seconds:
                if bucket:
                    results.append(self._summarize(window_start, bucket))
                    bucket = []
                window_start += self.size_seconds
            bucket.append(reading)
        if bucket:
            results.append(self._summarize(window_start, bucket))
        return results

    def _summarize(self, window_start: float, bucket: Sequence[Mapping[str, Any]]) -> Reading:
        row: Reading = {
            "window_start": window_start,
            "window_end": window_start + self.size_seconds,
            "count": len(bucket),
        }
        for aggregate in self.aggregates:
            row[aggregate.output_name] = aggregate.compute(bucket)
        return row

    def to_relation(
        self, readings: Iterable[Mapping[str, Any]], name: str = "window"
    ) -> Relation:
        """Window the readings and materialize the result typed-columnar."""
        rows = self.apply(readings)
        return readings_to_relation(Schema.infer(rows), rows, name=name)


@dataclass
class SlidingWindow:
    """A sliding window keeping only the readings of the last ``size_seconds``.

    This models the "average of last minute" capability the paper attributes
    to sensors: the window is evaluated relative to the newest reading.
    """

    size_seconds: float
    time_column: str = "t"
    aggregates: List[WindowAggregate] = field(default_factory=list)

    def latest(self, readings: Sequence[Mapping[str, Any]]) -> Reading:
        """Aggregate the readings that fall into the most recent window."""
        if not readings:
            return {"count": 0, **{a.output_name: None for a in self.aggregates}}
        newest = max(reading[self.time_column] for reading in readings)
        cutoff = newest - self.size_seconds
        recent = [r for r in readings if r[self.time_column] > cutoff]
        row: Reading = {
            "window_start": cutoff,
            "window_end": newest,
            "count": len(recent),
        }
        for aggregate in self.aggregates:
            row[aggregate.output_name] = aggregate.compute(recent)
        return row

    def slide(
        self, readings: Sequence[Mapping[str, Any]], step_seconds: float
    ) -> List[Reading]:
        """Evaluate the window repeatedly, advancing by ``step_seconds``."""
        if not readings:
            return []
        ordered = sorted(readings, key=lambda r: r[self.time_column])
        timestamps = [r[self.time_column] for r in ordered]
        start = timestamps[0]
        end = timestamps[-1]
        results: List[Reading] = []
        current = start + self.size_seconds
        while current <= end + step_seconds:
            # The readings are time-sorted, so each window is the contiguous
            # slice with current-size < t <= current.
            low = bisect_right(timestamps, current - self.size_seconds)
            high = bisect_right(timestamps, current)
            in_window = ordered[low:high]
            if in_window:
                row: Reading = {
                    "window_start": current - self.size_seconds,
                    "window_end": current,
                    "count": len(in_window),
                }
                for aggregate in self.aggregates:
                    row[aggregate.output_name] = aggregate.compute(in_window)
                results.append(row)
            current += step_seconds
        return results
