"""Bounded sensor stream buffers with sensor-grade filtering.

The lowest level of the paper's architecture (E4) "can only compute some
filter mechanisms (simple selections) and some simple aggregations over the
last values generated".  :class:`SensorStream` models exactly this: it keeps a
bounded buffer of readings, applies *constant-comparison* filters (a sensor
cannot compare two attributes against each other — that is an appliance-level
capability in the paper's use case) and exposes window aggregation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.engine.errors import ExecutionError
from repro.engine.schema import Schema
from repro.engine.table import Relation
from repro.streams.windows import SlidingWindow, WindowAggregate, readings_to_relation

Reading = Dict[str, Any]

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class StreamFilter:
    """A single attribute-vs-constant comparison, e.g. ``z < 2``."""

    column: str
    operator: str
    constant: Any

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise ExecutionError(f"Unsupported stream filter operator: {self.operator}")

    def matches(self, reading: Mapping[str, Any]) -> bool:
        """Return True when the reading satisfies the filter."""
        value = reading.get(self.column)
        if value is None:
            return False
        return _OPERATORS[self.operator](value, self.constant)


class SensorStream:
    """A bounded buffer of sensor readings with sensor-level query support."""

    def __init__(
        self,
        name: str,
        schema: Optional[Schema] = None,
        capacity: int = 10_000,
    ) -> None:
        self.name = name
        self.schema = schema
        self._buffer: Deque[Reading] = deque(maxlen=capacity)
        #: Batch listeners (e.g. a standing-query runtime's ingest binding);
        #: each receives the list of readings just pushed.  Listeners see
        #: every pushed reading even after it rotates out of the bounded
        #: buffer — the buffer bounds *sensor-local* lookback, not the
        #: downstream append-only stream.
        self._listeners: List[Callable[[List[Reading]], None]] = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[List[Reading]], None]) -> Callable:
        """Register a batch listener; returns it (for :meth:`unsubscribe`)."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Callable[[List[Reading]], None]) -> None:
        """Detach a listener registered with :meth:`subscribe`."""
        self._listeners.remove(listener)

    def _notify(self, batch: List[Reading]) -> None:
        if batch:
            for listener in self._listeners:
                listener([dict(reading) for reading in batch])

    def push(self, reading: Mapping[str, Any]) -> None:
        """Append one reading (oldest readings fall out when full)."""
        materialized = dict(reading)
        self._buffer.append(materialized)
        self._notify([materialized])

    def push_many(self, readings: Iterable[Mapping[str, Any]]) -> int:
        """Append many readings (one listener batch); returns the count."""
        batch = [dict(reading) for reading in readings]
        self._buffer.extend(batch)
        self._notify(batch)
        return len(batch)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def readings(self) -> List[Reading]:
        """A copy of the buffered readings (oldest first)."""
        return [dict(reading) for reading in self._buffer]

    # ------------------------------------------------------------------
    # sensor-level query surface (Table 1, level E4)
    # ------------------------------------------------------------------
    def filtered(self, filters: Sequence[StreamFilter]) -> List[Reading]:
        """Apply constant filters; corresponds to ``SELECT * FROM stream WHERE ...``."""
        result = []
        for reading in self._buffer:
            if all(stream_filter.matches(reading) for stream_filter in filters):
                result.append(dict(reading))
        return result

    def window_aggregate(
        self,
        size_seconds: float,
        aggregates: Sequence[WindowAggregate],
        time_column: str = "t",
        filters: Sequence[StreamFilter] = (),
    ) -> Reading:
        """Aggregate the most recent window (e.g. average of the last minute)."""
        window = SlidingWindow(
            size_seconds=size_seconds, time_column=time_column, aggregates=list(aggregates)
        )
        return window.latest(self.filtered(filters) if filters else self.readings)

    def to_relation(self, filters: Sequence[StreamFilter] = ()) -> Relation:
        """Materialise the (optionally filtered) buffer as a relation.

        Built column-wise with values coerced to the declared schema types
        (:func:`~repro.streams.windows.readings_to_relation`), so the result
        carries typed column backings and the vectorized kernels engage on
        stream-fed relations instead of bailing with ``UNTYPED_BACKING``.
        """
        rows = self.filtered(filters) if filters else self.readings
        schema = self.schema or Schema.infer(rows)
        return readings_to_relation(schema, rows, name=self.name)
