"""Capability classes of the vertical architecture (Table 1 of the paper).

=====  ====================  ==========================================  =================
Level  System                Capability                                  Nodes per person
=====  ====================  ==========================================  =================
E1     cloud                 complex ML algorithm in R, SQL:2003 + UDF   n for m persons
E2     PC in apartment       full SQL (the use case runs the window
                             regression here)                            1
E3     appliance             "SQL light" with joins, grouping            10 – 50
E4     sensor                filter/window, simple selection, stream
                             aggregates over the last seconds            ≫ 100
=====  ====================  ==========================================  =================

Table 1 labels E2 as "SQL-92"; the use case of Section 4.2 nevertheless
executes the ``regr_intercept ... OVER`` window query on the apartment PC
("the local server has enough power to perform the regression analysis part
of the SQL query on its own").  We follow the use-case placement and include
window functions in E2's capability set; the difference is documented in
DESIGN.md and exercised by the Table 1 benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Union

from repro.sql.analysis import QueryFeatures


class CapabilityLevel(enum.IntEnum):
    """Processing levels; smaller numbers are more powerful nodes."""

    E1_CLOUD = 1
    E2_PC = 2
    E3_APPLIANCE = 3
    E4_SENSOR = 4

    @property
    def short_name(self) -> str:
        """Short identifier such as ``E1``."""
        return f"E{int(self)}"

    def is_at_least(self, other: "CapabilityLevel") -> bool:
        """True when this level is at least as powerful as ``other``."""
        return int(self) <= int(other)


@dataclass(frozen=True)
class CapabilityClass:
    """What one level of the hierarchy can execute."""

    level: CapabilityLevel
    system: str
    description: str
    supported_features: FrozenSet[str]
    nodes_per_person: str
    #: Relative computing power (used by capacity checks and benchmarks).
    relative_power: float = 1.0
    #: True when the node can run the R / machine-learning remainder.
    supports_ml: bool = False

    def supports(self, features: Union[QueryFeatures, Iterable[str]]) -> bool:
        """Return True when every feature in ``features`` is supported."""
        if isinstance(features, QueryFeatures):
            needed = set(features.features)
        else:
            needed = set(features)
        return needed.issubset(self.supported_features)

    def missing(self, features: Union[QueryFeatures, Iterable[str]]) -> List[str]:
        """Return the features that exceed this capability class."""
        if isinstance(features, QueryFeatures):
            needed = set(features.features)
        else:
            needed = set(features)
        return sorted(needed - self.supported_features)


_SENSOR_FEATURES = frozenset(
    {
        "selection_constant",
        "limit",
        # Stream aggregation over the last seconds (no GROUP BY).
        "stream_window",
    }
)

_APPLIANCE_FEATURES = _SENSOR_FEATURES | frozenset(
    {
        "projection",
        "selection_attribute",
        "join",
        "group_by",
        "having",
        "aggregation",
        "order_by",
        "distinct",
        "arithmetic",
        "scalar_function",
        "like",
        "case_expression",
    }
)

_PC_FEATURES = _APPLIANCE_FEATURES | frozenset(
    {
        "subquery",
        "in_subquery",
        "exists",
        "set_operation",
        "window_function",
    }
)

_CLOUD_FEATURES = _PC_FEATURES | frozenset({"recursion", "udf", "ml_algorithm"})


#: The four capability classes, most powerful first (mirrors Table 1).
CAPABILITY_LEVELS: Dict[CapabilityLevel, CapabilityClass] = {
    CapabilityLevel.E1_CLOUD: CapabilityClass(
        level=CapabilityLevel.E1_CLOUD,
        system="cloud",
        description="complex ML algorithm in R, SQL:2003 with UDF",
        supported_features=_CLOUD_FEATURES,
        nodes_per_person="n for m persons",
        relative_power=100.0,
        supports_ml=True,
    ),
    CapabilityLevel.E2_PC: CapabilityClass(
        level=CapabilityLevel.E2_PC,
        system="PC in apartment",
        description="full SQL incl. window functions (local server)",
        supported_features=_PC_FEATURES,
        nodes_per_person="1 for 1 person",
        relative_power=10.0,
    ),
    CapabilityLevel.E3_APPLIANCE: CapabilityClass(
        level=CapabilityLevel.E3_APPLIANCE,
        system="appliance in apartment",
        description="SQL 'light' with joins",
        supported_features=_APPLIANCE_FEATURES,
        nodes_per_person="10 - 50 for 1 person",
        relative_power=2.0,
    ),
    CapabilityLevel.E4_SENSOR: CapabilityClass(
        level=CapabilityLevel.E4_SENSOR,
        system="sensor in appliance / environment",
        description="filter / window, simple selection, aggregates on streams",
        supported_features=_SENSOR_FEATURES,
        nodes_per_person=">= 100 for 1 person",
        relative_power=0.1,
    ),
}


def capability_for(level: CapabilityLevel) -> CapabilityClass:
    """Return the capability class of ``level``."""
    return CAPABILITY_LEVELS[level]


def lowest_capable_level(
    features: Union[QueryFeatures, Iterable[str]],
    available: Optional[Iterable[CapabilityLevel]] = None,
) -> CapabilityLevel:
    """Return the *lowest* (least powerful) level able to evaluate ``features``.

    The fragmenter pushes work as far down as possible, so candidate levels
    are inspected from the sensor upwards.
    """
    candidates = sorted(
        available if available is not None else CAPABILITY_LEVELS.keys(),
        key=int,
        reverse=True,  # E4 (sensor) first
    )
    for level in candidates:
        if CAPABILITY_LEVELS[level].supports(features):
            return level
    return CapabilityLevel.E1_CLOUD


def capability_table() -> List[Dict[str, str]]:
    """Return Table 1 as a list of dict rows (used by the benchmark/report)."""
    rows = []
    for level in sorted(CAPABILITY_LEVELS, key=int):
        capability = CAPABILITY_LEVELS[level]
        rows.append(
            {
                "level": level.short_name,
                "system": capability.system,
                "capability": capability.description,
                "nodes": capability.nodes_per_person,
            }
        )
    return rows
