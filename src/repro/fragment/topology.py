"""The node hierarchy of the smart environment.

Figure 3 of the paper shows the peer chain: sensors feed appliances, which
feed the apartment PC (local server), which feeds the provider's cloud.  A
:class:`Topology` models that chain together with node capacities; the
PArADISE processor walks it bottom-up when executing a fragment plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.fragment.capabilities import CapabilityClass, CapabilityLevel, capability_for


@dataclass
class Node:
    """One processing node of the vertical architecture."""

    name: str
    level: CapabilityLevel
    #: Relative CPU power; defaults to the level's typical power.
    cpu_power: Optional[float] = None
    #: Free main memory in MB, used for the preprocessor's capacity check.
    free_memory_mb: float = 512.0
    #: True when the node sits inside the user's apartment (its output never
    #: "leaves the apartment"; only the edge towards the cloud is counted as
    #: leaving).
    inside_apartment: bool = True

    def __post_init__(self) -> None:
        if self.cpu_power is None:
            self.cpu_power = capability_for(self.level).relative_power

    @property
    def capability(self) -> CapabilityClass:
        """The node's capability class."""
        return capability_for(self.level)

    def can_hold_rows(self, rows: int, bytes_per_row: float = 64.0) -> bool:
        """Capacity check: do ``rows`` fit into the node's free memory?"""
        return rows * bytes_per_row / (1024.0 * 1024.0) <= self.free_memory_mb


class Topology:
    """An ordered processing chain from the sensors up to the cloud."""

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._nodes = list(nodes)
        if not self._nodes:
            raise ValueError("Topology requires at least one node")
        # Order from the least powerful (sensor) to the most powerful (cloud).
        self._nodes.sort(key=lambda node: int(node.level), reverse=True)
        names = [node.name for node in self._nodes]
        if len(names) != len(set(names)):
            raise ValueError("Node names must be unique")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default_chain(
        cls,
        sensor_count: int = 1,
        appliance_count: int = 1,
        cloud_memory_mb: float = 1024 * 64,
    ) -> "Topology":
        """The canonical chain of Figure 3: sensors → appliance(s) → PC → cloud."""
        nodes: List[Node] = []
        for index in range(sensor_count):
            nodes.append(
                Node(
                    name=f"sensor_{index}" if sensor_count > 1 else "sensor",
                    level=CapabilityLevel.E4_SENSOR,
                    free_memory_mb=1.0,
                )
            )
        for index in range(appliance_count):
            nodes.append(
                Node(
                    name=f"appliance_{index}" if appliance_count > 1 else "appliance",
                    level=CapabilityLevel.E3_APPLIANCE,
                    free_memory_mb=256.0,
                )
            )
        nodes.append(Node(name="pc", level=CapabilityLevel.E2_PC, free_memory_mb=8192.0))
        nodes.append(
            Node(
                name="cloud",
                level=CapabilityLevel.E1_CLOUD,
                free_memory_mb=cloud_memory_mb,
                inside_apartment=False,
            )
        )
        return cls(nodes)

    @classmethod
    def cloud_only(cls) -> "Topology":
        """Degenerate topology used by the "no pushdown" ablation baseline."""
        return cls(
            [
                Node(name="sensor", level=CapabilityLevel.E4_SENSOR, free_memory_mb=1.0),
                Node(
                    name="cloud",
                    level=CapabilityLevel.E1_CLOUD,
                    free_memory_mb=1024 * 64,
                    inside_apartment=False,
                ),
            ]
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, least powerful first."""
        return list(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> Node:
        """Return the node with the given name."""
        for node in self._nodes:
            if node.name == name:
                return node
        raise KeyError(f"Unknown node: {name}")

    @property
    def levels(self) -> List[CapabilityLevel]:
        """The distinct capability levels present, least powerful first."""
        seen: List[CapabilityLevel] = []
        for node in self._nodes:
            if node.level not in seen:
                seen.append(node.level)
        return seen

    def nodes_at(self, level: CapabilityLevel) -> List[Node]:
        """All nodes of the given level."""
        return [node for node in self._nodes if node.level == level]

    def first_node_at_or_above(self, level: CapabilityLevel) -> Node:
        """The least powerful node whose level is at least ``level``.

        "At least" means equally or more powerful; when a level is absent from
        the topology the next more powerful node takes over (the paper's rule
        that a unit lacking power hands the work to a more powerful node).
        """
        for node in self._nodes:  # least powerful first
            if node.level.is_at_least(level):
                return node
        return self._nodes[-1]

    @property
    def cloud(self) -> Node:
        """The most powerful node (the query's origin)."""
        return self._nodes[-1]

    @property
    def boundary_index(self) -> int:
        """Index of the first node outside the apartment (data leaving point)."""
        for index, node in enumerate(self._nodes):
            if not node.inside_apartment:
                return index
        return len(self._nodes)

    def describe(self) -> List[Dict[str, str]]:
        """Tabular description used in reports and examples."""
        return [
            {
                "node": node.name,
                "level": node.level.short_name,
                "system": node.capability.system,
                "inside_apartment": str(node.inside_apartment),
                "cpu_power": f"{node.cpu_power:g}",
            }
            for node in self._nodes
        ]
